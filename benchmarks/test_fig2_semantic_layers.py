"""FIG-2 — regenerate the three semantic layers.

Builds the full Figure-2 catalog (concept DAG over deserts / NDVI /
vegetation change; derivation-layer classes C2–C21 with processes
P2–P21; the operator layer beneath) and verifies every relationship the
figure draws, then prints the three-layer listing.
"""

from conftest import report

from repro.figures import build_figure2


EXPECTED_CONCEPT_CLASSES = {
    "hot_trade_wind_desert": {
        "desert_rain250_c2", "desert_rain200_c3",
        "desert_aridity_c4", "desert_smoothed_c5",
    },
    "ndvi_concept": {"ndvi_c6"},
    "vegetation_change": {"veg_change_pca_c7", "veg_change_spca_c8"},
    "land_cover_concept": {"land_cover_c20"},
}

EXPECTED_DERIVED_BY = {
    "desert_rain250_c2": "P2",
    "desert_rain200_c3": "P3",
    "desert_aridity_c4": "P4",
    "desert_smoothed_c5": "P5",
    "ndvi_c6": "P6",
    "veg_change_pca_c7": "P7",
    "veg_change_spca_c8": "P8",
    "land_cover_c20": "P20",
    "land_cover_changes_c21": "P21",
}


def _verify(catalog) -> None:
    kernel = catalog.kernel
    # High-level layer: the ISA DAG of Figure 2.
    assert kernel.concepts.children("desert") == {
        "hot_trade_wind_desert", "ice_snow_desert"
    }
    assert kernel.concepts.parents("landsat_tm") == {"remote_sensing_data"}
    for concept, classes in EXPECTED_CONCEPT_CLASSES.items():
        assert kernel.concepts.classes_of(concept) == classes
    # Derivation layer: every derived class names its process.
    for class_name, process in EXPECTED_DERIVED_BY.items():
        assert kernel.classes.get(class_name).derived_by == process
        assert process in kernel.derivations.processes
    # System layer: the operators the processes apply are registered.
    for op in ("ndvi", "unsuperclassify", "composite", "pca_change",
               "spca_change", "desert_mask_rainfall", "aridity_index"):
        assert op in kernel.operators


def test_fig2_build_catalog(benchmark):
    catalog = benchmark(build_figure2)
    _verify(catalog)
    kernel = catalog.kernel
    rows = []
    for concept in catalog.concept_names:
        parents = sorted(kernel.concepts.parents(concept))
        members = sorted(kernel.concepts.get(concept).member_classes)
        rows.append((concept,
                     ",".join(parents) or "-",
                     ",".join(members) or "-"))
    report("Figure 2 / high-level layer: concepts", rows,
           header=("concept", "ISA", "member classes"))
    rows = [
        (name, EXPECTED_DERIVED_BY.get(name, "(base)"))
        for name in catalog.class_names
    ]
    report("Figure 2 / derivation layer: classes", rows,
           header=("class", "derived by"))
    rows = [
        (p, str(kernel.derivations.processes.get(p).input_classes),
         kernel.derivations.processes.get(p).output_class)
        for p in catalog.process_names
    ]
    report("Figure 2 / derivation layer: processes", rows,
           header=("process", "inputs", "output"))


def test_fig2_concept_query(benchmark, catalog16):
    """Query a concept: the high-level entry point of the layer stack."""
    session = catalog16.session

    def query():
        return session.execute("SELECT FROM hot_trade_wind_desert")

    results = benchmark(query)
    assert {r.details["class"] for r in results} == \
        EXPECTED_CONCEPT_CLASSES["hot_trade_wind_desert"]


def test_fig2_layer_mapping_consistency(benchmark, catalog16):
    """Every leaf concept's classes are materialized and derivable."""
    kernel = catalog16.kernel

    def check():
        count = 0
        for concept in ("hot_trade_wind_desert", "ndvi_concept",
                        "vegetation_change"):
            for class_name in kernel.concepts.classes_of(concept):
                explanation = kernel.planner.explain(class_name)
                assert explanation["path"] in ("retrieve", "derive")
                count += 1
        return count

    assert benchmark(check) == 7
