"""EXP-L: concurrent serving — snapshot readers scale, writers do not
stall them, and the wire server survives saturation.

The paper pitches Gaea as a multi-user scientific DBMS (interactive
scientists sharing one kernel).  This experiment quantifies the
concurrent-serving claims of the v2.1 storage layer:

* **L1 — reader scaling**: N snapshot readers with realistic think time
  run their workloads concurrently ≥4× faster than serialized back to
  back.  Readers never take the engine write lock, so wall-clock is
  bounded by the slowest single workload, not the sum.
* **L2 — writer interference**: reader p99 latency while a writer
  commits continuously stays within 3× of the idle-writer baseline
  (no reader ever blocks on the writer; interference is bounded GIL /
  allocator noise, not lock waits).
* **L3 — wire saturation**: hundreds of concurrent remote cursors (many
  connections, several cursors each, a mix of reads and writes) against
  one GaeaServer: every query returns a consistent snapshot and the
  server reports throughput and latency percentiles.
"""

from __future__ import annotations

import threading
import time

from conftest import report

from repro import connect
from repro.client import remote_connect
from repro.server import GaeaServer
from repro.spatial import Box
from repro.temporal import AbsTime

DDL = """
DEFINE CLASS land_cover (
  ATTRIBUTES: label = char16;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
)
"""

_READERS = 8
_QUERIES = 25
_THINK = 0.004  # seconds between queries: the interactive-scientist model


def _seed(conn, rows: int = 24) -> None:
    conn.cursor().run(DDL)
    for i in range(rows):
        conn.kernel.store.store("land_cover", {
            "label": f"c{i % 6}",
            "spatialextent": Box(float(10 * i), 0.0, float(10 * i) + 5, 5),
            "timestamp": AbsTime(days=i % 4),
        })


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def _reader_workload(conn, latencies: list[float],
                     queries: int = _QUERIES) -> None:
    """One scientist's session: repeated parameterized retrievals with
    think time between them (latency recorded per query, excl. think)."""
    cursor = conn.cursor()
    for i in range(queries):
        start = time.perf_counter()
        cursor.execute("SELECT FROM land_cover WHERE timestamp = ?",
                       [AbsTime(days=i % 4)])
        rows = cursor.fetchall()
        latencies.append(time.perf_counter() - start)
        assert rows, "seeded timestamps must always have objects"
        time.sleep(_THINK)


class TestExpL1ReaderScaling:
    def test_eight_readers_scale_over_serialized(self):
        conn = connect()
        _seed(conn)
        kernel = conn.kernel

        # Serialized: the same N workloads back to back on one thread.
        serial_lat: list[float] = []
        serial_start = time.perf_counter()
        for _ in range(_READERS):
            _reader_workload(connect(kernel=kernel), serial_lat)
        serial_wall = time.perf_counter() - serial_start

        # Concurrent: one thread (connection) per reader.
        threaded_lat: list[float] = []
        lock = threading.Lock()

        def worker():
            mine: list[float] = []
            _reader_workload(connect(kernel=kernel), mine)
            with lock:
                threaded_lat.extend(mine)

        threads = [threading.Thread(target=worker)
                   for _ in range(_READERS)]
        threaded_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        threaded_wall = time.perf_counter() - threaded_start

        speedup = serial_wall / threaded_wall
        report(
            "EXP-L1: snapshot-reader scaling "
            f"({_READERS} readers x {_QUERIES} queries, "
            f"{_THINK * 1000:.0f}ms think time)",
            [
                ("serialized", f"{serial_wall:.3f}s",
                 f"{_percentile(serial_lat, 0.50) * 1000:.2f}ms",
                 f"{_percentile(serial_lat, 0.99) * 1000:.2f}ms"),
                ("concurrent", f"{threaded_wall:.3f}s",
                 f"{_percentile(threaded_lat, 0.50) * 1000:.2f}ms",
                 f"{_percentile(threaded_lat, 0.99) * 1000:.2f}ms"),
                ("speedup", f"{speedup:.2f}x", "", ""),
            ],
            ("mode", "wall", "p50", "p99"),
        )
        assert len(threaded_lat) == _READERS * _QUERIES
        assert speedup >= 4.0, (
            f"{_READERS} concurrent snapshot readers only "
            f"{speedup:.2f}x faster than serialized (need >= 4x)"
        )


class TestExpL2WriterInterference:
    def test_reader_p99_within_3x_of_idle_writer_baseline(self):
        conn = connect()
        _seed(conn)
        kernel = conn.kernel

        def measure() -> list[float]:
            latencies: list[float] = []
            lock = threading.Lock()

            def worker():
                mine: list[float] = []
                _reader_workload(connect(kernel=kernel), mine, queries=40)
                with lock:
                    latencies.extend(mine)

            threads = [threading.Thread(target=worker)
                       for _ in range(_READERS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            return latencies

        idle_lat = measure()  # baseline: writer idle

        # Active phase: one writer committing small transactions in a
        # tight loop for the whole measurement window.
        stop = threading.Event()

        def writer():
            store = kernel.store
            i = 0
            while not stop.is_set():
                tx = store.begin_transaction()
                store.store("land_cover", {
                    "label": "w",
                    "spatialextent": Box(5000.0 + i, 0.0, 5005.0 + i, 5.0),
                    "timestamp": AbsTime(days=1000 + i),
                })
                if i % 4 == 3:
                    store.rollback_transaction()
                else:
                    store.commit_transaction()
                i += 1

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        try:
            active_lat = measure()
        finally:
            stop.set()
            writer_thread.join()

        p99_idle = _percentile(idle_lat, 0.99)
        p99_active = _percentile(active_lat, 0.99)
        # Floor the baseline: on sub-millisecond queries, scheduler
        # jitter alone can triple a tiny p99 — the claim under test is
        # "no lock waits", not "immune to the GIL".
        budget = 3.0 * max(p99_idle, 0.020)
        report(
            "EXP-L2: reader latency vs writer activity "
            f"({_READERS} readers x 40 queries)",
            [
                ("writer idle",
                 f"{_percentile(idle_lat, 0.50) * 1000:.2f}ms",
                 f"{p99_idle * 1000:.2f}ms"),
                ("writer active",
                 f"{_percentile(active_lat, 0.50) * 1000:.2f}ms",
                 f"{p99_active * 1000:.2f}ms"),
                ("p99 budget (3x, 20ms floor)",
                 "", f"{budget * 1000:.2f}ms"),
            ],
            ("phase", "p50", "p99"),
        )
        assert p99_active <= budget, (
            f"reader p99 {p99_active * 1000:.1f}ms under an active writer "
            f"exceeds {budget * 1000:.1f}ms — readers are stalling"
        )


class TestExpL3WireSaturation:
    _CONNECTIONS = 48
    _CURSORS_PER_CONNECTION = 5  # 240 concurrent cursors
    _CYCLES = 4

    def test_hundreds_of_cursors_mixed_read_write(self):
        with GaeaServer() as server:
            seed = remote_connect(server.host, server.port)
            seed.cursor().execute(DDL)
            for i in range(24):
                seed.store("land_cover", {
                    "label": f"c{i % 6}",
                    "spatialextent": Box(float(10 * i), 0.0,
                                         float(10 * i) + 5, 5.0),
                    "timestamp": AbsTime(days=i % 4),
                })
            seed.close()

            latencies: list[float] = []
            writes = [0]
            failures: list[str] = []
            lock = threading.Lock()
            gate = threading.Barrier(self._CONNECTIONS)

            def session(seat: int):
                mine: list[float] = []
                my_writes = 0
                try:
                    conn = remote_connect(server.host, server.port)
                    cursors = [conn.cursor()
                               for _ in range(self._CURSORS_PER_CONNECTION)]
                    gate.wait()
                    for cycle in range(self._CYCLES):
                        if seat % 6 == 0:
                            # One in six connections also writes
                            # (auto-commit store): reads and writes mix.
                            conn.store("land_cover", {
                                "label": "w",
                                "spatialextent": Box(
                                    9000.0 + seat * 10 + cycle, 0.0,
                                    9005.0 + seat * 10 + cycle, 5.0),
                                "timestamp": AbsTime(days=500 + seat),
                            })
                            my_writes += 1
                        for cursor in cursors:
                            start = time.perf_counter()
                            cursor.execute(
                                "SELECT FROM land_cover "
                                "WHERE timestamp = ?",
                                [AbsTime(days=(seat + cycle) % 4)],
                            )
                            rows = cursor.fetchall()
                            mine.append(time.perf_counter() - start)
                            if len(rows) < 6:
                                failures.append(
                                    f"seat {seat}: torn snapshot, "
                                    f"{len(rows)} rows"
                                )
                                return
                    conn.close()
                except Exception as exc:  # noqa: BLE001 — collect all
                    failures.append(f"seat {seat}: {exc!r}")
                finally:
                    with lock:
                        latencies.extend(mine)
                        writes[0] += my_writes

            threads = [threading.Thread(target=session, args=(seat,))
                       for seat in range(self._CONNECTIONS)]
            wall_start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300)
            wall = time.perf_counter() - wall_start
            assert not any(thread.is_alive() for thread in threads), \
                "saturation sessions hung"
            assert not failures, failures[0]

            queries = len(latencies)
            report(
                "EXP-L3: wire saturation "
                f"({self._CONNECTIONS} connections x "
                f"{self._CURSORS_PER_CONNECTION} cursors, "
                f"{writes[0]} writes mixed in)",
                [
                    ("queries", queries),
                    ("throughput", f"{queries / wall:.0f} q/s"),
                    ("p50 latency",
                     f"{_percentile(latencies, 0.50) * 1000:.2f}ms"),
                    ("p99 latency",
                     f"{_percentile(latencies, 0.99) * 1000:.2f}ms"),
                ],
                ("metric", "value"),
            )
            expected = (self._CONNECTIONS * self._CURSORS_PER_CONNECTION
                        * self._CYCLES)
            assert queries == expected
