"""EXP-J — concept queries: one cost-ordered union vs. per-member loops.

A Gaea concept ("DESERT", "VEGETATION-CHANGE") is a set of member
classes, and §2.1.1's high-level queries address the concept, not the
members.  Before the unified operator tree, each member was planned and
priced in isolation; now a concept SELECT compiles to a single
ConceptUnion whose member subtrees are ordered by estimated cost and
share one execution context.

This experiment builds a concept with several members of very different
sizes and selectivities (some indexed, some not), then measures

* a concept-wide retrieval through the union, vs.
* the same answer assembled by issuing one SELECT per member class,

and verifies the union's first-row latency benefits from cost ordering:
the cheapest member streams first, so an early-stopping consumer
(fetchone) does not pay for the expensive members at all.
"""

import time

from conftest import report

from repro import connect
from repro.spatial import Box
from repro.temporal import AbsTime

UNIVERSE = Box(0.0, 0.0, 100.0, 100.0)

MEMBERS = ("obs_small", "obs_medium", "obs_large")
SIZES = {"obs_small": 100, "obs_medium": 2_000, "obs_large": 8_000}
N_CODES = 50

CONCEPT_QUERY = "SELECT FROM observation WHERE code = 7"
REPETITIONS = 10
ROUNDS = 3


def _loaded_connection():
    conn = connect(universe=UNIVERSE)
    cur = conn.cursor()
    for member in MEMBERS:
        cur.execute(f"""
        DEFINE CLASS {member} (
          ATTRIBUTES: code = int4; reading = float8;
          SPATIAL EXTENT: cell = box;
          TEMPORAL EXTENT: timestamp = abstime;
        )
        """)
    cur.execute(
        "DEFINE CONCEPT observation MEMBERS " + ", ".join(MEMBERS)
    )
    stamp = AbsTime.from_ymd(1990, 6, 1)
    store = conn.kernel.store
    for member in MEMBERS:
        for i in range(SIZES[member]):
            x = float(i % 99)
            store.store(member, {
                "code": i % N_CODES,
                "reading": float(i),
                "cell": Box(x, 0.0, x + 1.0, 1.0),
                "timestamp": stamp,
            })
    # The big member gets an index; the small ones stay unindexed —
    # the union must price each member individually.
    cur.execute("CREATE INDEX ON obs_large (code)")
    return conn


def _timed(fn):
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for _ in range(REPETITIONS):
            fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_expJ_concept_union_vs_per_member():
    conn = _loaded_connection()
    cur = conn.cursor()
    expected = sum(SIZES[m] // N_CODES for m in MEMBERS)

    def concept_wide():
        rows = cur.execute(CONCEPT_QUERY).fetchall()
        assert len(rows) == expected

    member_queries = [
        f"SELECT FROM {member} WHERE code = 7" for member in MEMBERS
    ]

    def per_member():
        total = 0
        for query in member_queries:
            total += len(cur.execute(query).fetchall())
        assert total == expected

    union_time = _timed(concept_wide)
    loop_time = _timed(per_member)

    # Cost ordering: the tiny member's 100-row scan is priced below the
    # big member's ~160-row index probe, so it streams first; the big
    # member still rides its B-tree when its turn comes.
    dump = cur.explain(CONCEPT_QUERY)
    assert "ConceptUnion(observation: 3 members)" in dump
    assert "index-eq(code=7)" in dump
    first = cur.execute(CONCEPT_QUERY).fetchone()
    assert first.class_name == "obs_small"

    report(
        f"EXP-J concept-wide retrieval ({len(MEMBERS)} members, "
        f"{sum(SIZES.values())} objects, {REPETITIONS} executions)",
        [
            ("concept union (one plan)", f"{union_time * 1e3:.1f}"),
            ("per-member SELECT loop", f"{loop_time * 1e3:.1f}"),
            ("union / loop", f"{union_time / loop_time:.2f}"),
        ],
        header=("configuration", "total ms"),
    )

    # One union plan must not be slower than assembling the members by
    # hand (same scans, minus per-statement compile/describe overhead).
    assert union_time <= loop_time * 1.10


def test_expJ_first_row_rides_cheapest_member():
    """An early-stopping consumer touches only the cheapest member."""
    conn = _loaded_connection()
    cur = conn.cursor()
    store = conn.kernel.store
    store.scan_log = []
    cur.execute(CONCEPT_QUERY)
    first = cur.fetchone()
    assert first is not None and first.class_name == "obs_small"
    scanned = {event[0] for event in store.scan_log}
    # The other members (including the 8000-row one) were never
    # scanned for the first row.
    assert scanned == {"obs_small"}
