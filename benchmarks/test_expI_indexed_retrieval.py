"""EXP-I — indexed retrieval: cost-based access paths vs. full scans.

The paper's retrieval step (§2.1.5 step 1) assumes the DBMS can answer
class retrievals without materializing every stored object.  PR 2 wires
the storage layer's secondary indexes (attribute B-trees, the spatial
grid index, the temporal timeline) into a System-R-style cost model:
the optimizer prices every candidate access path and records the
cheapest in the (cached) plan, pushing the remaining predicates down as
per-row residuals.

This experiment stores 10,000 objects and measures a selective
equality retrieval and a selective range retrieval, full-scan vs.
index-backed, asserting the ≥5× speedup the plan dump promises and
that EXPLAIN actually names the index path.
"""

import time

from conftest import report

from repro import connect
from repro.spatial import Box
from repro.temporal import AbsTime

UNIVERSE = Box(0.0, 0.0, 100.0, 100.0)

DDL = """
DEFINE CLASS survey_site (
  ATTRIBUTES: code = int4; reading = float8; station = char16;
  SPATIAL EXTENT: cell = box;
  TEMPORAL EXTENT: timestamp = abstime;
)
"""

N_OBJECTS = 10_000
N_CODES = 1_000  # 1000 distinct codes -> ~10 rows per equality probe

EQ_QUERY = "SELECT FROM survey_site WHERE code = 7"
RANGE_QUERY = ("SELECT FROM survey_site WHERE reading >= 42.0 "
               "AND reading <= 42.1")

REPETITIONS = 20
ROUNDS = 3


def _loaded_connection():
    conn = connect(universe=UNIVERSE)
    conn.cursor().run(DDL)
    stamp = AbsTime.from_ymd(1990, 6, 1)
    store = conn.kernel.store
    for i in range(N_OBJECTS):
        x = i % 99
        y = (i // 99) % 99
        store.store("survey_site", {
            "code": i % N_CODES,
            "reading": (i % 100_000) / 100.0,
            "station": f"s{i % 37}",
            "cell": Box(float(x), float(y), float(x) + 1.0, float(y) + 1.0),
            "timestamp": stamp,
        })
    return conn


def _timed(cursor, query, expected):
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for _ in range(REPETITIONS):
            cursor.execute(query)
            assert len(cursor.fetchall()) == expected
        best = min(best, time.perf_counter() - start)
    return best


def test_expI_indexed_vs_full_scan():
    """Selective retrievals must run ≥5× faster through the index."""
    conn = _loaded_connection()
    cur = conn.cursor()

    eq_expected = N_OBJECTS // N_CODES
    range_expected = len(cur.execute(RANGE_QUERY).fetchall())
    assert 0 < range_expected < 100  # selective, but not empty

    # -- full scans (no secondary attribute indexes yet) -----------------
    scan_explain = cur.explain(EQ_QUERY)
    assert "full-scan" in scan_explain
    eq_scan = _timed(cur, EQ_QUERY, eq_expected)
    range_scan = _timed(cur, RANGE_QUERY, range_expected)

    # -- index-backed ----------------------------------------------------
    cur.execute("CREATE INDEX ON survey_site (code)")
    cur.execute("CREATE INDEX ON survey_site (reading)")
    eq_explain = cur.explain(EQ_QUERY)
    range_explain = cur.explain(RANGE_QUERY)
    assert "index-eq(code=7)" in eq_explain
    assert "index-range(reading" in range_explain
    eq_indexed = _timed(cur, EQ_QUERY, eq_expected)
    range_indexed = _timed(cur, RANGE_QUERY, range_expected)

    eq_speedup = eq_scan / eq_indexed
    range_speedup = range_scan / range_indexed
    report(
        f"EXP-I indexed retrieval ({N_OBJECTS} objects, "
        f"{REPETITIONS} executions)",
        [
            ("equality, full scan", f"{eq_scan * 1e3:.1f}",
             scan_explain.split("access=")[1]),
            ("equality, B-tree probe", f"{eq_indexed * 1e3:.1f}",
             eq_explain.split("access=")[1]),
            ("equality speedup", f"{eq_speedup:.1f}x", ""),
            ("range, full scan", f"{range_scan * 1e3:.1f}", ""),
            ("range, B-tree window", f"{range_indexed * 1e3:.1f}",
             range_explain.split("access=")[1]),
            ("range speedup", f"{range_speedup:.1f}x", ""),
        ],
        header=("configuration", "total ms", "plan"),
    )

    assert eq_speedup >= 5.0
    assert range_speedup >= 5.0


def test_expI_explain_proves_index_path():
    """EXPLAIN (statement and cursor dump) names the chosen index."""
    conn = _loaded_connection()
    cur = conn.cursor()
    cur.execute("CREATE INDEX ON survey_site (code)")

    # The GaeaQL EXPLAIN statement reports the physical access path.
    [result] = conn.execute("EXPLAIN " + EQ_QUERY)
    assert result.kind == "explanation"
    assert "index-eq(code=7)" in result.details["access"]["survey_site"]

    # The cursor-level dump agrees, without running the query.
    assert "index-eq(code=7)" in cur.explain(EQ_QUERY)

    # Dropping the index reverts the plan to a full scan (the plan
    # cache is invalidated by the catalog's index version).
    cur.execute("DROP INDEX ON survey_site (code)")
    assert "full-scan" in cur.explain(EQ_QUERY)


def test_expI_spatial_probe_beats_scan():
    """A small-box spatial retrieval rides the grid index."""
    conn = _loaded_connection()
    cur = conn.cursor()
    probe = "SELECT FROM survey_site WHERE cell OVERLAPS (10, 10, 12, 12)"
    dump = cur.explain(probe)
    assert "spatial-probe" in dump
    rows = cur.execute(probe).fetchall()
    assert rows  # the grid covers the universe densely
    box = Box(10.0, 10.0, 12.0, 12.0)
    assert all(obj["cell"].overlaps(box) for obj in rows)
