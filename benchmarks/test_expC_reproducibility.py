"""EXP-C — reproducibility: Gaea vs. the file-based GIS (§2.1.3, §4.1).

Runs Eastman's vegetation-change experiment (PCA vs. SPCA over an NDVI
series) through both systems and measures:

* whether each system can *explain* a result (derivation metadata),
* whether each can *reproduce* it — by the original scientist (with a
  transcript) and by a colleague who only received the files,
* the metadata-management overhead Gaea pays per derivation.

The paper's claim: "Using IDRISI, it is very difficult to duplicate the
experiment unless the user specifically knows the procedure used ...  In
the Gaea system, such an experiment can be reproduced once the derivation
procedures are captured."
"""

import time

import numpy as np
from conftest import report

from repro.baseline import FileGIS
from repro.errors import GaeaError
from repro.figures import build_figure2, populate_scenes
from repro.gis import SceneGenerator, ndvi, pca, spca


def _gaea_run(size=32):
    """The experiment in Gaea: derive C7 (PCA) and C8 (SPCA)."""
    catalog = build_figure2()
    populate_scenes(catalog, seed=71, size=size, years=(1988, 1989))
    kernel = catalog.kernel
    c7 = catalog.session.execute_one("SELECT FROM veg_change_pca_c7")
    c8 = catalog.session.execute_one("SELECT FROM veg_change_spca_c8")
    return catalog, c7.objects[0], c8.objects[0]


def _baseline_run(workdir, size=32, keep_transcript=True):
    """The same experiment in the file-based baseline."""
    generator = SceneGenerator(seed=71, nrow=size, ncol=size)
    gis = FileGIS(workdir=workdir, keep_transcript=keep_transcript)
    gis.register_command("ndvi", ndvi)
    gis.register_command("pca_change", lambda a, b: pca([a, b], 2)[0][-1])
    gis.register_command("spca_change", lambda a, b: spca([a, b], 2)[0][-1])
    for year in (1988, 1989):
        gis.write_raster(f"red{year}",
                         generator.band("africa", year, 7, "red"))
        gis.write_raster(f"nir{year}",
                         generator.band("africa", year, 7, "nir"))
        gis.run("ndvi", [f"red{year}", f"nir{year}"], f"ndvi{year}")
    gis.run("pca_change", ["ndvi1988", "ndvi1989"], "veg_pca")
    gis.run("spca_change", ["ndvi1988", "ndvi1989"], "veg_spca")
    return gis


def test_expC_gaea_experiment(benchmark):
    catalog, c7, c8 = benchmark(_gaea_run)
    assert c7.class_name == "veg_change_pca_c7"
    assert c8.class_name == "veg_change_spca_c8"


def test_expC_baseline_experiment(benchmark, tmp_path):
    counter = iter(range(10_000))

    def run():
        return _baseline_run(tmp_path / f"run{next(counter)}")

    gis = benchmark(run)
    assert gis.exists("veg_pca") and gis.exists("veg_spca")


def test_expC_reproduction_matrix(benchmark, tmp_path):
    """The headline comparison: who can explain / reproduce what."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    catalog, c7, c8 = _gaea_run(size=16)
    kernel = catalog.kernel
    gis = _baseline_run(tmp_path / "orig", size=16)

    rows = []

    # -- Gaea: derivation is first-class metadata -------------------------
    lineage = kernel.provenance.lineage(c7.oid)
    gaea_explains = lineage.processes_used() == ["P6", "P6", "P7"]
    rerun = kernel.derivations.reproduce_task(lineage.steps[-1].task_id)
    gaea_reproduces = rerun.output["data"] == c7["data"]
    # A "colleague" = any other session over the same kernel state: the
    # task log travels with the database.
    colleague_lineage = kernel.provenance.lineage(c8.oid)
    gaea_colleague = colleague_lineage.processes_used()[-1] == "P8"
    rows.append(("Gaea",
                 "yes" if gaea_explains else "NO",
                 "yes" if gaea_reproduces else "NO",
                 "yes" if gaea_colleague else "NO"))

    # -- Baseline with transcript ------------------------------------------
    explains = gis.derivation_of("veg_pca") is not None
    original = gis.read_raster("veg_pca")
    reproduced = gis.reproduce("veg_pca")
    reproduces = np.array_equal(original.data, reproduced.data)
    # Colleague: same files, no transcript.
    colleague = FileGIS(workdir=gis.workdir, keep_transcript=False)
    try:
        colleague.reproduce("veg_pca")
        colleague_ok = True
    except GaeaError:
        colleague_ok = False
    rows.append(("File GIS + transcript",
                 "yes" if explains else "NO",
                 "yes" if reproduces else "NO",
                 "yes" if colleague_ok else "NO"))

    # -- Baseline without transcript (the common case the paper attacks) --
    sloppy = _baseline_run(tmp_path / "sloppy", size=16,
                           keep_transcript=False)
    rows.append(("File GIS, no transcript",
                 "yes" if sloppy.derivation_of("veg_pca") else "NO",
                 "NO", "NO"))

    report("EXP-C: reproducibility matrix (Eastman PCA-vs-SPCA experiment)",
           rows, header=("system", "explains derivation",
                         "author reproduces", "colleague reproduces"))
    assert rows[0] == ("Gaea", "yes", "yes", "yes")
    assert rows[2][2] == "NO" and rows[2][3] == "NO"


def test_expC_metadata_overhead(benchmark, tmp_path):
    """What Gaea pays for its metadata: wall-clock ratio of the full
    experiment, Gaea vs. bare files."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    start = time.perf_counter()
    _gaea_run(size=32)
    t_gaea = time.perf_counter() - start

    start = time.perf_counter()
    _baseline_run(tmp_path / "timing", size=32)
    t_base = time.perf_counter() - start

    ratio = t_gaea / t_base
    report("EXP-C: metadata overhead", [
        ("file baseline", f"{t_base * 1e3:.1f} ms", "1.0x"),
        ("Gaea", f"{t_gaea * 1e3:.1f} ms", f"{ratio:.1f}x"),
    ], header=("system", "experiment wall-clock", "relative"))
    # Gaea costs more (planning, storage, task log) but stays within an
    # order of magnitude at realistic scene sizes.
    assert ratio < 50
