"""EXP-H — prepared statements: plan-once/bind-many retrieval latency.

The paper's interactive scientists issue many near-identical retrievals
over the same classes (retrieve-vs-derive decisions per region/epoch).
The v2 client API prepares such a statement once and binds it per call,
serving the plan from the connection's LRU cache; the legacy session
re-lexes, re-parses and re-plans the statement text every time.

This experiment measures repeated parameterized retrieval latency with
the plan cache cold vs warm, and against the legacy per-call pipeline,
verifying the cache-hit accounting along the way.
"""

import time

from conftest import report

from repro import connect
from repro.figures import AFRICA
from repro.gis import SceneGenerator
from repro.query import GaeaSession
from repro.temporal import AbsTime

DDL = """
DEFINE CLASS landsat_tm (
  ATTRIBUTES: area = char16; band = char16; data = image;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
)
DEFINE CLASS land_cover (
  ATTRIBUTES: area = char16; numclass = int4; data = image;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
  DERIVED BY: P20
)
DEFINE PROCESS P20
OUTPUT land_cover
ARGUMENT ( SETOF landsat_tm bands >= 3 )
TEMPLATE {
  ASSERTIONS:
    card(bands) = 3;
    common(bands.spatialextent);
    common(bands.timestamp);
  MAPPINGS:
    land_cover.data = unsuperclassify(composite(bands), 12);
    land_cover.numclass = 12;
    land_cover.area = ANYOF bands.area;
    land_cover.spatialextent = ANYOF bands.spatialextent;
    land_cover.timestamp = ANYOF bands.timestamp;
}
"""

QUERY = ("SELECT FROM landsat_tm WHERE spatialextent OVERLAPS "
         "(-20, -35, 52, 38) AND timestamp = {stamp} AND band = {band}")
PREPARED = ("SELECT FROM landsat_tm WHERE spatialextent OVERLAPS "
            "(?, ?, ?, ?) AND timestamp = ? AND band = ?")

BANDS = ("red", "nir", "green")
REPETITIONS = 100
ROUNDS = 3


def _loaded_connection():
    conn = connect(universe=AFRICA)
    conn.cursor().run(DDL)
    generator = SceneGenerator(seed=7, nrow=16, ncol=16)
    stamp = AbsTime.from_ymd(1986, 1, 15)
    for band, image in zip(BANDS, generator.scene("africa", 1986, 1)):
        conn.kernel.store.store("landsat_tm", {
            "area": "africa", "band": band, "data": image,
            "spatialextent": AFRICA, "timestamp": stamp,
        })
    return conn


def _binds(i):
    return [-20.0, -35.0, 52.0, 38.0, "1986-01-15", BANDS[i % len(BANDS)]]


def _run_legacy(session, repetitions=REPETITIONS):
    """The v1 path: fresh statement text through the full pipeline."""
    for i in range(repetitions):
        stamp, band = "'1986-01-15'", f"'{BANDS[i % len(BANDS)]}'"
        [result] = session.execute(QUERY.format(stamp=stamp, band=band))
        assert len(result.objects) == 1


def _run_prepared(conn, prepared, repetitions=REPETITIONS):
    """The v2 path: plan once, bind per execution, stream the rows."""
    cursor = conn.cursor()
    for i in range(repetitions):
        cursor.execute(prepared, _binds(i))
        assert len(cursor.fetchall()) == 1


def _best_of(rounds, fn, *args):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def test_expH_prepared_vs_legacy_latency():
    """100 parameterized retrievals: prepared+cached beats re-planning."""
    conn = _loaded_connection()
    session = GaeaSession(kernel=conn.kernel)

    # Cold: the very first execution pays lex+parse+plan and fills the
    # cache; measure it separately from the warm steady state.
    prepared = conn.prepare(PREPARED)
    cold_start = time.perf_counter()
    _run_prepared(conn, prepared, repetitions=1)
    cold = time.perf_counter() - cold_start

    warm_total = _best_of(ROUNDS, _run_prepared, conn, prepared)
    legacy_total = _best_of(ROUNDS, _run_legacy, session)

    hits, misses = conn.cache_hits, conn.cache_misses
    report(
        "EXP-H prepared queries (100 parameterized retrievals)",
        [
            ("legacy session.execute(str)", f"{legacy_total * 1e3:.2f}",
             "re-parse + re-plan each call"),
            ("prepared, cache warm", f"{warm_total * 1e3:.2f}",
             f"{hits} plan-cache hits"),
            ("prepared, first call (cold)", f"{cold * 1e3:.2f}",
             "fills the cache"),
            ("speedup (legacy/warm)", f"{legacy_total / warm_total:.2f}x",
             ""),
        ],
        header=("configuration", "total ms", "notes"),
    )

    # Every warm execution was served from the plan cache...
    assert hits >= ROUNDS * REPETITIONS
    # ...the prepare itself was the only miss on this statement.
    assert misses <= 2
    # And skipping re-parse/re-plan must be measurably faster.
    assert warm_total < legacy_total


def test_expH_cache_accounting_per_execution():
    """Each of N executions after prepare is exactly one cache hit."""
    conn = _loaded_connection()
    prepared = conn.prepare(PREPARED)
    assert (conn.cache_hits, conn.plan_cache.invalidations) == (0, 0)
    _run_prepared(conn, prepared)
    assert conn.cache_hits == REPETITIONS
    assert conn.plan_cache.invalidations == 0


def test_expH_ddl_invalidation_cost_is_one_replan():
    """DDL between executions costs exactly one re-plan, not a cold cache."""
    conn = _loaded_connection()
    prepared = conn.prepare(PREPARED)
    _run_prepared(conn, prepared, repetitions=10)
    conn.execute("DEFINE CONCEPT probe MEMBERS landsat_tm")
    _run_prepared(conn, prepared, repetitions=10)
    assert conn.plan_cache.invalidations == 1
    assert conn.cache_hits == 19  # 10 + 9 after the single re-plan
