"""EXP-M — vectorized batch-at-a-time execution vs. row-at-a-time.

The Volcano operator tree can run in two modes: the classic scalar
row-at-a-time pull loop, and the columnar batch mode where scans emit
~1024-row NumPy :class:`~repro.query.batch.Batch` slabs and Filter /
Sort / HashAggregate / projection run as array operations.  This
experiment stores 20,000 objects and times representative query shapes
in both modes over identical data and plans, asserting the ≥10×
speedup the batch path promises on a selective retrieval-filter and on
a grouped aggregate, and writing the measured ops/sec to
``BENCH_expM.json`` so CI archives the numbers next to the timing log.
"""

import json
import pathlib
import time

from conftest import report

from repro import connect
from repro.figures import AFRICA
from repro.query.batch import scalar_execution

DDL = """
DEFINE CLASS measurement (
  ATTRIBUTES: code = int4; reading = float8; tag = char16;
)
"""

N_OBJECTS = 20_000
N_CODES = 1_000  # code = k matches ~20 of 20,000 rows

BENCHMARKS = {
    # a selective retrieval-filter: full scan, vectorized predicate mask
    "filter_eq": "SELECT code, reading FROM measurement WHERE code = 7",
    # a range filter over a float column
    "filter_range": ("SELECT code FROM measurement "
                     "WHERE reading >= 10.0 AND reading <= 10.5"),
    # a grouped aggregate: np.argsort grouping + reduceat reductions
    "aggregate_group": ("SELECT code, count(*), avg(reading) "
                        "FROM measurement GROUP BY code"),
    # an ungrouped aggregate collapsing the whole relation
    "aggregate_scalar": "SELECT count(*), avg(reading) FROM measurement",
    # ORDER BY + LIMIT: stable argsort against a bounded heap
    "top_k": ("SELECT code, reading FROM measurement "
              "ORDER BY reading DESC LIMIT 10"),
}

#: Minimum speedup asserted per benchmark.  The headline ≥10× claims
#: ride the shapes with the widest measured margins; the others assert
#: a conservative floor so a regression still fails loudly.
FLOORS = {
    "filter_eq": 10.0,
    "filter_range": 6.0,
    "aggregate_group": 10.0,
    "aggregate_scalar": 6.0,
    "top_k": 6.0,
}

REPETITIONS = 5
ROUNDS = 3

RESULTS_PATH = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_expM.json"


def _loaded_connection():
    conn = connect(universe=AFRICA)
    conn.cursor().run(DDL)
    store = conn.kernel.store
    for i in range(N_OBJECTS):
        store.store("measurement", {
            "code": i % N_CODES,
            # multiples of 0.25 are exactly representable, so both
            # modes' aggregates agree bit-for-bit
            "reading": (i % 997) * 0.25,
            "tag": f"t{i % 50}",
        })
    return conn


def _timed(cursor, query):
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for _ in range(REPETITIONS):
            cursor.execute(query)
            cursor.fetchall()
        best = min(best, (time.perf_counter() - start) / REPETITIONS)
    return best


def test_expM_vectorized_speedups():
    """Batch mode must beat scalar mode ≥10× on the filter and the
    grouped aggregate (and never regress below the per-shape floor)."""
    cur = _loaded_connection().cursor()

    timings = {}
    for name, query in BENCHMARKS.items():
        vectorized = _timed(cur, query)
        with scalar_execution():
            scalar = _timed(cur, query)
        rows = len(cur.execute(query).fetchall())
        timings[name] = {
            "query": query,
            "rows_out": rows,
            "vectorized_ms": vectorized * 1e3,
            "scalar_ms": scalar * 1e3,
            "vectorized_ops_per_sec": 1.0 / vectorized,
            "scalar_ops_per_sec": 1.0 / scalar,
            "speedup": scalar / vectorized,
        }

    RESULTS_PATH.write_text(json.dumps({
        "experiment": "EXP-M vectorized execution",
        "objects": N_OBJECTS,
        "repetitions": REPETITIONS,
        "rounds": ROUNDS,
        "benchmarks": timings,
    }, indent=2) + "\n")

    report(
        f"EXP-M vectorized execution ({N_OBJECTS} objects, best of "
        f"{ROUNDS}×{REPETITIONS})",
        [
            (name,
             f"{entry['vectorized_ms']:.2f}",
             f"{entry['scalar_ms']:.2f}",
             f"{entry['speedup']:.1f}x",
             entry["rows_out"])
            for name, entry in timings.items()
        ],
        header=("benchmark", "vectorized ms", "scalar ms", "speedup",
                "rows"),
    )

    for name, entry in timings.items():
        assert entry["speedup"] >= FLOORS[name], (
            f"{name}: {entry['speedup']:.1f}x < {FLOORS[name]}x floor"
        )


def test_expM_modes_agree():
    """Same rows out of both modes for every benchmarked shape."""
    cur = _loaded_connection().cursor()
    for query in BENCHMARKS.values():
        vectorized = cur.execute(query).fetchall()
        with scalar_execution():
            scalar = cur.execute(query).fetchall()
        assert vectorized == scalar, query


def test_expM_explain_marks_modes():
    """The plan dump annotates every operator with its execution mode."""
    cur = _loaded_connection().cursor()
    dump = cur.explain(BENCHMARKS["aggregate_group"])
    lines = [line for line in dump.splitlines() if "[rows~" in line]
    assert lines
    assert any("[vectorized batch=" in line for line in lines)
    for line in lines:
        assert "[vectorized batch=" in line or "[scalar]" in line, line
    with scalar_execution():
        assert "[vectorized" not in cur.explain(
            BENCHMARKS["aggregate_group"])
