"""EXP-B — Petri-net derivation planning (§2.1.6).

Measures reachability and back-propagation planning cost as the
derivation net grows (chain depth; OR-fanout width), verifies planner
success/failure against ground truth, and runs the ablation of the
paper's modification #1: under classical *consuming* semantics, plans
that reuse an input fail.
"""

import pytest
from conftest import report

from repro.core import DerivationNet
from repro.errors import DerivationError, UnderivableError


def _chain(depth: int) -> DerivationNet:
    """base -> P1 -> c1 -> P2 -> ... -> c_depth."""
    net = DerivationNet()
    previous = "base"
    for i in range(depth):
        net.add_transition(f"P{i}", [(previous, 1)], f"c{i}")
        previous = f"c{i}"
    return net


def _fanout(width: int) -> DerivationNet:
    """`width` alternative processes derive the goal; only one viable."""
    net = DerivationNet()
    for i in range(width):
        net.add_transition(f"via{i}", [(f"src{i}", 1)], "goal")
    return net


def _diamond_ladder(levels: int) -> DerivationNet:
    """Stacked diamonds: each level joins two branches of the previous."""
    net = DerivationNet()
    net.add_place("L0")
    for level in range(1, levels + 1):
        below = f"L{level - 1}"
        net.add_transition(f"l{level}", [(below, 1)], f"A{level}")
        net.add_transition(f"r{level}", [(below, 1)], f"B{level}")
        net.add_transition(
            f"join{level}", [(f"A{level}", 1), (f"B{level}", 1)], f"L{level}"
        )
    return net


@pytest.mark.parametrize("depth", [4, 16, 64, 256])
def test_expB_chain_planning_scaling(benchmark, depth):
    net = _chain(depth)
    plan = benchmark(net.backward_plan, f"c{depth - 1}", {"base": 1})
    assert plan.length == depth


@pytest.mark.parametrize("width", [4, 32, 256])
def test_expB_fanout_or_choice(benchmark, width):
    net = _fanout(width)
    # Only the last alternative's source is stored.
    marking = {f"src{width - 1}": 1}
    plan = benchmark(net.backward_plan, "goal", marking)
    assert plan.steps == (f"via{width - 1}",)


@pytest.mark.parametrize("levels", [2, 6, 12])
def test_expB_diamond_ladder(benchmark, levels):
    net = _diamond_ladder(levels)
    plan = benchmark(net.backward_plan, f"L{levels}", {"L0": 1})
    assert plan.length == 3 * levels


@pytest.mark.parametrize("depth", [16, 128])
def test_expB_forward_reachability(benchmark, depth):
    net = _chain(depth)
    assert benchmark(net.reachable, {"base": 1}, f"c{depth - 1}")


def test_expB_failure_detection(benchmark):
    """Back-propagation 'stops at some base class and we fail' — the
    planner must report failure, not loop."""
    net = _chain(32)

    def fail():
        try:
            net.backward_plan("c31", {})
        except UnderivableError:
            return True
        return False

    assert benchmark(fail)


def test_expB_consuming_ablation(benchmark):
    """Ablating modification #1 (non-consuming tokens): every plan that
    reuses an input place breaks under classical semantics."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for levels in (1, 2, 4):
        net = _diamond_ladder(levels)
        plan = net.backward_plan(f"L{levels}", {"L0": 1})
        final = net.replay(plan, {"L0": 1}, consuming=False)
        nonconsuming_ok = final.get(f"L{levels}", 0) > 0
        try:
            net.replay(plan, {"L0": 1}, consuming=True)
            consuming_ok = True
        except DerivationError:
            consuming_ok = False
        rows.append((f"{levels} diamond level(s)", plan.length,
                     "ok" if nonconsuming_ok else "FAIL",
                     "ok" if consuming_ok else "FAIL (token consumed)"))
    report("EXP-B ablation: non-consuming vs consuming firing", rows,
           header=("net", "plan steps", "paper semantics",
                   "classical semantics"))
    # Paper semantics always succeed; classical always fail on diamonds.
    assert all(row[2] == "ok" for row in rows)
    assert all(row[3] != "ok" for row in rows)


def test_expB_guard_pruning(benchmark):
    """Modification #3: guards prune enabled transitions, shrinking the
    search: a guarded producer is skipped for an unguarded alternative."""
    net = DerivationNet()
    net.add_transition("guarded", [("a", 1)], "goal",
                       guard=lambda m: False)
    net.add_transition("open", [("b", 1)], "goal")

    def plan():
        closure = net.forward_closure({"a": 1, "b": 1})
        return closure

    closure = benchmark(plan)
    assert closure.get("goal", 0) > 0
    # With only the guarded path available, the goal is unreachable.
    assert net.forward_closure({"a": 1}).get("goal", 0) == 0
