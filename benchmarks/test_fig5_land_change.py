"""FIG-5 — regenerate the land-change-detection compound process.

Defines the compound, verifies its expansion into primitive processes
(§2.1.4: a compound "must be expanded into its primitive processes before
actual derivation takes place"), executes it end-to-end over two years of
synthetic TM, and checks the task-level provenance of the result.
"""

import numpy as np
from conftest import report

from repro.figures import build_figure2, build_figure5, populate_scenes


def _prepared(size=16):
    catalog = build_figure2()
    populate_scenes(catalog, seed=41, size=size, years=(1988, 1989))
    build_figure5(catalog)
    kernel = catalog.kernel
    scenes = kernel.store.objects("landsat_tm_rectified")
    early = [o for o in scenes if o["timestamp"].year == 1988]
    late = [o for o in scenes if o["timestamp"].year == 1989]
    return catalog, early, late


def test_fig5_expansion(benchmark):
    catalog, _, _ = _prepared()
    derivations = catalog.kernel.derivations
    compound = derivations.compounds.get("land-change-detection")

    def expand():
        return compound.expand(derivations.processes, derivations.compounds)

    steps = benchmark(expand)
    assert [s.process for s in steps] == ["P20", "P20", "P21"]
    report("Figure 5: compound expansion", [
        (s.label, s.process,
         ",".join(f"{a}<-{src}" for a, src in sorted(s.bindings.items())))
        for s in steps
    ], header=("step", "process", "wiring"))


def test_fig5_execute_compound(benchmark):
    catalog, early, late = _prepared()
    kernel = catalog.kernel

    def run():
        return kernel.derivations.execute_compound(
            "land-change-detection",
            {"tm_early": early, "tm_late": late},
            reuse=False,
        )

    result = benchmark(run)
    assert result.output.class_name == "land_cover_changes_c21"
    changed = float(np.mean(result.output["data"].data != 0))
    assert 0.0 < changed <= 1.0


def test_fig5_provenance_depth(benchmark):
    catalog, early, late = _prepared()
    kernel = catalog.kernel
    result = kernel.derivations.execute_compound(
        "land-change-detection", {"tm_early": early, "tm_late": late}
    )

    def lineage():
        return kernel.provenance.lineage(result.output.oid)

    lin = benchmark(lineage)
    assert lin.depth == 2
    assert lin.processes_used() == ["P20", "P20", "P21"]
    assert len(lin.base_oids) == 6  # two 3-band scenes


def test_fig5_memoized_reexecution(benchmark):
    """Re-running the compound over the same scenes reuses all three
    recorded tasks — no image work at all."""
    catalog, early, late = _prepared()
    kernel = catalog.kernel
    kernel.derivations.execute_compound(
        "land-change-detection", {"tm_early": early, "tm_late": late}
    )

    def rerun():
        return kernel.derivations.execute_compound(
            "land-change-detection", {"tm_early": early, "tm_late": late}
        )

    result = benchmark(rerun)
    assert result.reused
