"""EXP-F — storage-substrate viability.

The derivation framework sits on the POSTGRES-substitute engine; this
experiment measures the substrate's primitive costs (insert, scan,
B-tree / spatial / temporal lookups, WAL recovery) so the higher-level
numbers of EXP-A…E can be interpreted.
"""

import pytest
from conftest import report

from repro.adt import make_standard_registries
from repro.spatial import Box
from repro.storage import StorageEngine
from repro.temporal import AbsTime


def _engine(rows: int = 0, index: bool = True) -> StorageEngine:
    types, _ = make_standard_registries()
    engine = StorageEngine(types=types)
    engine.create_relation("scenes", [
        ("area", "char16"), ("spatialextent", "box"),
        ("timestamp", "abstime"), ("resolution", "float4"),
    ])
    if index:
        engine.create_index("scenes", "area")
        engine.create_spatial_index("scenes", "spatialextent",
                                    universe=Box(-180, -90, 180, 90))
        engine.create_temporal_index("scenes", "timestamp")
    for i in range(rows):
        engine.insert_row("scenes", _row(i))
    return engine


def _row(i: int):
    x = float((i * 7) % 300 - 150)
    y = float((i * 13) % 140 - 70)
    return (f"area{i % 50}", Box(x, y, x + 5, y + 5), AbsTime(i % 1000),
            30.0 + i % 10)


@pytest.mark.parametrize("indexed", [True, False],
                         ids=["indexed", "heap-only"])
def test_expF_insert_throughput(benchmark, indexed):
    engine = _engine(index=indexed)
    counter = iter(range(10_000_000))

    def insert():
        engine.insert_row("scenes", _row(next(counter)))

    benchmark(insert)


@pytest.mark.parametrize("rows", [100, 1000])
def test_expF_full_scan(benchmark, rows):
    engine = _engine(rows=rows)

    def scan():
        return sum(1 for _ in engine.scan("scenes"))

    assert benchmark(scan) == rows


def test_expF_btree_point_lookup(benchmark):
    engine = _engine(rows=1000)

    def lookup():
        return engine.lookup("scenes", "area", "area7")

    rows = benchmark(lookup)
    assert len(rows) == 20


def test_expF_spatial_lookup(benchmark):
    engine = _engine(rows=1000)
    query = Box(-10, -10, 10, 10)

    def lookup():
        return engine.spatial_lookup("scenes", query)

    rows = benchmark(lookup)
    assert all(row["spatialextent"].overlaps(query) for row in rows)


def test_expF_temporal_lookup(benchmark):
    engine = _engine(rows=1000)

    def lookup():
        return engine.temporal_lookup("scenes", AbsTime(500))

    rows = benchmark(lookup)
    assert all(row["timestamp"] == AbsTime(500) for row in rows)


def test_expF_index_vs_scan_selectivity(benchmark):
    """The series behind index choice: lookup vs scan latency at growing
    relation sizes."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    import time

    rows_out = []
    for n in (200, 1000, 5000):
        engine = _engine(rows=n)
        start = time.perf_counter()
        engine.lookup("scenes", "area", "area7")
        t_idx = time.perf_counter() - start
        start = time.perf_counter()
        matches = [r for r in engine.scan("scenes") if r["area"] == "area7"]
        t_scan = time.perf_counter() - start
        rows_out.append((n, f"{t_idx * 1e6:.0f} us",
                         f"{t_scan * 1e6:.0f} us",
                         f"{t_scan / t_idx:.1f}x"))
        assert len(matches) == n // 50
    report("EXP-F: B-tree lookup vs heap scan", rows_out,
           header=("rows", "index lookup", "full scan", "scan/index"))


def test_expF_wal_recovery(benchmark):
    engine = _engine(rows=500, index=False)
    types = engine.types

    def recover():
        return StorageEngine.recover(engine.wal, types)

    recovered = benchmark(recover)
    assert recovered.stats("scenes")["visible_rows"] == 500


def test_expF_no_overwrite_versioning(benchmark):
    """Update churn: versions accumulate, visibility filters correctly."""
    engine = _engine(rows=100, index=False)

    def churn():
        tids = [row.tid for row in engine.scan("scenes")][:10]
        tx = engine.begin()
        new_tids = [
            engine.update("scenes", tid, _row(1000 + i), tx)
            for i, tid in enumerate(tids)
        ]
        engine.commit(tx)
        return new_tids

    benchmark(churn)
    stats = engine.stats("scenes")
    assert stats["visible_rows"] == 100
    assert stats["versions"] > 100
