"""EXP-G — costs of the future-work extensions.

Beyond the paper: interactive-process overhead (resolution + replay),
spatial-mosaic interpolation vs. re-derivation, and kernel checkpoint
save/load throughput.
"""

import numpy as np
import pytest
from conftest import report

from repro.adt import Image, Matrix
from repro.core import (
    AnyOf,
    Apply,
    Argument,
    AttrRef,
    NonPrimitiveClass,
    ParamRef,
    Process,
    load_kernel,
    open_kernel,
    save_kernel,
)
from repro.figures import AFRICA, build_figure2, populate_scenes
from repro.gis import register_gis_operators
from repro.spatial import Box
from repro.temporal import AbsTime


def _interactive_kernel(size=32):
    kernel = open_kernel(universe=AFRICA)
    register_gis_operators(kernel.operators)
    kernel.derivations.define_class(NonPrimitiveClass(
        name="tm_scene",
        attributes=(("band", "char16"), ("data", "image"),
                    ("spatialextent", "box"), ("timestamp", "abstime")),
    ))
    kernel.derivations.define_class(NonPrimitiveClass(
        name="supervised_cover",
        attributes=(("data", "image"), ("spatialextent", "box"),
                    ("timestamp", "abstime")),
        derived_by="supervised-classification",
    ))
    kernel.derivations.define_process(Process(
        name="supervised-classification",
        output_class="supervised_cover",
        arguments=(Argument(name="bands", class_name="tm_scene",
                            is_set=True, min_cardinality=2),),
        interactions={"signatures": "digitize training signatures"},
        mappings={
            "data": Apply("superclassify",
                          (Apply("composite", (AttrRef("bands", "data"),)),
                           ParamRef("signatures"))),
            "spatialextent": AnyOf(AttrRef("bands", "spatialextent")),
            "timestamp": AnyOf(AttrRef("bands", "timestamp")),
        },
    ))
    from repro.gis import SceneGenerator

    generator = SceneGenerator(seed=14, nrow=size, ncol=size)
    bands = [
        kernel.store.store("tm_scene", {
            "band": name, "data": generator.band("africa", 1986, 7, name),
            "spatialextent": AFRICA,
            "timestamp": AbsTime.from_ymd(1986, 7, 1),
        })
        for name in ("red", "nir")
    ]
    return kernel, bands


SIGNATURES = Matrix.from_array([[0.05, 0.03], [0.06, 0.45]])


def test_expG_interactive_execution(benchmark):
    kernel, bands = _interactive_kernel()

    def run():
        return kernel.derivations.execute_process(
            "supervised-classification", {"bands": bands},
            interaction_handler=lambda n, p: SIGNATURES, reuse=False,
        )

    result = benchmark(run)
    assert result.task.parameters["signatures"] == SIGNATURES


def test_expG_interactive_replay(benchmark):
    kernel, bands = _interactive_kernel()
    original = kernel.derivations.execute_process(
        "supervised-classification", {"bands": bands},
        interaction_handler=lambda n, p: SIGNATURES,
    )

    def replay():
        return kernel.derivations.reproduce_task(original.task.task_id)

    rerun = benchmark(replay)
    assert rerun.output["data"] == original.output["data"]


def _mosaic_kernel(tiles=4, size=32):
    kernel = open_kernel(universe=AFRICA)
    register_gis_operators(kernel.operators)
    kernel.derivations.define_class(NonPrimitiveClass(
        name="elevation",
        attributes=(("area", "char16"), ("data", "image"),
                    ("spatialextent", "box"), ("timestamp", "abstime")),
    ))
    for i in range(tiles):
        kernel.store.store("elevation", {
            "area": "ridge",
            "data": Image.from_array(
                np.full((size, size), 100.0 * (i + 1)), "float4"),
            "spatialextent": Box(8.0 * i, 0.0, 8.0 * i + 10.0, 10.0),
            "timestamp": AbsTime(0),
        })
    return kernel


@pytest.mark.parametrize("tiles", [2, 4, 8])
def test_expG_mosaic_scaling(benchmark, tiles):
    kernel = _mosaic_kernel(tiles=tiles)
    query = Box(2.0, 2.0, 8.0 * (tiles - 1) + 8.0, 8.0)

    def setup():
        return (_mosaic_kernel(tiles=tiles),), {}

    def run(fresh):
        return fresh.planner.retrieve("elevation", spatial=query,
                                      spatial_coverage=True)

    result = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    assert result.path == "interpolate"
    assert kernel is not None


def test_expG_checkpoint_roundtrip(benchmark, tmp_path):
    catalog = build_figure2()
    populate_scenes(catalog, seed=19, size=32, years=(1988, 1989))
    catalog.session.execute_one("SELECT FROM desert_rain250_c2")
    path = tmp_path / "kernel.ckpt"
    counter = iter(range(10_000))

    def roundtrip():
        target = tmp_path / f"k{next(counter)}.ckpt"
        written = save_kernel(catalog.kernel, target)
        restored = load_kernel(target)
        return written, restored

    written, restored = benchmark(roundtrip)
    assert restored.store.count("desert_rain250_c2") == 1
    report("EXP-G: kernel checkpoint", [
        ("classes", len(restored.classes.names())),
        ("stored objects (landsat bands)", restored.store.count(
            "landsat_tm_rectified")),
        ("recorded tasks", len(restored.derivations.tasks)),
        ("checkpoint size", f"{written / 1024:.0f} KiB"),
    ], header=("quantity", "value"))
    assert path is not None
