"""FIG-3 — regenerate the unsupervised-classification process definition.

Parses the paper's DEFINE PROCESS statement (verbatim structure: output
class, SETOF argument, card/common assertions, unsuperclassify∘composite
mapping, ANYOF extent transfer), executes it over synthetic rectified TM,
and verifies the assertions both pass and guard.
"""

import pytest
from conftest import report

from repro.errors import AssertionViolatedError
from repro.figures import AFRICA, FIGURE3_SOURCE, build_figure3
from repro.gis import SceneGenerator
from repro.query import parse_statement
from repro.temporal import AbsTime


def _loaded_session(size=32):
    session = build_figure3()
    generator = SceneGenerator(seed=17, nrow=size, ncol=size)
    stamp = AbsTime.from_ymd(1986, 1, 15)
    for band, image in zip(("red", "nir", "green"),
                           generator.scene("africa", 1986, 1)):
        session.kernel.store.store("landsat_tm_rect", {
            "band": band, "data": image,
            "spatialextent": AFRICA, "timestamp": stamp,
        })
    return session


def test_fig3_parse_definition(benchmark):
    stmt = benchmark(parse_statement, FIGURE3_SOURCE)
    assert stmt.name == "unsupervised-classification"
    assert stmt.output_class == "land_cover"
    assert len(stmt.assertions) == 3
    mappings = dict(stmt.mappings)
    assert str(mappings["data"]) == \
        "unsuperclassify(composite(bands.data), 12)"
    assert str(mappings["spatialextent"]) == "ANYOF bands.spatialextent"
    report("Figure 3: parsed process P20", [
        ("name", stmt.name),
        ("output", stmt.output_class),
        ("argument", str(stmt.arguments[0])),
        *[("assertion", str(a)) for a in stmt.assertions],
        *[(f"mapping {attr}", str(expr)) for attr, expr in stmt.mappings],
    ], header=("element", "value"))


def test_fig3_execute_p20(benchmark):
    session = _loaded_session()
    kernel = session.kernel
    bands = kernel.store.objects("landsat_tm_rect")

    def run():
        return kernel.derivations.execute_process(
            "unsupervised-classification", {"bands": bands}, reuse=False,
        )

    result = benchmark(run)
    cover = result.output
    assert cover["numclass"] == 12
    assert int(cover["data"].data.max()) <= 11
    assert cover["spatialextent"] == AFRICA
    assert cover["timestamp"] == AbsTime.from_ymd(1986, 1, 15)


def test_fig3_assertions_guard(benchmark):
    """The template's guard rules actually reject bad inputs."""
    session = _loaded_session(size=16)
    kernel = session.kernel
    bands = kernel.store.objects("landsat_tm_rect")
    generator = SceneGenerator(seed=18, nrow=16, ncol=16)
    stray = kernel.store.store("landsat_tm_rect", {
        "band": "red", "data": generator.band("africa", 1987, 1, "red"),
        "spatialextent": AFRICA, "timestamp": AbsTime.from_ymd(1987, 1, 15),
    })

    def violations():
        count = 0
        # card(bands) = 3 violated.
        try:
            kernel.derivations.execute_process(
                "unsupervised-classification", {"bands": bands[:2]})
        except AssertionViolatedError:
            count += 1
        # common(bands.timestamp) violated.
        try:
            kernel.derivations.execute_process(
                "unsupervised-classification",
                {"bands": [bands[0], bands[1], stray]})
        except AssertionViolatedError:
            count += 1
        return count

    assert benchmark(violations) == 2


@pytest.mark.parametrize("size", [16, 32, 64])
def test_fig3_p20_scaling(benchmark, size):
    """Classification cost vs. scene size (the task-level workload of the
    'land use classification for January 1986 for Africa' example)."""
    session = _loaded_session(size=size)
    kernel = session.kernel
    bands = kernel.store.objects("landsat_tm_rect")

    def run():
        return kernel.derivations.execute_process(
            "unsupervised-classification", {"bands": bands}, reuse=False,
        )

    result = benchmark(run)
    assert result.output["data"].shape == (size, size)
