"""EXP-A — the §2.1.5 retrieval priority: retrieve ≺ interpolate ≺ derive.

The paper orders the three query-answering paths by preference; the
implicit claim is a cost gradient — stored data is cheapest, synthesis by
interpolation cheaper than full derivation.  The benchmark measures each
path answering the *same* query on LAND_COVER, and the report prints the
measured latencies so EXPERIMENTS.md can record the shape: retrieve <
interpolate < derive.
"""

import time

import pytest
from conftest import report

from repro.figures import build_figure2, populate_scenes
from repro.temporal import AbsTime


def _catalog(size):
    catalog = build_figure2()
    populate_scenes(catalog, seed=61, size=size, years=(1988, 1989))
    return catalog


@pytest.mark.parametrize("size", [16, 48])
class TestRetrievalPaths:
    def test_expA_derive_path(self, benchmark, size):
        """Path 3: full derivation (classification over 3 bands)."""
        catalog = _catalog(size)

        def derive():
            # A fresh planner call that must compute: clear nothing, just
            # query a timestamp whose cover is not yet materialized.
            result = catalog.kernel.planner.retrieve(
                "land_cover_c20", temporal=AbsTime.from_ymd(1988, 7, 1)
            )
            return result

        # Only the first call derives; later calls retrieve.  Benchmark
        # the derive by rebuilding state per round via setup.
        def setup():
            return (_catalog(size),), {}

        def run(cat):
            return cat.kernel.planner.retrieve(
                "land_cover_c20", temporal=AbsTime.from_ymd(1988, 7, 1)
            )

        result = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
        assert result.path == "derive"

    def test_expA_retrieve_path(self, benchmark, size):
        """Path 1: direct retrieval of the materialized cover."""
        catalog = _catalog(size)
        catalog.kernel.planner.retrieve(
            "land_cover_c20", temporal=AbsTime.from_ymd(1988, 7, 1)
        )

        def run():
            return catalog.kernel.planner.retrieve(
                "land_cover_c20", temporal=AbsTime.from_ymd(1988, 7, 1)
            )

        result = benchmark(run)
        assert result.path == "retrieve"

    def test_expA_interpolate_path(self, benchmark, size):
        """Path 2: temporal interpolation between two stored covers."""
        catalog = _catalog(size)
        for year in (1988, 1989):
            catalog.kernel.planner.retrieve(
                "land_cover_c20", temporal=AbsTime.from_ymd(year, 7, 1)
            )

        def setup():
            # Interpolated objects materialize; query a fresh timestamp
            # each round so the interpolation path is really exercised.
            setup.day += 1
            return (AbsTime.from_ymd(1988, 9, setup.day),), {}

        setup.day = 0

        def run(stamp):
            return catalog.kernel.planner.retrieve("land_cover_c20",
                                                   temporal=stamp)

        result = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
        assert result.path == "interpolate"


def test_expA_path_ordering_summary(benchmark):
    """One-shot wall-clock comparison of the three paths (the series the
    paper's priority order implies), printed for EXPERIMENTS.md."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for size in (16, 48):
        catalog = _catalog(size)
        planner = catalog.kernel.planner

        start = time.perf_counter()
        first = planner.retrieve("land_cover_c20",
                                 temporal=AbsTime.from_ymd(1988, 7, 1))
        t_derive = time.perf_counter() - start
        assert first.path == "derive"

        start = time.perf_counter()
        again = planner.retrieve("land_cover_c20",
                                 temporal=AbsTime.from_ymd(1988, 7, 1))
        t_retrieve = time.perf_counter() - start
        assert again.path == "retrieve"

        planner.retrieve("land_cover_c20",
                         temporal=AbsTime.from_ymd(1989, 7, 1))
        start = time.perf_counter()
        mid = planner.retrieve("land_cover_c20",
                               temporal=AbsTime.from_ymd(1989, 1, 1))
        t_interp = time.perf_counter() - start
        assert mid.path == "interpolate"

        rows.append((f"{size}x{size}",
                     f"{t_retrieve * 1e3:.2f} ms",
                     f"{t_interp * 1e3:.2f} ms",
                     f"{t_derive * 1e3:.2f} ms",
                     "yes" if t_retrieve < t_interp < t_derive else "NO"))
    report("EXP-A: retrieval-path latencies (land_cover_c20)", rows,
           header=("scene", "retrieve", "interpolate", "derive",
                   "ordered?"))
    # The priority gradient must hold at the realistic size.
    assert rows[-1][-1] == "yes"
