"""EXP-E — same method, different parameters ⇒ different processes (§2.1.2).

"One scientist may choose to derive a desertic region based on rainfall
less than 250mm, while another one chooses 200mm for the same parameter.
We make the assumption that the same derivation method with different
parameters represents different processes."

The experiment derives both variants (P2/C2 at 250 mm, P3/C3 at 200 mm),
verifies they are distinct processes producing distinct classes with
genuinely different classifications, and that both remain independently
retrievable — the capability the §1 sharing scenario needs.
"""

import numpy as np
from conftest import report

from repro.figures import build_figure2, populate_scenes


def _catalog(size=32):
    catalog = build_figure2()
    populate_scenes(catalog, seed=91, size=size, years=(1988,))
    return catalog


def test_expE_derive_both_variants(benchmark):
    def run():
        catalog = _catalog(size=16)
        d250 = catalog.session.execute_one("SELECT FROM desert_rain250_c2")
        d200 = catalog.session.execute_one("SELECT FROM desert_rain200_c3")
        return catalog, d250.objects[0], d200.objects[0]

    catalog, c2, c3 = benchmark(run)
    assert c2.class_name != c3.class_name


def test_expE_distinct_processes_distinct_results(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    catalog = _catalog()
    kernel = catalog.kernel
    c2 = catalog.session.execute_one("SELECT FROM desert_rain250_c2").objects[0]
    c3 = catalog.session.execute_one("SELECT FROM desert_rain200_c3").objects[0]

    p2 = kernel.derivations.processes.get("P2")
    p3 = kernel.derivations.processes.get("P3")
    frac250 = float(np.mean(c2["data"].data != 0))
    frac200 = float(np.mean(c3["data"].data != 0))
    subset = bool(np.all(~(c3["data"].data != 0) | (c2["data"].data != 0)))

    report("EXP-E: parameterized desert classification", [
        ("P2 (cutoff 250mm)", str(p2.parameters), f"{frac250:.3f}"),
        ("P3 (cutoff 200mm)", str(p3.parameters), f"{frac200:.3f}"),
    ], header=("process", "parameters", "desert fraction"))

    assert p2.parameters == {"cutoff": 250.0}
    assert p3.parameters == {"cutoff": 200.0}
    assert frac250 > frac200 > 0.0
    assert subset  # 200mm deserts ⊂ 250mm deserts

    # Provenance distinguishes the two derivations of the same concept.
    assert kernel.provenance.same_concept_different_derivation(c2.oid,
                                                               c3.oid)
    concepts = kernel.concepts.concepts_of_class(c2.class_name)
    assert concepts == kernel.concepts.concepts_of_class(c3.class_name)


def test_expE_editing_creates_new_process(benchmark):
    """§2.1.4 obs. 3: editing never overwrites; a third scientist's
    150 mm variant coexists with both originals."""
    catalog = _catalog(size=16)
    kernel = catalog.kernel

    def edit_and_run():
        name = f"P2_strict_{edit_and_run.n}"
        edit_and_run.n += 1
        p2 = kernel.derivations.processes.get("P2")
        if name not in kernel.derivations.processes:
            strict = p2.edited(name, parameters={"cutoff": 150.0})
            kernel.derivations.define_process(strict)
        rain = kernel.store.objects("rainfall_annual")[0]
        return kernel.derivations.execute_process(name, {"rain": rain})

    edit_and_run.n = 0
    result = benchmark(edit_and_run)
    # The edited process derived into P2's output class with the stricter
    # cutoff — fewer desert pixels than the 200 mm variant.
    c3 = catalog.session.execute_one("SELECT FROM desert_rain200_c3")
    frac150 = float(np.mean(result.output["data"].data != 0))
    frac200 = float(np.mean(c3.objects[0]["data"].data != 0))
    assert frac150 <= frac200
    # P2 itself is untouched.
    assert kernel.derivations.processes.get("P2").parameters == {
        "cutoff": 250.0
    }


def test_expE_concept_query_returns_all_variants(benchmark):
    catalog = _catalog(size=16)

    def query():
        return catalog.session.execute("SELECT FROM hot_trade_wind_desert")

    results = benchmark(query)
    assert {r.details["class"] for r in results} == {
        "desert_rain250_c2", "desert_rain200_c3",
        "desert_aridity_c4", "desert_smoothed_c5",
    }
