"""EXP-D — task memoization: avoiding duplicate experiments (§1, §4.2).

"Experiment management also helps avoid unnecessary duplication of
experiments and may encourage the reuse of aspects of previously
performed experiments."  The task log memoizes (process, inputs) pairs;
this experiment measures the hit rate and speedup on a repeated-
derivation workload, with the no-reuse configuration as the ablation.
"""

import time

from conftest import report

from repro.figures import build_figure2, populate_scenes


def _catalog(size=32):
    catalog = build_figure2()
    populate_scenes(catalog, seed=81, size=size, years=(1988, 1989))
    return catalog


def _classification_workload(kernel, reuse: bool, repetitions: int = 5):
    """`repetitions` scientists each derive the same 1988 land cover."""
    scenes = [
        o for o in kernel.store.objects("landsat_tm_rectified")
        if o["timestamp"].year == 1988
    ]
    results = []
    for _ in range(repetitions):
        results.append(kernel.derivations.execute_process(
            "P20", {"bands": scenes}, reuse=reuse,
        ))
    return results


def test_expD_with_memoization(benchmark):
    catalog = _catalog()

    def run():
        return _classification_workload(catalog.kernel, reuse=True)

    results = benchmark(run)
    assert results[0].output.oid == results[-1].output.oid


def test_expD_without_memoization(benchmark):
    catalog = _catalog()

    def run():
        return _classification_workload(catalog.kernel, reuse=False)

    results = benchmark(run)
    assert results[0].output.oid != results[-1].output.oid


def test_expD_hit_rate_and_speedup(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    catalog = _catalog()
    kernel = catalog.kernel

    start = time.perf_counter()
    memoized = _classification_workload(kernel, reuse=True, repetitions=8)
    t_memo = time.perf_counter() - start
    hits = sum(1 for r in memoized if r.reused)

    fresh = _catalog()
    start = time.perf_counter()
    _classification_workload(fresh.kernel, reuse=False, repetitions=8)
    t_none = time.perf_counter() - start

    speedup = t_none / t_memo
    report("EXP-D: task reuse on an 8x repeated classification", [
        ("memoized", f"{hits}/8 hits", f"{t_memo * 1e3:.1f} ms", "-"),
        ("recompute", "0/8 hits", f"{t_none * 1e3:.1f} ms",
         f"{speedup:.1f}x slower"),
    ], header=("mode", "task-log hits", "wall-clock", "relative"))
    assert hits == 7  # all but the first derivation reused
    assert speedup > 2.0


def test_expD_storage_growth(benchmark):
    """Memoization also bounds storage: repeated derivations add no new
    objects, recomputation adds one per run."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    catalog = _catalog(size=16)
    kernel = catalog.kernel
    _classification_workload(kernel, reuse=True, repetitions=6)
    with_memo = kernel.store.count("land_cover_c20")

    fresh = _catalog(size=16)
    _classification_workload(fresh.kernel, reuse=False, repetitions=6)
    without = fresh.kernel.store.count("land_cover_c20")

    report("EXP-D: stored land-cover objects after 6 repeated runs", [
        ("memoized", with_memo), ("recompute", without),
    ], header=("mode", "objects"))
    assert with_memo == 1
    assert without == 6


def test_expD_different_inputs_never_reused(benchmark):
    """Memoization must not over-share: the 1989 scenes get their own
    derivation."""
    catalog = _catalog(size=16)
    kernel = catalog.kernel
    by_year = {
        year: [o for o in kernel.store.objects("landsat_tm_rectified")
               if o["timestamp"].year == year]
        for year in (1988, 1989)
    }

    def run():
        a = kernel.derivations.execute_process(
            "P20", {"bands": by_year[1988]})
        b = kernel.derivations.execute_process(
            "P20", {"bands": by_year[1989]})
        return a, b

    a, b = benchmark(run)
    assert a.output.oid != b.output.oid
