"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates a paper artifact (figure) or quantifies a
paper claim (EXP-A…EXP-F from DESIGN.md).  Structural verification runs
inside each benchmark test so `pytest benchmarks/ --benchmark-only` is a
complete reproduction run; the printed tables are the "rows/series" the
EXPERIMENTS.md records.
"""

from __future__ import annotations

import pytest

from repro.figures import build_figure2, populate_scenes


def report(title: str, rows: list[tuple], header: tuple) -> None:
    """Print a small aligned table under a titled banner."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(header))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))


@pytest.fixture()
def catalog16():
    """Figure-2 catalog with small scenes (fast benchmarks)."""
    catalog = build_figure2()
    populate_scenes(catalog, seed=31, size=16, years=(1988, 1989))
    return catalog


@pytest.fixture()
def catalog48():
    """Figure-2 catalog with medium scenes (realistic image work)."""
    catalog = build_figure2()
    populate_scenes(catalog, seed=31, size=48, years=(1988, 1989))
    return catalog
