"""FIG-4 — regenerate the PCA compound-operator dataflow network.

Builds the five-node network exactly as the figure draws it, verifies it
against the direct PCA computation, exercises the SET OF threshold
semantics, and measures the dataflow-engine overhead vs. the fused
implementation.
"""

import numpy as np
import pytest
from conftest import report

from repro.adt import make_standard_registries
from repro.figures import build_figure4
from repro.gis import SceneGenerator, pca, register_gis_operators


@pytest.fixture()
def operators():
    _, ops = make_standard_registries()
    register_gis_operators(ops)
    return ops


def _images(n=4, size=32):
    generator = SceneGenerator(seed=12, nrow=size, ncol=size)
    return [generator.band("africa", 1985 + i, 7, "nir") for i in range(n)]


def test_fig4_build_network(benchmark, operators):
    net = benchmark(build_figure4, operators)
    assert net.schedule() == ["to_matrices", "covariance", "eigenvector",
                              "combined", "to_images"]
    rows = [
        (name, net.node(name).operator,
         ",".join(src.name for src in net.node(name).inputs))
        for name in net.node_names
    ]
    report("Figure 4: PCA dataflow network", rows,
           header=("node", "operator", "inputs"))


def test_fig4_network_execution(benchmark, operators):
    net = build_figure4(operators)
    images = _images()

    def run():
        return net.execute(images=images)

    out = benchmark(run)
    direct, _ = pca(images, 1)
    assert np.allclose(out[0].data, direct[0].data, atol=1e-5)


def test_fig4_direct_pca_baseline(benchmark, operators):
    """The fused implementation, for overhead comparison with the
    network execution above."""
    images = _images()

    def run():
        return pca(images, 1)

    components, eigenvalues = benchmark(run)
    assert eigenvalues[0] > 0


@pytest.mark.parametrize("n_images", [2, 4, 8])
def test_fig4_threshold_scaling(benchmark, operators, n_images):
    """§2.1.6 modification 2: 'two input data images are enough, but more
    than two images are usually used' — the network accepts any count at
    or above the threshold."""
    net = build_figure4(operators)
    images = _images(n=n_images)
    out = benchmark(net.execute, images=images)
    assert len(out) == 1
    assert out[0].shape == images[0].shape


def test_fig4_registered_as_operator(benchmark, operators):
    """§2.1.5: the network becomes a self-contained compound operator."""
    net = build_figure4(operators, name="pca_fig4")
    net.as_operator("setof image")
    images = _images(n=3)

    def run():
        return operators.apply("pca_fig4", images)

    out = benchmark(run)
    direct, _ = pca(images, 1)
    assert np.allclose(out[0].data, direct[0].data, atol=1e-5)
