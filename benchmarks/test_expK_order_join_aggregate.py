"""EXP-K — the completed algebra: ORDER BY / LIMIT / JOIN / aggregates.

Three claims from the PR that made GaeaQL's algebra complete:

* **top-K**: a ``Sort`` under a ``Limit`` runs as a bounded heap
  (O(n·log k)), so ``ORDER BY ... LIMIT 10`` over 10k objects beats the
  full sort that materializes and orders everything;
* **sort avoidance**: once the ORDER BY attribute carries a B-tree, the
  cost model replaces the explicit Sort with a key-ordered index walk
  that stops after LIMIT rows — visible in EXPLAIN as an
  ``IndexScan ... (ordered)`` with no Sort node;
* **hash join**: the ``HashJoin`` operator joins 5k×5k rows in two
  linear passes, ≥10× faster than the client-side nested-loop Python
  join scientists previously had to write.
"""

import time

from conftest import report

from repro import connect
from repro.spatial import Box
from repro.temporal import AbsTime

UNIVERSE = Box(0.0, 0.0, 100.0, 100.0)

DDL = """
DEFINE CLASS measurement (
  ATTRIBUTES: station = int4; value = float8;
  SPATIAL EXTENT: cell = box;
  TEMPORAL EXTENT: timestamp = abstime;
)
DEFINE CLASS station_info (
  ATTRIBUTES: station = int4; region = char16;
  SPATIAL EXTENT: cell = box;
  TEMPORAL EXTENT: timestamp = abstime;
)
"""

N_ROWS = 10_000
N_JOIN = 5_000
TOPK_QUERY = ("SELECT station, value FROM measurement "
              "ORDER BY value DESC LIMIT 10")
FULL_SORT_QUERY = "SELECT station, value FROM measurement ORDER BY value DESC"
ROUNDS = 3


def _connection(rows: int, join_rows: int = 0):
    conn = connect(universe=UNIVERSE)
    conn.cursor().run(DDL)
    stamp = AbsTime.from_ymd(1990, 6, 1)
    store = conn.kernel.store
    cell = Box(1.0, 1.0, 2.0, 2.0)
    for i in range(rows):
        store.store("measurement", {
            "station": i % max(1, join_rows or rows),
            # Deterministic but unordered values.
            "value": float((i * 2_654_435_761) % 1_000_003),
            "cell": cell, "timestamp": stamp,
        })
    for i in range(join_rows):
        store.store("station_info", {
            "station": i, "region": f"reg{i % 17}",
            "cell": cell, "timestamp": stamp,
        })
    return conn


def _timed(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_expK_topk_beats_full_sort():
    """LIMIT pushes a bounded heap into Sort: top-10 of 10k wins."""
    conn = _connection(N_ROWS)
    cur = conn.cursor()

    plan = cur.explain(TOPK_QUERY)
    assert "Sort(value DESC top-10)" in plan
    assert "Limit(10)" in plan

    def run_topk():
        rows = cur.execute(TOPK_QUERY).fetchall()
        assert len(rows) == 10

    def run_full():
        rows = cur.execute(FULL_SORT_QUERY).fetchall()
        assert len(rows) == N_ROWS

    topk = _timed(run_topk)
    full = _timed(run_full)
    values = [row["value"] for row in cur.execute(TOPK_QUERY).fetchall()]
    assert values == sorted(values, reverse=True)

    # Operator-level comparison over the same materialized input, so
    # the (shared) scan cost does not dilute the sort-only ratio.
    from repro.query.ast import ColumnRef
    from repro.query.operators import PhysicalOperator, Sort

    class _Rows(PhysicalOperator):
        def __init__(self, rows):
            self.rows = rows
            self.estimated_rows = float(len(rows))

        def label(self):
            return "rows"

        def run(self):
            yield from self.rows

    objects = cur.execute("SELECT FROM measurement").fetchall()
    keys = ((ColumnRef(attr="value"), True),)
    bounded = _timed(lambda: list(
        Sort(_Rows(objects), keys, None, top_k=10).run()
    ))
    unbounded = _timed(lambda: list(
        Sort(_Rows(objects), keys, None).run()
    ))
    sort_speedup = unbounded / bounded

    speedup = full / topk
    report(
        f"EXP-K top-K vs full sort ({N_ROWS} objects)",
        [
            ("ORDER BY ... LIMIT 10 (bounded heap)", f"{topk * 1e3:.1f}"),
            ("ORDER BY ... (full sort)", f"{full * 1e3:.1f}"),
            ("end-to-end speedup", f"{speedup:.1f}x"),
            ("Sort top-10 (operator only)", f"{bounded * 1e3:.1f}"),
            ("Sort full (operator only)", f"{unbounded * 1e3:.1f}"),
            ("sort-only speedup", f"{sort_speedup:.1f}x"),
        ],
        header=("configuration", "total ms"),
    )
    assert speedup > 1.1  # whole query, dominated by the shared scan
    assert sort_speedup >= 1.5  # the heap itself


def test_expK_index_order_beats_explicit_sort():
    """An ordered index walk replaces the Sort and stops at LIMIT."""
    conn = _connection(N_ROWS)
    cur = conn.cursor()

    before_plan = cur.explain(TOPK_QUERY)
    assert "Sort(value DESC top-10)" in before_plan
    sorted_time = _timed(lambda: cur.execute(TOPK_QUERY).fetchall())
    expected = [row["value"] for row in cur.execute(TOPK_QUERY).fetchall()]

    cur.execute("CREATE INDEX ON measurement (value)")
    after_plan = cur.explain(TOPK_QUERY)
    assert "(ordered desc)" in after_plan
    # Sort avoidance: no Sort remains on the stored path — any Sort
    # left in the tree belongs to a derive/interpolate fallback child
    # (whose output the index cannot order).
    lines = after_plan.splitlines()
    for i, line in enumerate(lines):
        if "Sort(" in line:
            assert "Derive(" in lines[i + 1] or "Interpolate(" in lines[i + 1]
    ordered_time = _timed(lambda: cur.execute(TOPK_QUERY).fetchall())
    got = [row["value"] for row in cur.execute(TOPK_QUERY).fetchall()]
    assert got == expected

    speedup = sorted_time / ordered_time
    report(
        f"EXP-K sort avoidance ({N_ROWS} objects, top-10)",
        [
            ("explicit Sort over full scan", f"{sorted_time * 1e3:.1f}"),
            ("ordered IndexScan, no Sort", f"{ordered_time * 1e3:.1f}"),
            ("speedup", f"{speedup:.1f}x"),
        ],
        header=("configuration", "total ms"),
    )
    # Vectorized execution (EXP-M) made the explicit-Sort baseline much
    # faster in absolute terms — batch argsort instead of a Python
    # heap — so the ordered index walk's relative margin narrowed from
    # ~2.5× to ~1.7×. Sort avoidance still wins; assert the win, not
    # the pre-vectorization margin.
    assert speedup >= 1.3


def test_expK_hash_join_beats_python_nested_loop():
    """HashJoin at 5k×5k: ≥10× over the client-side nested loop."""
    conn = _connection(N_JOIN, join_rows=N_JOIN)
    cur = conn.cursor()

    join_query = ("SELECT count(*) FROM measurement "
                  "JOIN station_info "
                  "ON measurement.station = station_info.station")
    plan = cur.explain(join_query)
    assert "HashJoin" in plan

    def run_join():
        (row,) = cur.execute(join_query).fetchall()
        assert row["count(*)"] == N_JOIN

    join_time = _timed(run_join)

    # The pre-algebra workflow: fetch both classes, join in Python.
    left = cur.execute("SELECT FROM measurement").fetchall()
    right = cur.execute("SELECT FROM station_info").fetchall()

    def run_nested_loop():
        matches = 0
        for a in left:
            key = a["station"]
            for b in right:
                if b["station"] == key:
                    matches += 1
        assert matches == N_JOIN

    nested_time = _timed(run_nested_loop, rounds=1)

    speedup = nested_time / join_time
    report(
        f"EXP-K hash join ({N_JOIN}×{N_JOIN} rows)",
        [
            ("HashJoin + count(*)", f"{join_time * 1e3:.1f}"),
            ("client-side nested loop", f"{nested_time * 1e3:.1f}"),
            ("speedup", f"{speedup:.1f}x"),
        ],
        header=("configuration", "total ms"),
    )
    assert speedup >= 10.0


def test_expK_group_by_aggregates_match_python():
    """Per-region aggregation agrees with the client-side computation."""
    conn = _connection(2_000, join_rows=100)
    cur = conn.cursor()
    cur.execute("SELECT region, count(*), avg(value) FROM measurement "
                "JOIN station_info "
                "ON measurement.station = station_info.station "
                "GROUP BY region ORDER BY 2 DESC")
    rows = cur.fetchall()

    stations = {s["station"]: s["region"]
                for s in cur.execute("SELECT FROM station_info").fetchall()}
    expected: dict[str, list[float]] = {}
    for m in cur.execute("SELECT FROM measurement").fetchall():
        expected.setdefault(stations[m["station"]], []).append(m["value"])

    assert len(rows) == len(expected)
    for row in rows:
        values = expected[row["region"]]
        assert row["count(*)"] == len(values)
        assert abs(row["avg(value)"] - sum(values) / len(values)) < 1e-6
    counts = [row["count(*)"] for row in rows]
    assert counts == sorted(counts, reverse=True)
