"""FIG-1 — regenerate the Gaea system architecture.

The benchmark constructs the full stack of Figure 1 (kernel: metadata
manager with its three sub-managers + backend; interpreter: parser,
optimizer, executor) and verifies every box is present and wired, then
prints the component tree — the figure, as data.
"""

from conftest import report

from repro.figures import build_figure1


def _verify(session) -> dict:
    tree = session.kernel.component_tree()
    manager = tree["GAEA KERNEL"]["Meta-Data Manager"]
    assert set(manager) == {
        "Data Type/Operator Manager",
        "Derivation Manager",
        "Experiment Manager",
    }
    assert "POSTGRES BACKEND (substitute)" in tree
    # The interpreter boxes (parser is a module function; optimizer and
    # executor are session components).
    assert session.optimizer is not None and session.executor is not None
    return tree


def test_fig1_build_architecture(benchmark):
    session = benchmark(build_figure1)
    tree = _verify(session)
    type_mgr = tree["GAEA KERNEL"]["Meta-Data Manager"][
        "Data Type/Operator Manager"]
    rows = [
        ("Visual Environment", "out of scope (UI; paper §2 presents it in [40])"),
        ("Interpreter: Parser", "repro.query.parser"),
        ("Interpreter: Optimizer", "repro.query.optimizer"),
        ("Interpreter: Executor", "repro.query.executor"),
        ("Meta-Data Manager: Data Type/Operator Manager",
         f"{type_mgr['primitive_classes']} types, "
         f"{type_mgr['operators']} operators"),
        ("Meta-Data Manager: Derivation Manager", "repro.core.manager"),
        ("Meta-Data Manager: Experiment Manager", "repro.core.experiments"),
        ("POSTGRES Backend", "repro.storage (substitute)"),
    ]
    report("Figure 1: Gaea system architecture", rows,
           header=("component", "realization"))


def test_fig1_kernel_survives_roundtrip(benchmark):
    """The architecture is functional, not decorative: a define/query
    round-trip through every layer."""
    def roundtrip():
        session = build_figure1()
        session.execute("""
        DEFINE CLASS probe (
          ATTRIBUTES: tag = char16;
          SPATIAL EXTENT: spatialextent = box;
          TEMPORAL EXTENT: timestamp = abstime;
        )
        """)
        session.kernel.store.store("probe", {
            "tag": "x",
            "spatialextent": __import__("repro.spatial",
                                        fromlist=["Box"]).Box(0, 0, 1, 1),
            "timestamp": __import__("repro.temporal",
                                    fromlist=["AbsTime"]).AbsTime(0),
        })
        result = session.execute_one("SELECT FROM probe")
        assert result.path == "retrieve"
        return session

    benchmark(roundtrip)
