"""``repro.client``: one import surface for local and remote access.

Local (in-process) connections::

    from repro.client import connect
    conn = connect()

Remote connections to a ``repro serve`` process::

    from repro.client import remote_connect
    conn = remote_connect("127.0.0.1", 7474)

Both return DB-API-shaped connection objects with the same cursor
surface (``execute`` with ``?``/``:name`` bind parameters, streaming
fetches, ``explain``, ``begin``/``commit``/``rollback``).
"""

from .query.client import (
    Connection,
    Cursor,
    PreparedStatement,
    apilevel,
    connect,
    paramstyle,
    threadsafety,
)
from .server.remote import RemoteConnection, RemoteCursor, remote_connect

__all__ = [
    "Connection",
    "Cursor",
    "PreparedStatement",
    "RemoteConnection",
    "RemoteCursor",
    "apilevel",
    "connect",
    "paramstyle",
    "remote_connect",
    "threadsafety",
]
