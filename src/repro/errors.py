"""Exception hierarchy for the Gaea reproduction.

Every error raised by this library derives from :class:`GaeaError`, so
callers can catch a single base class.  Sub-hierarchies mirror the system
layers described in the paper: the ADT facility (system level), the
derivation-semantics level, the experiment level, the storage substrate,
and the query interpreter.
"""

from __future__ import annotations


class GaeaError(Exception):
    """Base class for every error raised by the Gaea reproduction."""


# ---------------------------------------------------------------------------
# System level (ADT facility)
# ---------------------------------------------------------------------------


class ADTError(GaeaError):
    """Base class for errors in the system-level (ADT) semantics layer."""


class TypeAlreadyRegisteredError(ADTError):
    """A primitive class with this name already exists in the registry."""


class UnknownTypeError(ADTError):
    """A primitive class name was not found in the type registry."""


class OperatorAlreadyRegisteredError(ADTError):
    """An operator with this name and signature already exists."""


class UnknownOperatorError(ADTError):
    """An operator name (or name+signature) was not found."""


class SignatureMismatchError(ADTError):
    """Arguments passed to an operator do not match its signature."""


class ValueRepresentationError(ADTError):
    """A value could not be parsed from / formatted to its external form."""


class DataflowError(ADTError):
    """Base class for compound-operator (dataflow network) errors."""


class DataflowCycleError(DataflowError):
    """The dataflow network contains a cycle and cannot be scheduled."""


class DataflowWiringError(DataflowError):
    """A node input is unconnected or connected more than once."""


# ---------------------------------------------------------------------------
# Derivation-semantics level
# ---------------------------------------------------------------------------


class DerivationError(GaeaError):
    """Base class for derivation-semantics layer errors."""


class UnknownClassError(DerivationError):
    """A non-primitive class name was not found."""


class ClassAlreadyDefinedError(DerivationError):
    """A non-primitive class with this name already exists."""


class UnknownProcessError(DerivationError):
    """A process name was not found in the derivation manager."""


class ProcessAlreadyDefinedError(DerivationError):
    """A process with this name already exists (processes are immutable;
    edit by creating a new process, never overwrite — paper §2.1.4)."""


class AssertionViolatedError(DerivationError):
    """A template assertion (guard rule) failed for the supplied inputs."""


class MappingError(DerivationError):
    """An attribute mapping could not be evaluated."""


class CompoundExpansionError(DerivationError):
    """A compound process could not be expanded into primitive processes."""


class TaskExecutionError(DerivationError):
    """A task (process instantiation) failed while executing."""


class UnderivableError(DerivationError):
    """Back-propagation reached base classes without finding needed data
    (paper §2.1.6 step 3: 'we fail to find the needed data')."""


class InteractionRequiredError(DerivationError):
    """The process declares interaction points (paper §4.3: supervised
    classification 'requires interaction with the scientist') and no
    interaction handler was supplied."""


# ---------------------------------------------------------------------------
# Experiment (high) level
# ---------------------------------------------------------------------------


class ExperimentError(GaeaError):
    """Base class for high-level (experiment/concept) layer errors."""


class UnknownConceptError(ExperimentError):
    """A concept name was not found in the concept hierarchy."""


class ConceptAlreadyDefinedError(ExperimentError):
    """A concept with this name already exists."""


class ConceptCycleError(ExperimentError):
    """Adding this ISA edge would create a cycle in the concept DAG."""


class UnknownExperimentError(ExperimentError):
    """An experiment identifier was not found."""


# ---------------------------------------------------------------------------
# Storage substrate
# ---------------------------------------------------------------------------


class StorageError(GaeaError):
    """Base class for storage-engine errors."""


class RelationExistsError(StorageError):
    """A relation with this name already exists in the catalog."""


class UnknownRelationError(StorageError):
    """A relation name was not found in the catalog."""


class PageFullError(StorageError):
    """A slotted page has no room for the requested tuple."""


class TupleNotFoundError(StorageError):
    """No tuple with the requested TID/visibility exists."""


class TransactionError(StorageError):
    """Illegal transaction state transition (e.g. commit after abort)."""


class WALError(StorageError):
    """The write-ahead log is corrupt or out of sequence."""


class IndexError_(StorageError):
    """An index operation failed (named with underscore to avoid shadowing
    the builtin :class:`IndexError`)."""


# ---------------------------------------------------------------------------
# Query interpreter
# ---------------------------------------------------------------------------


class QueryError(GaeaError):
    """Base class for query-interpreter errors."""


class LexError(QueryError):
    """The lexer met an unexpected character."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(message)
        self.line = line
        self.column = column


class ParseError(QueryError):
    """The parser met an unexpected token."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(message)
        self.line = line
        self.column = column


class PlanningError(QueryError):
    """The optimizer could not produce an execution plan."""


class ExecutionError(QueryError):
    """The executor failed while running a plan."""


class BindError(QueryError):
    """Bind parameters do not match a statement's placeholders
    (missing, extra, or wrongly typed values)."""


class InterfaceError(QueryError):
    """The client API was used incorrectly (e.g. a closed connection
    or cursor, or an illegal transaction state transition)."""


class ResultCardinalityError(QueryError, ValueError):
    """A single-result API received a source producing zero or several
    results.  Subclasses :class:`ValueError` for backward compatibility
    with callers of the pre-connection API."""


# ---------------------------------------------------------------------------
# Extent algebra
# ---------------------------------------------------------------------------


class ExtentError(GaeaError):
    """Base class for spatial/temporal extent errors."""


class SpatialError(ExtentError):
    """Invalid spatial extent or incompatible reference systems."""


class TemporalError(ExtentError):
    """Invalid temporal value or interval."""
