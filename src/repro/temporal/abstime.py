"""Absolute time — the ``TEMPORAL EXTENT`` carrier (``abstime``).

Gaea timestamps objects with an absolute time (paper §2.1.1: ``timestamp =
abstime``).  We model absolute time as integer *days since epoch*
(1970-01-01), with a simple proleptic-Gregorian calendar conversion so
examples can speak in ``YYYY-MM-DD`` like the paper's "January 1986 for
Africa" task.  Day granularity matches the satellite-scene workloads the
paper targets.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from ..errors import TemporalError, ValueRepresentationError

__all__ = ["AbsTime"]

_DATE_RE = re.compile(r"^(\d{4})-(\d{2})-(\d{2})$")

_DAYS_IN_MONTH = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)


def _is_leap(year: int) -> bool:
    return year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)


def _days_in_month(year: int, month: int) -> int:
    if month == 2 and _is_leap(year):
        return 29
    return _DAYS_IN_MONTH[month - 1]


def _ymd_to_days(year: int, month: int, day: int) -> int:
    """Days since 1970-01-01 for a proleptic-Gregorian date."""
    if not 1 <= month <= 12:
        raise TemporalError(f"month {month} out of range")
    if not 1 <= day <= _days_in_month(year, month):
        raise TemporalError(f"day {day} out of range for {year}-{month:02d}")
    # Count days from year 1 using the standard civil-from-days algorithm.
    y = year - (1 if month <= 2 else 0)
    era = (y if y >= 0 else y - 399) // 400
    yoe = y - era * 400
    mp = (month + 9) % 12
    doy = (153 * mp + 2) // 5 + day - 1
    doe = yoe * 365 + yoe // 4 - yoe // 100 + doy
    return era * 146097 + doe - 719468


def _days_to_ymd(days: int) -> tuple[int, int, int]:
    """Inverse of :func:`_ymd_to_days` (civil-from-days)."""
    z = days + 719468
    era = (z if z >= 0 else z - 146096) // 146097
    doe = z - era * 146097
    yoe = (doe - doe // 1460 + doe // 36524 - doe // 146096) // 365
    y = yoe + era * 400
    doy = doe - (365 * yoe + yoe // 4 - yoe // 100)
    mp = (5 * doy + 2) // 153
    day = doy - (153 * mp + 2) // 5 + 1
    month = mp + 3 if mp < 10 else mp - 9
    return (y + (1 if month <= 2 else 0), month, day)


@dataclass(frozen=True, order=True)
class AbsTime:
    """Absolute time at day granularity (days since 1970-01-01).

    Value-identified, immutable and totally ordered; supports day
    arithmetic through :meth:`plus_days` and :meth:`days_between`.
    """

    days: int

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def from_ymd(year: int, month: int, day: int) -> "AbsTime":
        """Build from a calendar date."""
        return AbsTime(_ymd_to_days(year, month, day))

    @staticmethod
    def parse(text: str) -> "AbsTime":
        """Parse the external representation ``YYYY-MM-DD``."""
        match = _DATE_RE.match(text.strip())
        if match is None:
            raise ValueRepresentationError(f"bad abstime literal {text!r}")
        try:
            return AbsTime.from_ymd(*(int(g) for g in match.groups()))
        except TemporalError as exc:
            raise ValueRepresentationError(str(exc)) from exc

    @staticmethod
    def validate(value: Any) -> "AbsTime":
        """Validator used by the ``abstime`` primitive class."""
        if isinstance(value, AbsTime):
            return value
        if isinstance(value, str):
            return AbsTime.parse(value)
        if isinstance(value, int) and not isinstance(value, bool):
            return AbsTime(value)
        raise ValueRepresentationError(
            f"abstime: cannot build from {type(value).__name__}"
        )

    # -- calendar views -------------------------------------------------------

    def to_ymd(self) -> tuple[int, int, int]:
        """Calendar date ``(year, month, day)``."""
        return _days_to_ymd(self.days)

    @property
    def year(self) -> int:
        """Calendar year."""
        return self.to_ymd()[0]

    @property
    def month(self) -> int:
        """Calendar month (1-12)."""
        return self.to_ymd()[1]

    @property
    def day(self) -> int:
        """Calendar day of month."""
        return self.to_ymd()[2]

    def __str__(self) -> str:
        year, month, day = self.to_ymd()
        return f"{year:04d}-{month:02d}-{day:02d}"

    # -- arithmetic -----------------------------------------------------------

    def plus_days(self, delta: int) -> "AbsTime":
        """This time shifted by *delta* days."""
        return AbsTime(self.days + delta)

    def days_between(self, other: "AbsTime") -> int:
        """Signed day count ``other - self``."""
        return other.days - self.days
