"""Per-class timelines: snapshot lookup for temporal retrieval.

Query answering in Gaea prefers direct retrieval, then *interpolation*
(paper §2.1.5 step 2).  A timeline records which timestamps of a class
hold stored objects so the planner can find the snapshots bracketing a
missing timestamp — the inputs temporal interpolation needs.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass, field
from typing import Any, Hashable

from ..errors import TemporalError
from .abstime import AbsTime

__all__ = ["Timeline"]


@dataclass
class Timeline:
    """Sorted map from :class:`AbsTime` to sets of object ids."""

    _stamps: list[AbsTime] = field(default_factory=list)
    _objects: dict[AbsTime, set[Hashable]] = field(default_factory=dict)
    # Readers copy buckets and bisect the stamp list; the lock keeps
    # those consistent against a concurrent add/remove.
    _lock: threading.RLock = field(default_factory=threading.RLock,
                                   repr=False, compare=False)

    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    def __len__(self) -> int:
        return len(self._stamps)

    def add(self, at: AbsTime, object_id: Hashable) -> None:
        """Record that *object_id* exists at time *at*."""
        with self._lock:
            if at not in self._objects:
                bisect.insort(self._stamps, at)
                self._objects[at] = set()
            self._objects[at].add(object_id)

    def remove(self, at: AbsTime, object_id: Hashable) -> None:
        """Forget *object_id* at time *at*."""
        with self._lock:
            bucket = self._objects.get(at)
            if bucket is None or object_id not in bucket:
                raise TemporalError(f"no object {object_id!r} at {at}")
            bucket.discard(object_id)
            if not bucket:
                del self._objects[at]
                self._stamps.remove(at)

    def at(self, stamp: AbsTime) -> set[Hashable]:
        """Object ids stored exactly at *stamp* (empty set if none)."""
        with self._lock:
            return set(self._objects.get(stamp, set()))

    def timestamps(self) -> list[AbsTime]:
        """All populated timestamps in ascending order."""
        with self._lock:
            return list(self._stamps)

    def bracketing(self, stamp: AbsTime) -> tuple[AbsTime | None, AbsTime | None]:
        """The nearest populated timestamps ``(before, after)`` around
        *stamp*.

        Either side may be ``None`` at the ends of the timeline.  When
        *stamp* itself is populated it is returned on both sides, which
        lets interpolation degrade to exact retrieval.
        """
        with self._lock:
            if stamp in self._objects:
                return (stamp, stamp)
            idx = bisect.bisect_left(self._stamps, stamp)
            before = self._stamps[idx - 1] if idx > 0 else None
            after = self._stamps[idx] if idx < len(self._stamps) else None
            return (before, after)

    def nearest(self, stamp: AbsTime) -> AbsTime | None:
        """The populated timestamp closest to *stamp* (ties -> earlier)."""
        before, after = self.bracketing(stamp)
        if before is None:
            return after
        if after is None:
            return before
        if stamp.days - before.days <= after.days - stamp.days:
            return before
        return after

    def in_range(self, start: AbsTime, end: AbsTime) -> list[AbsTime]:
        """Populated timestamps within ``[start, end]``."""
        if start > end:
            raise TemporalError(f"bad range [{start}, {end}]")
        with self._lock:
            lo = bisect.bisect_left(self._stamps, start)
            hi = bisect.bisect_right(self._stamps, end)
            return self._stamps[lo:hi]
