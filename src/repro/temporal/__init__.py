"""Temporal extent semantics: absolute time, intervals, timelines."""

from .abstime import AbsTime
from .intervals import AllenRelation, Interval, allen_relation, common_time
from .timeline import Timeline

__all__ = [
    "AbsTime",
    "AllenRelation",
    "Interval",
    "Timeline",
    "allen_relation",
    "common_time",
]
