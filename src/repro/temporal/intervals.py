"""Temporal intervals and Allen's interval relations.

The paper cites Allen [1] for temporal semantics; the temporal extent of a
Gaea object is usually a single ``abstime`` timestamp, but interpolation
and experiment management reason over intervals (e.g. "between 1988 and
1989").  This module provides closed intervals over :class:`AbsTime` and
the thirteen Allen relations.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable

from ..errors import TemporalError
from .abstime import AbsTime

__all__ = ["Interval", "AllenRelation", "allen_relation", "common_time"]


class AllenRelation(Enum):
    """The thirteen Allen interval relations."""

    BEFORE = "before"
    AFTER = "after"
    MEETS = "meets"
    MET_BY = "met_by"
    OVERLAPS = "overlaps"
    OVERLAPPED_BY = "overlapped_by"
    STARTS = "starts"
    STARTED_BY = "started_by"
    DURING = "during"
    CONTAINS = "contains"
    FINISHES = "finishes"
    FINISHED_BY = "finished_by"
    EQUAL = "equal"


@dataclass(frozen=True, order=True)
class Interval:
    """Closed interval ``[start, end]`` over :class:`AbsTime`."""

    start: AbsTime
    end: AbsTime

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise TemporalError(f"degenerate interval [{self.start}, {self.end}]")

    @staticmethod
    def instant(at: AbsTime) -> "Interval":
        """Zero-length interval for a single timestamp."""
        return Interval(at, at)

    @staticmethod
    def from_strings(start: str, end: str) -> "Interval":
        """Build from two ``YYYY-MM-DD`` literals."""
        return Interval(AbsTime.parse(start), AbsTime.parse(end))

    @property
    def duration_days(self) -> int:
        """Length in days (0 for instants)."""
        return self.end.days - self.start.days

    def contains_time(self, at: AbsTime) -> bool:
        """True when *at* falls inside (boundaries included)."""
        return self.start <= at <= self.end

    def overlaps(self, other: "Interval") -> bool:
        """True when the intervals share at least one day."""
        return self.start <= other.end and other.start <= self.end

    def intersection(self, other: "Interval") -> "Interval | None":
        """Shared sub-interval, or ``None`` when disjoint."""
        if not self.overlaps(other):
            return None
        return Interval(max(self.start, other.start), min(self.end, other.end))

    def union_hull(self, other: "Interval") -> "Interval":
        """Smallest interval covering both operands (hull, even if gapped)."""
        return Interval(min(self.start, other.start), max(self.end, other.end))

    def __str__(self) -> str:
        return f"[{self.start}, {self.end}]"


def allen_relation(a: Interval, b: Interval) -> AllenRelation:
    """Classify intervals *a* and *b* into one of Allen's 13 relations.

    Instants (zero-length intervals) are handled by the same case
    analysis; e.g. two equal instants are ``EQUAL``.
    """
    if a.start == b.start and a.end == b.end:
        return AllenRelation.EQUAL
    if a.end < b.start:
        return AllenRelation.BEFORE
    if b.end < a.start:
        return AllenRelation.AFTER
    if a.end == b.start:
        return AllenRelation.MEETS
    if b.end == a.start:
        return AllenRelation.MET_BY
    if a.start == b.start:
        return AllenRelation.STARTS if a.end < b.end else AllenRelation.STARTED_BY
    if a.end == b.end:
        return AllenRelation.FINISHES if a.start > b.start else AllenRelation.FINISHED_BY
    if b.start < a.start and a.end < b.end:
        return AllenRelation.DURING
    if a.start < b.start and b.end < a.end:
        return AllenRelation.CONTAINS
    if a.start < b.start:
        return AllenRelation.OVERLAPS
    return AllenRelation.OVERLAPPED_BY


def common_time(times: Iterable[AbsTime], tolerance_days: int = 0) -> bool:
    """The paper's ``common()`` assertion on timestamps.

    Figure 3 asserts ``common(bands.timestamp)``: input scenes must be
    contemporaneous.  With ``tolerance_days == 0`` all timestamps must be
    identical; a positive tolerance allows scenes acquired within that
    many days of each other (multi-pass acquisitions).
    """
    stamps = sorted(times)
    if len(stamps) <= 1:
        return True
    return stamps[0].days_between(stamps[-1]) <= tolerance_days
