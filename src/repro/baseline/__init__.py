"""IDRISI/GRASS-style file-based GIS baseline (paper §4.1 comparison)."""

from .filegis import FileGIS, TranscriptEntry

__all__ = ["FileGIS", "TranscriptEntry"]
