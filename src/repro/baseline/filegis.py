"""The file-based GIS baseline (IDRISI / GRASS stand-in, paper §4.1).

"A typical working scenario for either system is to perform analysis with
sequences of commands that read data from input files and store results
into output files."  This module reproduces that working style — and,
deliberately, its §4.1 shortcomings:

1. *file names are the only identifier* — there is no schema, no range
   retrieval, and a reused name silently overwrites another user's data;
2. *no derivation metadata* — only whatever the user encodes in the name;
3. *the analysis process is managed by hand* — optionally, a transcript
   file of commands (the paper's "awkward transcript files");
4. *no abstraction* — applying a procedure to N data sets means
   re-issuing the commands N times.

EXP-C drives an identical experiment through this baseline and through
Gaea to quantify the reproducibility difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from ..adt.image import Image, PIXTYPE_DTYPES
from ..errors import GaeaError

__all__ = ["FileGIS", "TranscriptEntry"]


@dataclass(frozen=True)
class TranscriptEntry:
    """One command line the scientist ran (their only provenance)."""

    command: str
    inputs: tuple[str, ...]
    output: str


@dataclass
class FileGIS:
    """A directory of raster files driven by named commands.

    Rasters are stored as ``.npy``-format arrays with a tiny ``.doc``
    sidecar holding only the shape and pixel type — faithfully *less*
    metadata than Gaea keeps (IDRISI ``.doc`` files record georeferencing
    but not derivation).
    """

    workdir: Path
    keep_transcript: bool = True
    transcript: list[TranscriptEntry] = field(default_factory=list)
    _commands: dict[str, Callable[..., Image]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.workdir = Path(self.workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)

    # -- the file layer ---------------------------------------------------------

    def _raster_path(self, name: str) -> Path:
        return self.workdir / f"{name}.img"

    def exists(self, name: str) -> bool:
        """Whether a raster file with this name exists."""
        return self._raster_path(name).exists()

    def write_raster(self, name: str, image: Image) -> None:
        """Store *image* under *name* — silently overwriting any previous
        raster of the same name (§4.1 shortcoming 1)."""
        path = self._raster_path(name)
        with open(path, "wb") as handle:
            np.save(handle, image.data)
        doc = self.workdir / f"{name}.doc"
        doc.write_text(
            f"rows {image.nrow}\ncols {image.ncol}\ntype {image.pixtype}\n"
        )

    def read_raster(self, name: str) -> Image:
        """Load the raster called *name*."""
        path = self._raster_path(name)
        if not path.exists():
            raise GaeaError(f"no raster file {name!r} in {self.workdir}")
        with open(path, "rb") as handle:
            data = np.load(handle)
        if data.dtype not in {dt for dt in PIXTYPE_DTYPES.values()}:
            data = data.astype(np.float32)
        return Image(data=data, filepath=str(path))

    def list_rasters(self) -> list[str]:
        """All raster names in the working directory."""
        return sorted(p.stem for p in self.workdir.glob("*.img"))

    # -- the command layer ----------------------------------------------------------

    def register_command(self, name: str,
                         fn: Callable[..., Image]) -> None:
        """Install an analysis command (module-style, like IDRISI's
        CLUSTER or OVERLAY).  *fn* takes Images (+ scalars) and returns
        an Image."""
        if name in self._commands:
            raise GaeaError(f"command {name!r} already registered")
        self._commands[name] = fn

    def run(self, command: str, inputs: list[str], output: str,
            *params: float) -> Image:
        """Run *command* over named input rasters into *output*.

        The only record kept (when ``keep_transcript``) is the command
        line itself — the §4.1 "awkward transcript file".
        """
        try:
            fn = self._commands[command]
        except KeyError:
            raise GaeaError(f"unknown command {command!r}") from None
        images = [self.read_raster(name) for name in inputs]
        result = fn(*images, *params)
        self.write_raster(output, result)
        if self.keep_transcript:
            rendered = " ".join(
                [command] + list(inputs) + [output]
                + [repr(p) for p in params]
            )
            self.transcript.append(TranscriptEntry(
                command=rendered, inputs=tuple(inputs), output=output,
            ))
        return result

    # -- what passes for provenance here -----------------------------------------------

    def derivation_of(self, name: str) -> str | None:
        """Best-effort derivation lookup: grep the transcript.

        Without a transcript (a colleague's directory, say) the answer is
        ``None`` — the data cannot be meaningfully shared, which is
        exactly the paper's point.
        """
        if not self.keep_transcript:
            return None
        for entry in reversed(self.transcript):
            if entry.output == name:
                return entry.command
        return None

    def metadata_of(self, name: str) -> dict[str, str]:
        """Everything the baseline knows about a raster: the .doc file."""
        doc = self.workdir / f"{name}.doc"
        if not doc.exists():
            raise GaeaError(f"no raster {name!r}")
        out: dict[str, str] = {}
        for line in doc.read_text().splitlines():
            key, _, value = line.partition(" ")
            out[key] = value
        return out

    def reproduce(self, name: str) -> Image:
        """Try to reproduce raster *name* from the transcript.

        Replays the recorded command chain bottom-up.  Raises when any
        needed step predates the transcript (or there is no transcript) —
        the failure mode Gaea's task log eliminates.
        """
        command = self.derivation_of(name)
        if command is None:
            raise GaeaError(
                f"cannot reproduce {name!r}: no derivation record"
            )
        entry = next(
            e for e in reversed(self.transcript) if e.output == name
        )
        for input_name in entry.inputs:
            if self.derivation_of(input_name) is not None:
                self.reproduce(input_name)
            elif not self.exists(input_name):
                raise GaeaError(
                    f"cannot reproduce {name!r}: input {input_name!r} "
                    "missing and underivable"
                )
        parts = entry.command.split()
        params = [float(p) for p in parts[1 + len(entry.inputs) + 1:]]
        return self.run(parts[0], list(entry.inputs), entry.output, *params)
