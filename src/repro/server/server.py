"""GaeaServer: a thread-per-connection socket server over one kernel.

Each accepted socket gets its own thread and its own DB-API
:class:`~repro.query.client.Connection` over the shared kernel, so the
in-process concurrency guarantees carry straight to the wire:

* any number of remote readers run against pinned snapshots and never
  block on the writer;
* the single-writer discipline holds across connections — a second
  remote ``begin`` while a write transaction is open fails with
  ``TransactionError`` exactly as it does in process;
* a connection dying mid-transaction (socket reset, client crash) rolls
  its transaction back without disturbing any other connection.

Request/response pairs are JSON frames (see :mod:`.protocol`).  One
request per frame, one response per frame, processed strictly in order
per connection.  Requests::

    {"op": "hello"}
    {"op": "execute", "cursor": id?, "source": str, "params": [...]?}
    {"op": "fetch", "cursor": id, "count": int}
    {"op": "explain", "source": str, "params": [...]?}
    {"op": "store", "class": str, "values": {...}}
    {"op": "begin", "read_only": bool?}
    {"op": "commit"} | {"op": "rollback"}
    {"op": "close_cursor", "cursor": id}
    {"op": "close"}

Success responses are ``{"ok": {...}}``; failures are
``{"error": {"type": <exception class name>, "message": str}}`` and
leave the connection alive (protocol-level corruption closes it).
"""

from __future__ import annotations

import socket
import threading
from typing import Any

from ..core.metadata_manager import MetadataManager, WORLD, open_kernel
from ..errors import GaeaError, InterfaceError
from ..gis import register_gis_operators
from ..query.client import Connection, Cursor
from .protocol import ProtocolError, encode_value, decode_value, recv_frame, send_frame

__all__ = ["GaeaServer"]


class _WireSession:
    """Per-socket state: one Connection plus its numbered cursors."""

    def __init__(self, kernel: MetadataManager):
        self.connection = Connection(kernel=kernel)
        self.cursors: dict[int, Cursor] = {}
        self._next_cursor = 0

    def cursor_for(self, cursor_id: Any) -> tuple[int, Cursor]:
        """The numbered cursor for a request (fresh when id is None)."""
        if cursor_id is None:
            self._next_cursor += 1
            cursor = self.connection.cursor()
            self.cursors[self._next_cursor] = cursor
            return self._next_cursor, cursor
        try:
            return cursor_id, self.cursors[cursor_id]
        except KeyError:
            raise InterfaceError(f"no cursor {cursor_id!r}") from None

    def close(self) -> None:
        for cursor in self.cursors.values():
            cursor.close()
        self.cursors.clear()
        self.connection.close()  # rolls back any open transaction


class GaeaServer:
    """A threaded wire server sharing one kernel across connections.

    ::

        with GaeaServer() as server:          # ephemeral port
            conn = remote_connect(server.host, server.port)
            ...

    Pass an existing *kernel* to serve data already loaded in process;
    otherwise a fresh kernel (with GIS operators) is created.  ``port=0``
    binds an ephemeral port, published as ``server.port`` after
    :meth:`start`.
    """

    def __init__(self, kernel: MetadataManager | None = None,
                 host: str = "127.0.0.1", port: int = 0):
        if kernel is None:
            kernel = open_kernel(universe=WORLD)
            register_gis_operators(kernel.operators)
        self.kernel = kernel
        self.host = host
        self.port = port
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._stopping = threading.Event()
        self._lock = threading.Lock()
        self._client_threads: list[threading.Thread] = []
        self._client_sockets: set[socket.socket] = set()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "GaeaServer":
        """Bind, listen, and start accepting in a background thread."""
        if self._listener is not None:
            raise InterfaceError("server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(128)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._stopping.clear()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="gaea-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, close every live connection, join threads."""
        if self._listener is None:
            return
        self._stopping.set()
        # Closing the listener does not unblock a concurrent accept() on
        # every platform; a throwaway connection wakes it deterministically.
        try:
            with socket.create_connection((self.host or "127.0.0.1",
                                           self.port), timeout=1):
                pass
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            sockets = list(self._client_sockets)
        for sock in sockets:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        with self._lock:
            threads = list(self._client_threads)
        for thread in threads:
            thread.join(timeout=5)
        self._listener = None
        self._accept_thread = None

    def __enter__(self) -> "GaeaServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- accept / serve loops ------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            with self._lock:
                if self._stopping.is_set():
                    sock.close()
                    return
                self._client_sockets.add(sock)
                thread = threading.Thread(
                    target=self._serve_client, args=(sock,),
                    name="gaea-client", daemon=True,
                )
                self._client_threads.append(thread)
            thread.start()

    def _serve_client(self, sock: socket.socket) -> None:
        session = _WireSession(self.kernel)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while True:
                try:
                    request = recv_frame(sock)
                except (ProtocolError, OSError):
                    return  # stream corrupt or reset: drop the connection
                if request is None:
                    return  # clean EOF
                try:
                    response, stay = self._dispatch(session, request)
                except GaeaError as exc:
                    response = {"error": {"type": type(exc).__name__,
                                          "message": str(exc)}}
                    stay = True
                except Exception as exc:  # request bugs must not kill serving
                    response = {"error": {"type": type(exc).__name__,
                                          "message": str(exc)}}
                    stay = True
                try:
                    send_frame(sock, response)
                except OSError:
                    return
                if not stay:
                    return
        finally:
            # Whatever ended the loop — clean close, reset, corrupt frame —
            # this connection's transaction rolls back here, in isolation:
            # no other session shares the Connection object.
            session.close()
            with self._lock:
                self._client_sockets.discard(sock)
            try:
                sock.close()
            except OSError:
                pass

    # -- request dispatch ----------------------------------------------------

    def _dispatch(self, session: _WireSession,
                  request: dict[str, Any]) -> tuple[dict[str, Any], bool]:
        op = request.get("op")
        if op == "hello":
            from .. import __version__
            return {"ok": {"server": "gaea", "version": __version__}}, True
        if op == "execute":
            return self._op_execute(session, request), True
        if op == "fetch":
            return self._op_fetch(session, request), True
        if op == "explain":
            params = decode_value(request.get("params"))
            plan = session.connection.cursor().explain(
                request["source"], params
            )
            return {"ok": {"plan": plan}}, True
        if op == "store":
            # GaeaQL has no INSERT statement — objects enter through the
            # object store, so the wire protocol exposes it directly.
            # Runs under the connection's open transaction, if any.
            obj = session.connection.kernel.store.store(
                request["class"],
                decode_value(request.get("values") or {}),
            )
            return {"ok": {"oid": obj.oid}}, True
        if op == "begin":
            session.connection.begin(
                read_only=bool(request.get("read_only", False))
            )
            return {"ok": {}}, True
        if op == "commit":
            session.connection.commit()
            return {"ok": {}}, True
        if op == "rollback":
            session.connection.rollback()
            return {"ok": {}}, True
        if op == "close_cursor":
            cursor = session.cursors.pop(request.get("cursor"), None)
            if cursor is not None:
                cursor.close()
            return {"ok": {}}, True
        if op == "close":
            return {"ok": {}}, False
        raise InterfaceError(f"unknown op {op!r}")

    def _op_execute(self, session: _WireSession,
                    request: dict[str, Any]) -> dict[str, Any]:
        cursor_id, cursor = session.cursor_for(request.get("cursor"))
        params = decode_value(request.get("params"))
        cursor.execute(request["source"], params)
        return {"ok": {
            "cursor": cursor_id,
            "description": cursor.description,
            "results": [
                {"kind": result.kind, "message": result.message,
                 "path": result.path}
                for result in cursor.results
            ],
        }}

    def _op_fetch(self, session: _WireSession,
                  request: dict[str, Any]) -> dict[str, Any]:
        cursor_id, cursor = session.cursor_for(request.get("cursor"))
        count = int(request.get("count", 1))
        rows = cursor.fetchmany(count)
        return {"ok": {
            "rows": [encode_value(row) for row in rows],
            "done": len(rows) < count,
            # Statements past a retrieval execute as the stream drains;
            # ship any messages they produced along with the rows.
            "results": [
                {"kind": result.kind, "message": result.message,
                 "path": result.path}
                for result in cursor.results
            ],
        }}
