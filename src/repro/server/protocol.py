"""Wire protocol: length-prefixed JSON frames plus a value codec.

Frame format
------------

Every message — request or response — is one *frame*::

    +----------------+----------------------+
    | length (4B BE) | UTF-8 JSON document  |
    +----------------+----------------------+

The length covers only the JSON body and is capped at
:data:`MAX_FRAME` (64 MiB) so a corrupt or hostile peer cannot make
the receiver allocate unbounded memory.

Value codec
-----------

GaeaQL bind parameters and result rows carry ADT values that JSON
cannot express directly.  :func:`encode_value` maps them onto tagged
one-key objects; :func:`decode_value` inverts the mapping:

===============  ==========================================================
Python value     wire form
===============  ==========================================================
``Box``          ``{"$box": [xmin, ymin, xmax, ymax, ref_system]}``
``AbsTime``      ``{"$abstime": days}``
``Image``        ``{"$image": {"pixtype", "shape", "filepath", "data"}}``
                 (``data`` is base64 of the row-major pixel buffer)
``SciObject``    ``{"$object": {"class", "oid", "values"}}``
numpy scalar     the equivalent Python scalar (``.item()``)
anything else    ``{"$opaque": {"type", "repr"}}`` — lossy, display only
===============  ==========================================================

Plain ``None``/``bool``/``int``/``float``/``str`` pass through, and
lists/tuples/dicts encode element-wise.  A plain dict whose keys happen
to start with ``"$"`` would be misread on decode; Gaea attribute values
are never such dicts, so the tag space is reserved for the codec.
"""

from __future__ import annotations

import base64
import json
import socket
import struct
from typing import Any

import numpy as np

from ..adt.image import Image, PIXTYPE_DTYPES
from ..core.classes import SciObject
from ..errors import GaeaError
from ..spatial.box import Box
from ..temporal.abstime import AbsTime

__all__ = [
    "MAX_FRAME",
    "ProtocolError",
    "encode_value",
    "decode_value",
    "send_frame",
    "recv_frame",
]

#: Upper bound on one frame's JSON body, in bytes.
MAX_FRAME = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(GaeaError):
    """The wire stream is corrupt, oversized, or out of protocol."""


# ---------------------------------------------------------------------------
# Value codec
# ---------------------------------------------------------------------------


def encode_value(value: Any) -> Any:
    """A JSON-representable form of *value* (see module docstring)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, Box):
        return {"$box": [value.xmin, value.ymin, value.xmax, value.ymax,
                         value.ref_system]}
    if isinstance(value, AbsTime):
        return {"$abstime": value.days}
    if isinstance(value, Image):
        return {"$image": {
            "pixtype": value.pixtype,
            "shape": list(value.data.shape),
            "filepath": value.filepath,
            "data": base64.b64encode(
                np.ascontiguousarray(value.data).tobytes()
            ).decode("ascii"),
        }}
    if isinstance(value, SciObject):
        return {"$object": {
            "class": value.class_name,
            "oid": value.oid,
            "values": {key: encode_value(item)
                       for key, item in value.values.items()},
        }}
    if isinstance(value, dict):
        return {str(key): encode_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [encode_value(item) for item in value]
    return {"$opaque": {"type": type(value).__name__, "repr": repr(value)}}


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value` (``$opaque`` stays a tagged dict)."""
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    if not isinstance(value, dict):
        return value
    if "$box" in value:
        xmin, ymin, xmax, ymax, ref = value["$box"]
        return Box(xmin, ymin, xmax, ymax, ref)
    if "$abstime" in value:
        return AbsTime(days=value["$abstime"])
    if "$image" in value:
        spec = value["$image"]
        dtype = PIXTYPE_DTYPES[spec["pixtype"]]
        array = np.frombuffer(
            base64.b64decode(spec["data"]), dtype=dtype
        ).reshape(spec["shape"])
        return Image.from_array(array, pixtype=spec["pixtype"],
                                filepath=spec["filepath"])
    if "$object" in value:
        spec = value["$object"]
        return SciObject(
            class_name=spec["class"],
            oid=spec["oid"],
            values={key: decode_value(item)
                    for key, item in spec["values"].items()},
        )
    if "$opaque" in value:
        return value
    return {key: decode_value(item) for key, item in value.items()}


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def send_frame(sock: socket.socket, message: dict[str, Any]) -> None:
    """Serialize *message* and write one frame to *sock*."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME ({MAX_FRAME})"
        )
    sock.sendall(_LENGTH.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Exactly *count* bytes, or None on a clean EOF at a frame edge."""
    chunks: list[bytes] = []
    got = 0
    while got < count:
        chunk = sock.recv(min(65536, count - got))
        if not chunk:
            if got == 0:
                return None
            raise ProtocolError(
                f"peer closed mid-frame ({got}/{count} bytes)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict[str, Any] | None:
    """Read one frame from *sock*; None when the peer closed cleanly."""
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(
            f"announced frame of {length} bytes exceeds MAX_FRAME"
        )
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("peer closed between header and body")
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame body must be a JSON object")
    return message
