"""The Gaea wire server: network access to a shared kernel.

A small, self-contained serving layer over the client API:

* :mod:`repro.server.protocol` — the frame format (4-byte big-endian
  length prefix + JSON body) and the value codec that carries Gaea's
  ADTs (boxes, abstimes, images, scientific objects) over JSON;
* :mod:`repro.server.server` — :class:`GaeaServer`, a thread-per-
  connection socket server; every wire connection gets its own
  DB-API :class:`~repro.query.client.Connection` over the one shared
  kernel, so snapshot isolation and the single-writer discipline apply
  across the network exactly as they do in process;
* :mod:`repro.server.remote` — :func:`remote_connect`, the client side:
  a :class:`RemoteConnection`/:class:`RemoteCursor` pair mirroring the
  local DB-API surface.

See ``docs/serving.md`` for the full protocol reference.
"""

from .protocol import ProtocolError, decode_value, encode_value, recv_frame, send_frame
from .remote import RemoteConnection, RemoteCursor, remote_connect
from .server import GaeaServer

__all__ = [
    "GaeaServer",
    "ProtocolError",
    "RemoteConnection",
    "RemoteCursor",
    "decode_value",
    "encode_value",
    "recv_frame",
    "send_frame",
    "remote_connect",
]
