"""remote_connect: the DB-API client over the wire protocol.

:class:`RemoteConnection` and :class:`RemoteCursor` mirror the local
:class:`~repro.query.client.Connection`/``Cursor`` surface — execute
with bind parameters, fetchone/fetchmany/fetchall/iteration, explain,
begin/commit/rollback — over one socket to a :class:`~.server.GaeaServer`.

Server-side failures come back as typed error frames; the client
re-raises them as the matching :mod:`repro.errors` class when one
exists (``TransactionError`` on the server is ``TransactionError``
here), falling back to :class:`~repro.errors.InterfaceError`.

Unlike the local API, a remote connection is *not* thread-safe: it owns
one socket carrying strictly ordered request/response pairs.  Open one
connection per thread — the server gives each its own snapshot-isolated
session.
"""

from __future__ import annotations

import socket
from typing import Any, Iterator

from .. import errors
from ..errors import GaeaError, InterfaceError
from .protocol import decode_value, encode_value, recv_frame, send_frame

__all__ = ["RemoteConnection", "RemoteCursor", "remote_connect"]

#: Rows pulled per fetch frame when draining (fetchall / iteration).
_FETCH_BATCH = 64


def _raise_remote(error: dict[str, Any]) -> None:
    """Re-raise a server error frame as its local exception type."""
    name = error.get("type", "InterfaceError")
    message = error.get("message", "remote error")
    exc_type = getattr(errors, name, None)
    if not (isinstance(exc_type, type) and issubclass(exc_type, GaeaError)):
        exc_type = InterfaceError
        message = f"{name}: {message}"
    raise exc_type(message)


class RemoteConnection:
    """A client connection to a :class:`~.server.GaeaServer`."""

    def __init__(self, host: str, port: int,
                 timeout: float | None = None):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._closed = False
        hello = self.request({"op": "hello"})
        self.server_version: str = hello.get("version", "?")

    # -- wire ----------------------------------------------------------------

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One request/response round trip; raises on error frames."""
        if self._closed:
            raise InterfaceError("remote connection is closed")
        try:
            send_frame(self._sock, payload)
            response = recv_frame(self._sock)
        except OSError as exc:
            self._closed = True
            raise InterfaceError(f"connection lost: {exc}") from exc
        if response is None:
            self._closed = True
            raise InterfaceError("server closed the connection")
        if "error" in response:
            _raise_remote(response["error"])
        return response.get("ok", {})

    # -- DB-API surface ------------------------------------------------------

    def cursor(self) -> "RemoteCursor":
        if self._closed:
            raise InterfaceError("remote connection is closed")
        return RemoteCursor(self)

    def execute(self, source: str, params: Any = None) -> "RemoteCursor":
        """Eager convenience mirroring ``Connection.execute``."""
        cursor = self.cursor()
        cursor.execute(source, params)
        cursor.fetchall()
        return cursor

    def store(self, class_name: str, values: dict[str, Any]) -> int:
        """Store one object (GaeaQL has no INSERT); returns its oid.

        ADT values — :class:`~repro.spatial.box.Box`,
        :class:`~repro.temporal.abstime.AbsTime`,
        :class:`~repro.adt.image.Image` — travel through the value
        codec; strings in external form (``'(0,0,10,10)'``,
        ``'1986-01-15'``) are coerced server-side as usual.
        """
        ok = self.request({
            "op": "store", "class": class_name,
            "values": encode_value(values),
        })
        return ok["oid"]

    def begin(self, read_only: bool = False) -> None:
        self.request({"op": "begin", "read_only": read_only})

    def commit(self) -> None:
        self.request({"op": "commit"})

    def rollback(self) -> None:
        self.request({"op": "rollback"})

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        try:
            self.request({"op": "close"})
        except (GaeaError, OSError):
            pass
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "RemoteConnection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self._closed:
            try:
                if exc_type is None:
                    self.commit()
                else:
                    self.rollback()
            except (GaeaError, OSError):
                pass
        self.close()


class RemoteCursor:
    """A streaming result handle over the wire (PEP-249 shaped)."""

    arraysize = 1

    def __init__(self, connection: RemoteConnection):
        self.connection = connection
        self.description: list[tuple] | None = None
        #: Non-object results, as ``{"kind", "message", "path"}`` dicts.
        self.results: list[dict[str, Any]] = []
        self._cursor_id: int | None = None
        self._buffer: list[Any] = []
        self._exhausted = True
        self._fetched = 0
        self._closed = False

    def execute(self, source: str, params: Any = None) -> "RemoteCursor":
        self._check_open()
        ok = self.connection.request({
            "op": "execute",
            "cursor": self._cursor_id,
            "source": source,
            "params": encode_value(params),
        })
        self._cursor_id = ok["cursor"]
        self.description = (
            [tuple(column) for column in ok["description"]]
            if ok.get("description") else None
        )
        self.results = list(ok.get("results", []))
        self._buffer = []
        self._exhausted = False
        self._fetched = 0
        return self

    def executemany(self, source: str, seq_of_params: Any) -> "RemoteCursor":
        for params in seq_of_params:
            self.execute(source, params)
            self.fetchall()
        return self

    def explain(self, source: str, params: Any = None) -> str:
        self._check_open()
        ok = self.connection.request({
            "op": "explain", "source": source,
            "params": encode_value(params),
        })
        return ok["plan"]

    # -- fetching ------------------------------------------------------------

    def _fill(self, count: int) -> None:
        if self._exhausted or self._cursor_id is None:
            return
        ok = self.connection.request({
            "op": "fetch", "cursor": self._cursor_id, "count": count,
        })
        self._buffer.extend(decode_value(row) for row in ok["rows"])
        # The server re-ships the cursor's full message list (statements
        # past a retrieval run as the stream drains); keep the superset.
        if len(ok.get("results", [])) > len(self.results):
            self.results = list(ok["results"])
        if ok["done"]:
            self._exhausted = True

    def fetchone(self) -> Any | None:
        self._check_open()
        if self._cursor_id is None:
            raise InterfaceError("no execute() has been issued")
        if not self._buffer:
            self._fill(1)
        if not self._buffer:
            return None
        self._fetched += 1
        return self._buffer.pop(0)

    def fetchmany(self, size: int | None = None) -> list[Any]:
        count = self.arraysize if size is None else size
        while len(self._buffer) < count and not self._exhausted:
            self._fill(count - len(self._buffer))
        out, self._buffer = self._buffer[:count], self._buffer[count:]
        self._fetched += len(out)
        return out

    def fetchall(self) -> list[Any]:
        while not self._exhausted:
            self._fill(_FETCH_BATCH)
        out, self._buffer = self._buffer, []
        self._fetched += len(out)
        return out

    def __iter__(self) -> Iterator[Any]:
        while True:
            obj = self.fetchone()
            if obj is None:
                return
            yield obj

    @property
    def rowcount(self) -> int:
        if not self._exhausted or self._buffer:
            return -1
        return self._fetched

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._cursor_id is not None and not self.connection.closed:
            try:
                self.connection.request({
                    "op": "close_cursor", "cursor": self._cursor_id,
                })
            except (GaeaError, OSError):
                pass
        self._buffer = []
        self._exhausted = True

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")

    def __enter__(self) -> "RemoteCursor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def remote_connect(host: str = "127.0.0.1", port: int = 7474,
                   timeout: float | None = None) -> RemoteConnection:
    """Connect to a running ``repro serve`` / :class:`GaeaServer`.

    ::

        from repro.client import remote_connect

        conn = remote_connect("127.0.0.1", 7474)
        cur = conn.cursor()
        cur.execute("SELECT FROM land_cover WHERE timestamp = ?",
                    ["1986-01-15"])
        for obj in cur:
            ...
    """
    return RemoteConnection(host, port, timeout=timeout)
