"""Kernel checkpointing: save/load a whole Gaea database.

The prototype's metadata lived in POSTGRES and survived restarts; our
substitute keeps everything in memory, so this module provides the
equivalent durability: :func:`save_kernel` checkpoints the entire kernel
(catalog, objects, processes, concepts, tasks, experiments — the lot) to
a single file and :func:`load_kernel` restores it.

The checkpoint is a pickle of the kernel object graph.  Pickle is safe
here because checkpoints are local artifacts this library itself wrote —
the same trust model as a database heap file.  A magic header and version
guard against loading foreign files.  Mapping expressions, assertions and
synthetic-scene generators are all plain dataclasses, so the graph
round-trips; the one non-picklable corner is *operator implementations*
(closures), which are re-registered on load from the standard + GIS
registries rather than serialized.
"""

from __future__ import annotations

import pickle
from pathlib import Path

from ..errors import GaeaError
from .metadata_manager import MetadataManager

__all__ = ["save_kernel", "load_kernel", "CHECKPOINT_MAGIC"]

CHECKPOINT_MAGIC = b"GAEA-CKPT-1\n"


def save_kernel(kernel: MetadataManager, path: str | Path) -> int:
    """Checkpoint *kernel* to *path*; returns bytes written.

    The operator registry's callables are stripped (re-registered on
    load); everything else — classes, stored objects, processes,
    compounds, concepts, the task log, experiments, the WAL — is saved.
    """
    state = {
        "engine": kernel.engine,
        "classes": kernel.classes,
        "store": kernel.store,
        "derivations_processes": kernel.derivations.processes,
        "derivations_compounds": kernel.derivations.compounds,
        "tasks": kernel.derivations.tasks,
        "concepts": kernel.concepts,
        "experiments": kernel.experiments,
        "universe": kernel.store.universe,
    }
    payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    path = Path(path)
    with open(path, "wb") as handle:
        handle.write(CHECKPOINT_MAGIC)
        handle.write(payload)
    return len(CHECKPOINT_MAGIC) + len(payload)


def load_kernel(path: str | Path) -> MetadataManager:
    """Restore a kernel from a checkpoint written by :func:`save_kernel`.

    Operators are rebuilt from the standard + GIS registrations against
    the restored type registry, so processes resolve their operators
    exactly as before the checkpoint.
    """
    from ..adt.builtin_ops import register_builtin_operators
    from ..adt.operators import OperatorRegistry
    from ..gis import register_gis_operators
    from .experiments import ExperimentManager
    from .manager import DerivationManager
    from .planner import RetrievalPlanner

    path = Path(path)
    with open(path, "rb") as handle:
        magic = handle.read(len(CHECKPOINT_MAGIC))
        if magic != CHECKPOINT_MAGIC:
            raise GaeaError(f"{path} is not a Gaea checkpoint")
        try:
            state = pickle.load(handle)
        except (pickle.UnpicklingError, EOFError) as exc:
            raise GaeaError(f"checkpoint {path} is corrupt: {exc}") from exc

    engine = state["engine"]
    types = engine.types
    operators = OperatorRegistry(types=types)
    register_builtin_operators(operators)
    register_gis_operators(operators)

    derivations = DerivationManager(
        classes=state["classes"], store=state["store"], operators=operators,
    )
    # __post_init__ created fresh registries; restore the saved ones.
    derivations.processes = state["derivations_processes"]
    derivations.compounds = state["derivations_compounds"]
    derivations.tasks = state["tasks"]

    experiments: ExperimentManager = state["experiments"]
    experiments.derivations = derivations
    experiments.concepts = state["concepts"]

    planner = RetrievalPlanner(manager=derivations)
    return MetadataManager(
        types=types,
        operators=operators,
        engine=engine,
        classes=state["classes"],
        store=state["store"],
        derivations=derivations,
        concepts=state["concepts"],
        experiments=experiments,
        planner=planner,
    )
