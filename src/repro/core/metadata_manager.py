"""The metadata manager — the Gaea kernel facade (paper Figure 1).

Wires the three semantic layers together exactly as Figure 1 draws them:

* **data type/operator manager** — the ADT registries (system level);
* **derivation manager** — classes, processes, tasks, the derivation net
  (liaison layer);
* **experiment manager** — concepts and experiments (high level);

all on top of the storage engine (the POSTGRES-backend substitute).
:func:`open_kernel` builds a ready-to-use kernel; the query interpreter
(:mod:`repro.query`) executes against this facade.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..adt import make_standard_registries
from ..adt.operators import OperatorRegistry
from ..adt.registry import TypeRegistry
from ..spatial.box import Box
from ..storage.engine import StorageEngine
from .classes import ClassRegistry, ClassStore
from .concepts import ConceptHierarchy
from .experiments import ExperimentManager
from .manager import DerivationManager
from .planner import RetrievalPlanner
from .provenance import ProvenanceBrowser

__all__ = ["MetadataManager", "open_kernel", "WORLD"]

#: Default spatial universe: the whole long/lat world.
WORLD = Box(-180.0, -90.0, 180.0, 90.0)


@dataclass
class MetadataManager:
    """The three-layer metadata manager plus its substrate handles."""

    types: TypeRegistry
    operators: OperatorRegistry
    engine: StorageEngine
    classes: ClassRegistry
    store: ClassStore
    derivations: DerivationManager
    concepts: ConceptHierarchy
    experiments: ExperimentManager
    planner: RetrievalPlanner
    provenance: ProvenanceBrowser = field(init=False)

    def __post_init__(self) -> None:
        self.provenance = ProvenanceBrowser(
            tasks=self.derivations.tasks, store=self.store
        )

    def schema_version(self) -> tuple[int, int, int, int, int]:
        """A cheap version stamp of everything plans depend on.

        Classes, processes and compounds are add-only (processes are
        immutable per §2.1.4), so their counts suffice; the concept
        hierarchy can gain ISA edges and members, so it contributes its
        own revision counter; the storage catalog's index version covers
        CREATE/DROP INDEX, whose access-path choices are baked into
        cached plans.  Plan caches compare this stamp to decide whether a
        cached plan is still meaningful.
        """
        return (
            len(self.classes.names()),
            len(self.derivations.processes.names())
            + len(self.derivations.compounds.names()),
            len(self.concepts.names()),
            self.concepts.revision,
            self.engine.catalog.index_version,
        )

    # -- component tree (FIG-1 regeneration) -----------------------------------

    def component_tree(self) -> dict[str, object]:
        """The architecture of Figure 1 as a nested mapping.

        Benchmarks verify this against the paper's component list; the
        'visual environment' box is out of scope (a UI) and the
        interpreter is attached by :class:`repro.query.session.GaeaSession`.
        """
        return {
            "GAEA KERNEL": {
                "Meta-Data Manager": {
                    "Data Type/Operator Manager": {
                        "primitive_classes": len(self.types),
                        "operators": len(self.operators.names()),
                    },
                    "Derivation Manager": {
                        "classes": len(self.classes.names()),
                        "processes": len(self.derivations.processes.names()),
                        "compound_processes": len(
                            self.derivations.compounds.names()
                        ),
                        "tasks": len(self.derivations.tasks),
                    },
                    "Experiment Manager": {
                        "concepts": len(self.concepts.names()),
                        "experiments": len(self.experiments),
                    },
                },
            },
            "POSTGRES BACKEND (substitute)": {
                "relations": len(self.engine.relations()),
                "wal_records": len(self.engine.wal),
            },
        }

    def describe(self) -> str:
        """Readable dump of the kernel's current contents."""
        lines = ["Gaea kernel"]

        def render(node: dict[str, object], depth: int) -> None:
            for key, value in node.items():
                if isinstance(value, dict):
                    lines.append("  " * depth + f"{key}:")
                    render(value, depth + 1)
                else:
                    lines.append("  " * depth + f"{key}: {value}")

        render(self.component_tree(), 1)
        return "\n".join(lines)


def open_kernel(universe: Box = WORLD) -> MetadataManager:
    """Create a fresh Gaea kernel with standard types and operators.

    *universe* bounds the spatial indexes (the study region; defaults to
    the whole world in long/lat).
    """
    types, operators = make_standard_registries()
    engine = StorageEngine(types=types)
    classes = ClassRegistry(types=types)
    store = ClassStore(engine=engine, registry=classes, universe=universe)
    derivations = DerivationManager(
        classes=classes, store=store, operators=operators
    )
    concepts = ConceptHierarchy()
    experiments = ExperimentManager(derivations=derivations, concepts=concepts)
    planner = RetrievalPlanner(manager=derivations)
    return MetadataManager(
        types=types,
        operators=operators,
        engine=engine,
        classes=classes,
        store=store,
        derivations=derivations,
        concepts=concepts,
        experiments=experiments,
        planner=planner,
    )
