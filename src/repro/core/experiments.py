"""The experiment manager: the high-level semantics layer (paper §2.1.1).

"This level records the information that is necessary for the
understanding of a specific experiment."  An experiment groups the
concepts under study, the tasks performed, free-form annotations, and the
parameters a scientist chose.  The manager supports the §4.2 claims:
experiments "can be reproduced, allowing rapid and reliable confirmation
of results", and information exchange is promoted because the derivation
history travels with the experiment record.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..errors import UnknownExperimentError
from .concepts import ConceptHierarchy
from .manager import DerivationManager, DerivationResult

__all__ = ["Experiment", "ExperimentManager"]


@dataclass
class Experiment:
    """A recorded scientific experiment."""

    experiment_id: int
    name: str
    investigator: str = ""
    description: str = ""
    concepts: set[str] = field(default_factory=set)
    task_ids: list[int] = field(default_factory=list)
    parameters: dict[str, Any] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add_task(self, task_id: int) -> None:
        """Attach a derivation task to this experiment."""
        self.task_ids.append(task_id)

    def annotate(self, note: str) -> None:
        """Append a free-form annotation (monitoring the progression of
        experiments, paper §1)."""
        self.notes.append(note)

    def describe(self) -> str:
        """Multi-line summary of the experiment record."""
        lines = [
            f"experiment #{self.experiment_id}: {self.name}",
            f"  investigator: {self.investigator or '(unknown)'}",
            f"  concepts: {sorted(self.concepts) or '(none)'}",
            f"  tasks: {self.task_ids or '(none)'}",
        ]
        if self.parameters:
            lines.append(f"  parameters: {self.parameters}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


@dataclass
class ExperimentManager:
    """Registry and replay engine for experiments."""

    derivations: DerivationManager
    concepts: ConceptHierarchy
    _experiments: dict[int, Experiment] = field(default_factory=dict)
    _ids: Iterator[int] = field(default_factory=lambda: itertools.count(1))

    def begin(self, name: str, investigator: str = "",
              description: str = "",
              concepts: set[str] | None = None,
              parameters: dict[str, Any] | None = None) -> Experiment:
        """Open a new experiment record."""
        for concept in concepts or set():
            self.concepts.get(concept)
        experiment = Experiment(
            experiment_id=next(self._ids),
            name=name,
            investigator=investigator,
            description=description,
            concepts=set(concepts or set()),
            parameters=dict(parameters or {}),
        )
        self._experiments[experiment.experiment_id] = experiment
        return experiment

    def get(self, experiment_id: int) -> Experiment:
        """The experiment with the given id."""
        try:
            return self._experiments[experiment_id]
        except KeyError:
            raise UnknownExperimentError(str(experiment_id)) from None

    def __len__(self) -> int:
        return len(self._experiments)

    def all_experiments(self) -> list[Experiment]:
        """Every recorded experiment."""
        return list(self._experiments.values())

    def run_task(self, experiment: Experiment, process_name: str,
                 bindings, reuse: bool = True) -> DerivationResult:
        """Execute a process inside an experiment, recording the task."""
        result = self.derivations.execute_process(process_name, bindings,
                                                  reuse=reuse)
        experiment.add_task(result.task.task_id)
        return result

    def reproduce(self, experiment_id: int) -> list[DerivationResult]:
        """Re-run every task of an experiment from its recorded inputs.

        Returns the fresh results in original task order.  This is the
        reproducibility capability IDRISI-style file workflows lack
        (paper §2.1.3): "such an experiment can be reproduced once the
        derivation procedures are captured".
        """
        experiment = self.get(experiment_id)
        return [
            self.derivations.reproduce_task(task_id)
            for task_id in experiment.task_ids
        ]

    def experiments_on(self, concept: str) -> list[Experiment]:
        """Experiments studying *concept* (browsing support)."""
        self.concepts.get(concept)
        return [
            e for e in self._experiments.values() if concept in e.concepts
        ]
