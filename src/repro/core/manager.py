"""The derivation manager: executing processes and recording tasks.

This is the "liaison layer" of Figure 1/2 — it owns class definitions,
process definitions (primitive and compound), the task log, and the
derivation net derived from them.  Executing a process:

1. checks the bindings and template assertions,
2. evaluates the mappings through the operator registry,
3. stores the resulting object in the class store, and
4. records a :class:`~repro.core.tasks.Task`.

Repeated instantiations over the same inputs are *memoized* through the
task log (reuse of previously performed experiments, paper §1) unless the
caller opts out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from typing import Any, Callable

from ..adt.operators import OperatorRegistry
from ..errors import (
    CompoundExpansionError,
    GaeaError,
    InteractionRequiredError,
    TaskExecutionError,
    UnknownClassError,
)
from .classes import ClassRegistry, ClassStore, NonPrimitiveClass, SciObject
from .compound import CompoundProcess, CompoundRegistry
from .derivation import Bindings, Process, ProcessRegistry
from .petri import DerivationNet, Marking
from .tasks import Task, TaskLog

__all__ = ["DerivationManager", "DerivationResult"]


@dataclass(frozen=True)
class DerivationResult:
    """Outcome of a process execution: the object plus its task record.

    ``reused`` is True when the result came from the task log instead of
    recomputation.
    """

    output: SciObject
    task: Task
    reused: bool


@dataclass
class DerivationManager:
    """Owner of the derivation-semantics layer."""

    classes: ClassRegistry
    store: ClassStore
    operators: OperatorRegistry
    processes: ProcessRegistry = field(init=False)
    compounds: CompoundRegistry = field(default_factory=CompoundRegistry)
    tasks: TaskLog = field(default_factory=TaskLog)

    def __post_init__(self) -> None:
        self.processes = ProcessRegistry(classes=self.classes)

    def __getstate__(self) -> dict:
        """Kernel checkpoints cannot pickle operator implementations; the
        registry is dropped here and re-attached by
        :func:`repro.core.persistence.load_kernel`."""
        state = self.__dict__.copy()
        state["operators"] = None
        return state

    # -- definitions -----------------------------------------------------------

    def define_class(self, cls: NonPrimitiveClass) -> NonPrimitiveClass:
        """Define a non-primitive class and materialize its storage."""
        defined = self.classes.define(cls)
        self.store.materialize(defined)
        return defined

    def define_process(self, process: Process) -> Process:
        """Define a primitive process."""
        return self.processes.define(process)

    def define_compound(self, compound: CompoundProcess) -> CompoundProcess:
        """Define a compound process."""
        for arg in compound.arguments:
            self.classes.get(arg.class_name)
        self.classes.get(compound.output_class)
        return self.compounds.define(compound)

    def derivation_net(self) -> DerivationNet:
        """The class-level derivation net over all primitive processes."""
        return DerivationNet.from_processes(self.processes)

    def class_marking(self) -> Marking:
        """Current marking: token count = stored object count per class."""
        return {
            name: self.store.count(name) for name in self.classes.names()
        }

    # -- execution -----------------------------------------------------------------

    def execute_process(self, process_name: str, bindings: Bindings,
                        reuse: bool = True,
                        interaction_handler: Callable[[str, str], Any]
                        | None = None,
                        parameter_overrides: dict[str, Any] | None = None
                        ) -> DerivationResult:
        """Instantiate a primitive process over bound objects (a *task*).

        With ``reuse`` (default) a completed task over identical inputs —
        and, for interactive processes, identical resolved parameters —
        short-circuits to its recorded output object.

        Interactive processes (§4.3 extension) resolve their interaction
        parameters through ``interaction_handler(name, prompt)`` unless
        ``parameter_overrides`` already supplies them (the replay path);
        without either, :class:`InteractionRequiredError` reproduces the
        paper's original limitation.
        """
        process = self.processes.get(process_name)
        overrides = dict(parameter_overrides or {})
        for name, prompt in process.interactions.items():
            if name in overrides:
                continue
            if interaction_handler is None:
                raise InteractionRequiredError(
                    f"process {process_name!r} needs interactive "
                    f"parameter {name!r} ({prompt}); supply an "
                    "interaction_handler"
                )
            overrides[name] = interaction_handler(name, prompt)
        resolved = dict(process.parameters)
        resolved.update(overrides)

        if reuse:
            memoized = self._find_reusable(process, bindings, resolved)
            if memoized is not None:
                try:
                    output = self.store.get(memoized.output_oids[0])
                except UnknownClassError:
                    # The recorded output no longer exists — e.g. its
                    # transaction rolled back in the no-overwrite store.
                    # The task log is history, not truth: recompute.
                    pass
                else:
                    return DerivationResult(output=output, task=memoized,
                                            reused=True)
        try:
            attributes = process.evaluate(bindings, self.operators,
                                          parameter_overrides=overrides)
            output = self.store.store(process.output_class, attributes)
        except GaeaError as exc:
            self.tasks.record_failure(process_name, bindings, error=str(exc))
            raise
        task = self.tasks.record(
            process_name, bindings, output_oids=(output.oid,),
            parameters=resolved,
        )
        return DerivationResult(output=output, task=task, reused=False)

    def _find_reusable(self, process, bindings: Bindings,
                       resolved: dict[str, Any]):
        """A completed prior task matching inputs (and, for interactive
        processes, the resolved parameters)."""
        memoized = self.tasks.find_memoized(process.name, bindings)
        if memoized is None or not memoized.output_oids:
            return None
        if process.is_interactive and memoized.parameters != resolved:
            # The memo index keeps only the latest task per bindings;
            # scan history for an exact parameter match.
            expected = {
                name: tuple(sorted(o.oid for o in bound))
                if isinstance(bound, list) else (bound.oid,)
                for name, bound in bindings.items()
            }
            for task in reversed(self.tasks.completed()):
                if task.process_name != process.name or not task.output_oids:
                    continue
                actual = {
                    name: tuple(sorted(oids))
                    for name, oids in task.input_oids.items()
                }
                if actual == expected and task.parameters == resolved:
                    return task
            return None
        return memoized

    def execute_compound(self, compound_name: str, bindings: Bindings,
                         reuse: bool = True) -> DerivationResult:
        """Expand a compound process and execute its primitive steps.

        'A compound process cannot be directly applied, but must be
        expanded into its primitive processes before actual derivation
        takes place' (§2.1.4).  Returns the output step's result.
        """
        compound = self.compounds.get(compound_name)
        for arg in compound.arguments:
            if arg.name not in bindings:
                raise CompoundExpansionError(
                    f"compound {compound_name!r}: argument {arg.name!r} "
                    "unbound"
                )
        steps = compound.expand(self.processes, self.compounds)
        produced: dict[str, SciObject] = {}
        result: DerivationResult | None = None
        for step in steps:
            step_bindings: Bindings = {}
            for arg_name, source in step.bindings.items():
                if source.startswith("@"):
                    step_bindings[arg_name] = bindings[source[1:]]
                else:
                    step_bindings[arg_name] = produced[source]
            result = self.execute_process(step.process, step_bindings,
                                          reuse=reuse)
            produced[step.label] = result.output
        if result is None:
            raise CompoundExpansionError(
                f"compound {compound_name!r} expanded to no steps"
            )
        return result

    def reproduce_task(self, task_id: int) -> DerivationResult:
        """Re-run a recorded task from its stored inputs, bypassing the
        memo — the reproducibility operation the paper motivates with the
        IDRISI comparison (§2.1.3).

        Interactive parameters replay from the task record: the scientist
        is *not* prompted again, which is exactly what makes interactive
        derivations reproducible.
        """
        task = self.tasks.get(task_id)
        if not task.succeeded:
            raise TaskExecutionError(
                f"task {task_id} failed originally; nothing to reproduce"
            )
        if "__external_procedure__" in task.parameters:
            raise TaskExecutionError(
                f"task {task_id} records a non-applicative (external) "
                "procedure; it is browsable but not re-executable — "
                f"procedure: {task.parameters['__external_procedure__']!r}"
            )
        if "__interpolation__" in task.parameters:
            from .interpolation import replay_interpolation_task

            output = replay_interpolation_task(self, task)
            fresh = self.tasks.producer_of(output.oid)
            assert fresh is not None
            return DerivationResult(output=output, task=fresh, reused=False)
        process = self.processes.get(task.process_name)
        bindings: Bindings = {}
        for arg in process.arguments:
            oids = task.input_oids[arg.name]
            objects = [self.store.get(oid) for oid in oids]
            bindings[arg.name] = objects if arg.is_set else objects[0]
        return self.execute_process(
            task.process_name, bindings, reuse=False,
            parameter_overrides=dict(task.parameters),
        )
