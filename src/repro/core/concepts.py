"""Concepts and the high-level specialization hierarchy (paper §2.1.1).

A *concept* "is a representation of a spatio-temporal entity set, extended
with an imprecise definition": DESERT means the same thing to every user
at the highest abstraction, but its derivations differ.  Formally "each
type of base data and each process for deriving data defines a unique
class; a concept is simply a set of classes."

Concepts form a specialization (ISA) hierarchy that may be a general DAG
(paper footnote 4), e.g.::

    Desert
      ISA-> Hot Trade-Wind Desert  -> {C2, C3, C4, C5}
      ISA-> Ice/Snow Desert        -> {...}

The hierarchy enforces acyclicity and supports the browsing queries the
experiment layer needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import (
    ConceptAlreadyDefinedError,
    ConceptCycleError,
    UnknownConceptError,
)

__all__ = ["Concept", "ConceptHierarchy"]


@dataclass
class Concept:
    """A named concept: a set of member (non-primitive) class names."""

    name: str
    member_classes: set[str] = field(default_factory=set)
    doc: str = ""

    def add_class(self, class_name: str) -> None:
        """Attach a derivation (a class) to this concept."""
        self.member_classes.add(class_name)

    def __contains__(self, class_name: str) -> bool:
        return class_name in self.member_classes


@dataclass
class ConceptHierarchy:
    """The high-level semantic layer: concepts plus ISA edges (a DAG)."""

    _concepts: dict[str, Concept] = field(default_factory=dict)
    _parents: dict[str, set[str]] = field(default_factory=dict)  # child -> parents
    #: Bumped on every structural change (new concept, ISA edge, member
    #: attachment) — unlike classes/processes, concepts are mutable, so
    #: plan caches need more than a count to detect staleness.
    revision: int = 0

    # -- definition -----------------------------------------------------------

    def define(self, name: str, doc: str = "",
               member_classes: set[str] | None = None) -> Concept:
        """Create a concept."""
        if name in self._concepts:
            raise ConceptAlreadyDefinedError(name)
        concept = Concept(name=name, doc=doc,
                          member_classes=set(member_classes or set()))
        self._concepts[name] = concept
        self._parents[name] = set()
        self.revision += 1
        return concept

    def get(self, name: str) -> Concept:
        """The concept called *name*."""
        try:
            return self._concepts[name]
        except KeyError:
            raise UnknownConceptError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._concepts

    def names(self) -> list[str]:
        """All concept names in definition order."""
        return list(self._concepts)

    # -- the ISA DAG -------------------------------------------------------------

    def add_isa(self, child: str, parent: str) -> None:
        """Record ``child ISA parent``; rejects cycles and self-loops."""
        self.get(child)
        self.get(parent)
        if child == parent or parent in self.descendants(child):
            raise ConceptCycleError(f"{child} ISA {parent} would create a cycle")
        self._parents[child].add(parent)
        self.revision += 1

    def parents(self, name: str) -> set[str]:
        """Direct generalizations of *name*."""
        self.get(name)
        return set(self._parents[name])

    def children(self, name: str) -> set[str]:
        """Direct specializations of *name*."""
        self.get(name)
        return {
            child for child, parents in self._parents.items() if name in parents
        }

    def ancestors(self, name: str) -> set[str]:
        """All generalizations, transitively."""
        seen: set[str] = set()
        frontier = list(self.parents(name))
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self._parents[current])
        return seen

    def descendants(self, name: str) -> set[str]:
        """All specializations, transitively."""
        seen: set[str] = set()
        frontier = list(self.children(name))
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.children(current))
        return seen

    def leaves_under(self, name: str) -> set[str]:
        """Leaf concepts below *name* (including *name* when a leaf).

        Leaves are where the concept structure 'is mapped to a set of
        non-primitive classes in the derivation semantics layer' (§2.1.2).
        """
        subtree = self.descendants(name) | {name}
        return {c for c in subtree if not (self.children(c) & subtree)}

    def roots(self) -> set[str]:
        """Concepts with no generalization."""
        return {name for name in self._concepts if not self._parents[name]}

    # -- concept <-> class mapping -----------------------------------------------

    def attach_class(self, concept: str, class_name: str) -> None:
        """Map a derivation-layer class into *concept*."""
        self.get(concept).add_class(class_name)
        self.revision += 1

    def classes_of(self, concept: str, transitive: bool = False) -> set[str]:
        """Member classes of *concept*; with ``transitive`` include every
        specialization's classes (a query on DESERT covers all deserts)."""
        names = {concept} | (self.descendants(concept) if transitive else set())
        out: set[str] = set()
        for name in names:
            out |= self.get(name).member_classes
        return out

    def concepts_of_class(self, class_name: str) -> set[str]:
        """All concepts a class belongs to."""
        return {
            concept.name
            for concept in self._concepts.values()
            if class_name in concept
        }
