"""Processes: class-level derivation semantics (paper §2.1.2, Figure 3).

A *process* "defines a mapping between a set of input object classes and
an output object class".  A process definition consists of:

1. a **name**,
2. an **output class**,
3. **arguments** — the input classes (possibly ``SETOF`` with a
   cardinality constraint),
4. a **TEMPLATE** of **assertions** (guard rules that must hold before the
   process applies) and **mappings** (transfer functions deriving output
   attributes from input attributes).

Mappings are expression trees over argument attributes, process
parameters, literals, and operator applications (evaluated through the
ADT layer's :class:`~repro.adt.operators.OperatorRegistry`).  ``ANYOF``
implements the invariant transfer of Figure 3 (``C20.spatialextent =
ANYOF bands.spatialextent``) — legal because an assertion already forced
the extents to agree.

Processes are immutable and never overwritten; editing creates a new
process (paper §2.1.4 observation 3, supported by
:meth:`Process.edited`).  Two applications of the same method with
different parameters are *different processes* (§2.1.2), enforced by
including ``parameters`` in process identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from ..adt.operators import OperatorRegistry
from ..errors import (
    AssertionViolatedError,
    MappingError,
    ProcessAlreadyDefinedError,
    UnknownProcessError,
)
from ..spatial.relations import common as spatial_common
from ..temporal.intervals import common_time
from .classes import ClassRegistry, SciObject

__all__ = [
    "Expr",
    "Literal",
    "ParamRef",
    "AttrRef",
    "AnyOf",
    "Apply",
    "Assertion",
    "CardinalityAssertion",
    "CommonSpatialAssertion",
    "CommonTemporalAssertion",
    "ExprAssertion",
    "Argument",
    "Process",
    "ProcessRegistry",
    "Bindings",
]

Bindings = dict[str, "SciObject | list[SciObject]"]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for template expressions."""

    def evaluate(self, context: "_EvalContext") -> Any:
        raise NotImplementedError

    def referenced_args(self) -> set[str]:
        """Argument names this expression reads (for dependency checks)."""
        return set()


@dataclass(frozen=True)
class Literal(Expr):
    """A constant, e.g. the ``12`` in ``unsuperclassify(..., 12)``."""

    value: Any

    def evaluate(self, context: "_EvalContext") -> Any:
        return self.value

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class ParamRef(Expr):
    """A reference to a process parameter (e.g. the rainfall cutoff)."""

    name: str

    def evaluate(self, context: "_EvalContext") -> Any:
        try:
            return context.parameters[self.name]
        except KeyError:
            raise MappingError(f"unknown process parameter {self.name!r}") from None

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class AttrRef(Expr):
    """``argument.attribute``.

    For a scalar argument this is the attribute value of the bound object;
    for a ``SETOF`` argument it is the *list* of attribute values, one per
    bound object (Figure 3's ``bands.timestamp``).
    """

    arg: str
    attr: str

    def evaluate(self, context: "_EvalContext") -> Any:
        bound = context.lookup(self.arg)
        if isinstance(bound, list):
            return [obj[self.attr] for obj in bound]
        return bound[self.attr]

    def referenced_args(self) -> set[str]:
        return {self.arg}

    def __str__(self) -> str:
        return f"{self.arg}.{self.attr}"


@dataclass(frozen=True)
class AnyOf(Expr):
    """``ANYOF expr`` — pick one element of a list-valued expression.

    Used for invariant extent transfer once an assertion guarantees all
    elements agree; deterministic (first element) so derivations are
    reproducible.
    """

    inner: Expr

    def evaluate(self, context: "_EvalContext") -> Any:
        value = self.inner.evaluate(context)
        if not isinstance(value, list):
            return value
        if not value:
            raise MappingError(f"ANYOF over empty list: {self.inner}")
        return value[0]

    def referenced_args(self) -> set[str]:
        return self.inner.referenced_args()

    def __str__(self) -> str:
        return f"ANYOF {self.inner}"


@dataclass(frozen=True)
class Apply(Expr):
    """``operator(arg0, arg1, ...)`` evaluated via the operator registry."""

    operator: str
    args: tuple[Expr, ...]

    def evaluate(self, context: "_EvalContext") -> Any:
        values = [arg.evaluate(context) for arg in self.args]
        try:
            return context.operators.apply(self.operator, *values)
        except Exception as exc:
            raise MappingError(
                f"operator {self.operator!r} failed: {exc}"
            ) from exc

    def referenced_args(self) -> set[str]:
        out: set[str] = set()
        for arg in self.args:
            out |= arg.referenced_args()
        return out

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.operator}({inner})"


@dataclass
class _EvalContext:
    """Evaluation state shared by all expressions of one instantiation."""

    bindings: Bindings
    parameters: dict[str, Any]
    operators: OperatorRegistry

    def lookup(self, arg: str) -> "SciObject | list[SciObject]":
        try:
            return self.bindings[arg]
        except KeyError:
            raise MappingError(f"unbound process argument {arg!r}") from None


# ---------------------------------------------------------------------------
# Assertions (guard rules)
# ---------------------------------------------------------------------------


class Assertion:
    """A template assertion: a constraint that 'needs to hold before a
    process can be applied' (paper Figure 3)."""

    def check(self, context: _EvalContext) -> None:
        """Raise :class:`AssertionViolatedError` when violated."""
        raise NotImplementedError


@dataclass(frozen=True)
class CardinalityAssertion(Assertion):
    """``card(arg) = n`` / ``card(arg) >= n`` on a SETOF argument."""

    arg: str
    count: int
    exact: bool = True

    def check(self, context: _EvalContext) -> None:
        bound = context.lookup(self.arg)
        actual = len(bound) if isinstance(bound, list) else 1
        ok = actual == self.count if self.exact else actual >= self.count
        if not ok:
            op = "=" if self.exact else ">="
            raise AssertionViolatedError(
                f"card({self.arg}) {op} {self.count} violated (got {actual})"
            )

    def __str__(self) -> str:
        op = "=" if self.exact else ">="
        return f"card({self.arg}) {op} {self.count}"


@dataclass(frozen=True)
class CommonSpatialAssertion(Assertion):
    """``common(arg.spatialextent)`` — inputs must share spatial coverage."""

    arg: str
    attr: str = "spatialextent"

    def check(self, context: _EvalContext) -> None:
        value = AttrRef(self.arg, self.attr).evaluate(context)
        extents = value if isinstance(value, list) else [value]
        if not spatial_common(extents):
            raise AssertionViolatedError(
                f"common({self.arg}.{self.attr}) violated: extents share "
                "no region"
            )

    def __str__(self) -> str:
        return f"common({self.arg}.{self.attr})"


@dataclass(frozen=True)
class CommonTemporalAssertion(Assertion):
    """``common(arg.timestamp)`` — inputs must be contemporaneous."""

    arg: str
    attr: str = "timestamp"
    tolerance_days: int = 0

    def check(self, context: _EvalContext) -> None:
        value = AttrRef(self.arg, self.attr).evaluate(context)
        stamps = value if isinstance(value, list) else [value]
        if not common_time(stamps, tolerance_days=self.tolerance_days):
            raise AssertionViolatedError(
                f"common({self.arg}.{self.attr}) violated: timestamps "
                f"spread beyond {self.tolerance_days} day(s)"
            )

    def __str__(self) -> str:
        return f"common({self.arg}.{self.attr})"


@dataclass(frozen=True)
class ExprAssertion(Assertion):
    """A general boolean expression assertion."""

    expr: Expr
    description: str = ""

    def check(self, context: _EvalContext) -> None:
        value = self.expr.evaluate(context)
        if not isinstance(value, bool):
            raise AssertionViolatedError(
                f"assertion {self} did not evaluate to a boolean"
            )
        if not value:
            raise AssertionViolatedError(f"assertion {self} violated")

    def __str__(self) -> str:
        return self.description or str(self.expr)


# ---------------------------------------------------------------------------
# Process
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Argument:
    """One process argument: a named binding to an input class."""

    name: str
    class_name: str
    is_set: bool = False
    min_cardinality: int = 1

    def __str__(self) -> str:
        if self.is_set:
            return f"SETOF {self.class_name} {self.name}"
        return f"{self.class_name} {self.name}"


@dataclass(frozen=True)
class Process:
    """An immutable class-level derivation template.

    ``parameters`` take part in identity: the same method with different
    parameters is a different process (§2.1.2).  ``mappings`` maps each
    output attribute name to its transfer expression.
    """

    name: str
    output_class: str
    arguments: tuple[Argument, ...]
    assertions: tuple[Assertion, ...] = ()
    mappings: dict[str, Expr] = field(default_factory=dict)
    parameters: dict[str, Any] = field(default_factory=dict)
    #: Interaction points (extension of the paper's §4.3 limitation):
    #: parameter name -> prompt.  These parameters are resolved *at task
    #: time* by an interaction handler (the scientist), then recorded in
    #: the task so the derivation stays reproducible.
    interactions: dict[str, str] = field(default_factory=dict)
    doc: str = ""

    @property
    def is_interactive(self) -> bool:
        """Whether the process declares interaction points (§4.3)."""
        return bool(self.interactions)

    @property
    def input_classes(self) -> tuple[str, ...]:
        """Input class names, one per argument."""
        return tuple(arg.class_name for arg in self.arguments)

    def argument(self, name: str) -> Argument:
        """The argument called *name*."""
        for arg in self.arguments:
            if arg.name == name:
                return arg
        raise UnknownProcessError(
            f"process {self.name!r} has no argument {name!r}"
        )

    # -- instantiation ---------------------------------------------------------

    def check_bindings(self, bindings: Bindings) -> None:
        """Validate binding shape (names, classes, cardinalities)."""
        for arg in self.arguments:
            if arg.name not in bindings:
                raise AssertionViolatedError(
                    f"process {self.name!r}: argument {arg.name!r} unbound"
                )
            bound = bindings[arg.name]
            if arg.is_set:
                if not isinstance(bound, list):
                    raise AssertionViolatedError(
                        f"process {self.name!r}: argument {arg.name!r} "
                        "expects a list of objects"
                    )
                if len(bound) < arg.min_cardinality:
                    raise AssertionViolatedError(
                        f"process {self.name!r}: argument {arg.name!r} needs "
                        f">= {arg.min_cardinality} objects, got {len(bound)}"
                    )
                objs = bound
            else:
                if isinstance(bound, list):
                    raise AssertionViolatedError(
                        f"process {self.name!r}: argument {arg.name!r} "
                        "expects a single object"
                    )
                objs = [bound]
            for obj in objs:
                if obj.class_name != arg.class_name:
                    raise AssertionViolatedError(
                        f"process {self.name!r}: argument {arg.name!r} "
                        f"expects class {arg.class_name!r}, got an object of "
                        f"{obj.class_name!r}"
                    )
        unknown = set(bindings) - {arg.name for arg in self.arguments}
        if unknown:
            raise AssertionViolatedError(
                f"process {self.name!r}: unknown argument(s) {sorted(unknown)}"
            )

    def evaluate(self, bindings: Bindings, operators: OperatorRegistry,
                 parameter_overrides: dict[str, Any] | None = None
                 ) -> dict[str, Any]:
        """Check assertions, then evaluate every mapping.

        ``parameter_overrides`` supplies task-time values for interaction
        parameters (and may shadow static parameters when replaying a
        recorded task).  Returns the output attribute dictionary; the
        derivation manager turns it into a stored object plus a task
        record.
        """
        self.check_bindings(bindings)
        params = dict(self.parameters)
        if parameter_overrides:
            params.update(parameter_overrides)
        missing = [name for name in self.interactions if name not in params]
        if missing:
            raise MappingError(
                f"process {self.name!r}: interaction parameter(s) "
                f"{missing} unresolved"
            )
        context = _EvalContext(
            bindings=bindings, parameters=params, operators=operators,
        )
        for assertion in self.assertions:
            assertion.check(context)
        return {
            attr: expr.evaluate(context)
            for attr, expr in self.mappings.items()
        }

    # -- evolution (paper §2.1.4 obs. 3) ------------------------------------------

    def edited(self, new_name: str, **changes: Any) -> "Process":
        """A new process derived by editing this one.

        'A new process may be defined by editing an old process ...
        In no case is the old process overwritten.'
        """
        if new_name == self.name:
            raise ProcessAlreadyDefinedError(
                "an edited process must take a new name"
            )
        return replace(self, name=new_name, **changes)

    # -- rendering -------------------------------------------------------------------

    def describe(self) -> str:
        """Render in the paper's DEFINE PROCESS syntax (Figure 3)."""
        lines = [f"DEFINE PROCESS {self.name}", f"OUTPUT {self.output_class}"]
        args = ", ".join(str(arg) for arg in self.arguments)
        lines.append(f"ARGUMENT ( {args} )")
        lines.append("TEMPLATE {")
        lines.append("  ASSERTIONS:")
        for assertion in self.assertions:
            lines.append(f"    {assertion};")
        lines.append("  MAPPINGS:")
        for attr, expr in self.mappings.items():
            lines.append(f"    {self.output_class}.{attr} = {expr};")
        if self.parameters:
            lines.append("  PARAMETERS:")
            for key, value in sorted(self.parameters.items()):
                lines.append(f"    {key} = {value!r};")
        lines.append("}")
        return "\n".join(lines)


@dataclass
class ProcessRegistry:
    """Registry of processes, validating classes and attribute coverage."""

    classes: ClassRegistry
    _processes: dict[str, Process] = field(default_factory=dict)

    def define(self, process: Process) -> Process:
        """Register *process*; validates its classes and mappings."""
        if process.name in self._processes:
            raise ProcessAlreadyDefinedError(process.name)
        output_cls = self.classes.get(process.output_class)
        for arg in process.arguments:
            self.classes.get(arg.class_name)
        missing = set(output_cls.attribute_names) - set(process.mappings)
        if missing:
            raise MappingError(
                f"process {process.name!r} does not map output attribute(s) "
                f"{sorted(missing)} of {process.output_class!r}"
            )
        extra = set(process.mappings) - set(output_cls.attribute_names)
        if extra:
            raise MappingError(
                f"process {process.name!r} maps unknown attribute(s) "
                f"{sorted(extra)}"
            )
        for attr, expr in process.mappings.items():
            for arg_name in expr.referenced_args():
                process.argument(arg_name)  # raises when unknown
        self._processes[process.name] = process
        return process

    def get(self, name: str) -> Process:
        """The process called *name*."""
        try:
            return self._processes[name]
        except KeyError:
            raise UnknownProcessError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._processes

    def names(self) -> list[str]:
        """All process names in definition order."""
        return list(self._processes)

    def all_processes(self) -> list[Process]:
        """All registered processes."""
        return list(self._processes.values())

    def producing(self, class_name: str) -> list[Process]:
        """Processes whose output class is *class_name*."""
        return [
            p for p in self._processes.values() if p.output_class == class_name
        ]

    def consuming(self, class_name: str) -> list[Process]:
        """Processes taking *class_name* as an input."""
        return [
            p for p in self._processes.values()
            if class_name in p.input_classes
        ]
