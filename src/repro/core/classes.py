"""Non-primitive classes and scientific objects (paper §2.1.1–§2.1.2).

A *non-primitive class* is the derivation-layer unit: a named set of
attributes typed by primitive classes, plus the two orthogonal extents
(``SPATIAL EXTENT`` / ``TEMPORAL EXTENT``) and an optional ``DERIVED BY``
process reference.  The paper's example::

    CLASS landcover (
      ATTRIBUTES:
        area = char16; ref_system = char16; ...
        data = image;
      SPATIAL EXTENT:  spatialextent = box;
      TEMPORAL EXTENT: timestamp = abstime;
      DERIVED BY: unsupervised-classification
    )

Classes whose objects come from outside the system are *base*; all others
are "solely defined by their derivation process" (§2.1.2).

The :class:`ClassStore` materializes each class as a storage relation
(with an ``_oid`` surrogate column) and provides the automatically defined
retrieval functions (``area(landcover)``-style accessors).
"""

from __future__ import annotations

import itertools
import operator
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..adt.registry import TypeRegistry
from ..errors import (
    ClassAlreadyDefinedError,
    DerivationError,
    StorageError,
    TransactionError,
    TupleNotFoundError,
    UnknownClassError,
)
from ..spatial.box import Box
from ..storage.access import AccessPath, choose_access_path, choose_ordered_path
from ..storage.catalog import IndexDef
from ..storage.engine import Row, StorageEngine
from ..storage.transactions import Transaction
from ..temporal.abstime import AbsTime

__all__ = ["NonPrimitiveClass", "SciObject", "ClassRegistry", "ClassStore",
           "COMPARISONS", "matches_predicates", "matches_extents"]

OID_COLUMN = "_oid"

#: The snapshot pinned for the current logical reader, as ``(store,
#: snapshot)``.  A :class:`~contextvars.ContextVar` rather than a
#: thread-local so each server worker thread (and each task, under an
#: event loop) carries its own pin.  Note PEP 567's generator caveat:
#: a pin set *inside* a generator leaks across its yields, so consumers
#: wrap each ``next()`` call (see ``query.client.Cursor``), never the
#: generator body.
_ACTIVE_VIEW: ContextVar[tuple["ClassStore", Any] | None] = ContextVar(
    "repro_active_view", default=None
)

#: Comparison operators usable in range predicates (GaeaQL WHERE).
COMPARISONS: dict[str, Callable[[Any, Any], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def matches_predicates(obj: "SciObject",
                       filters: tuple[tuple[str, Any], ...],
                       ranges: tuple[tuple[str, str, Any], ...]) -> bool:
    """Whether *obj* satisfies every equality filter and range predicate.

    The single definition of attribute-predicate semantics, shared by
    the streaming scan (:meth:`ClassStore.iter_find`), the executor's
    DERIVE post-filter, and the planner's fallback filter — so the
    paths cannot diverge.  An incomparable literal (e.g. ``name > 5``
    on a string attribute) raises a typed :class:`DerivationError`
    rather than leaking a bare ``TypeError`` out of a row stream.
    """
    if any(obj.get(attr) != value for attr, value in filters):
        return False
    for attr, op, value in ranges:
        try:
            if not COMPARISONS[op](obj.get(attr), value):
                return False
        except TypeError as exc:
            raise DerivationError(
                f"range predicate {attr} {op} {value!r} is not "
                f"comparable with stored value {obj.get(attr)!r}"
            ) from exc
    return True


def matches_extents(obj: "SciObject", cls: "NonPrimitiveClass",
                    spatial: Box | None, temporal: AbsTime | None,
                    spatial_coverage: bool = False) -> bool:
    """Whether *obj* satisfies the spatio-temporal extent predicates.

    The single definition of extent semantics (overlap for space, exact
    match for time), shared by the streaming scan filters and the
    planner's derivation-output collection.  With *spatial_coverage* the
    object's extent must *contain* the query box, not merely overlap it.
    """
    if spatial is not None and cls.spatial_attr is not None:
        extent = obj[cls.spatial_attr]
        if spatial_coverage:
            if not extent.contains(spatial):
                return False
        elif not extent.overlaps(spatial):
            return False
    if temporal is not None and cls.temporal_attr is not None \
            and obj[cls.temporal_attr] != temporal:
        return False
    return True


@dataclass(frozen=True)
class NonPrimitiveClass:
    """Definition of a non-primitive (scientific object) class."""

    name: str
    attributes: tuple[tuple[str, str], ...]  # (attr name, primitive type)
    spatial_attr: str | None = "spatialextent"
    temporal_attr: str | None = "timestamp"
    derived_by: str | None = None  # process name; None => base class
    doc: str = ""

    def __post_init__(self) -> None:
        names = [name for name, _ in self.attributes]
        if len(names) != len(set(names)):
            raise DerivationError(f"duplicate attributes in class {self.name!r}")
        for extent in (self.spatial_attr, self.temporal_attr):
            if extent is not None and extent not in names:
                raise DerivationError(
                    f"class {self.name!r} declares extent attribute "
                    f"{extent!r} but does not define it"
                )

    @property
    def is_base(self) -> bool:
        """Base classes hold data from outside the system (paper §1)."""
        return self.derived_by is None

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Attribute names in declaration order."""
        return tuple(name for name, _ in self.attributes)

    def type_of(self, attr: str) -> str:
        """Primitive-class name of *attr*."""
        for name, type_name in self.attributes:
            if name == attr:
                return type_name
        raise DerivationError(f"class {self.name!r} has no attribute {attr!r}")

    def describe(self) -> str:
        """Render the definition in the paper's CLASS syntax."""
        lines = [f"CLASS {self.name} ("]
        lines.append("  ATTRIBUTES:")
        for name, type_name in self.attributes:
            if name in (self.spatial_attr, self.temporal_attr):
                continue
            lines.append(f"    {name} = {type_name};")
        if self.spatial_attr is not None:
            lines.append("  SPATIAL EXTENT:")
            lines.append(
                f"    {self.spatial_attr} = {self.type_of(self.spatial_attr)};"
            )
        if self.temporal_attr is not None:
            lines.append("  TEMPORAL EXTENT:")
            lines.append(
                f"    {self.temporal_attr} = {self.type_of(self.temporal_attr)};"
            )
        if self.derived_by is not None:
            lines.append(f"  DERIVED BY: {self.derived_by}")
        lines.append(")")
        return "\n".join(lines)


@dataclass(frozen=True)
class SciObject:
    """One scientific data object: an instance of a non-primitive class."""

    class_name: str
    oid: int
    values: dict[str, Any]

    def __getitem__(self, attr: str) -> Any:
        try:
            return self.values[attr]
        except KeyError:
            raise DerivationError(
                f"object {self.oid} of {self.class_name!r} has no "
                f"attribute {attr!r}"
            ) from None

    def get(self, attr: str, default: Any = None) -> Any:
        """Attribute value with a default."""
        return self.values.get(attr, default)


@dataclass
class ClassRegistry:
    """Registry of non-primitive class definitions."""

    types: TypeRegistry
    _classes: dict[str, NonPrimitiveClass] = field(default_factory=dict)

    def define(self, cls: NonPrimitiveClass) -> NonPrimitiveClass:
        """Register *cls*, validating its attribute types."""
        if cls.name in self._classes:
            raise ClassAlreadyDefinedError(cls.name)
        for _, type_name in cls.attributes:
            self.types.get(type_name)
        self._classes[cls.name] = cls
        return cls

    def get(self, name: str) -> NonPrimitiveClass:
        """The class called *name*."""
        try:
            return self._classes[name]
        except KeyError:
            raise UnknownClassError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def __iter__(self) -> Iterator[NonPrimitiveClass]:
        return iter(self._classes.values())

    def names(self) -> list[str]:
        """All class names, in definition order."""
        return list(self._classes)

    def base_classes(self) -> list[NonPrimitiveClass]:
        """Classes holding externally supplied data."""
        return [cls for cls in self._classes.values() if cls.is_base]

    def derived_classes(self) -> list[NonPrimitiveClass]:
        """Classes defined solely by their derivation process."""
        return [cls for cls in self._classes.values() if not cls.is_base]


@dataclass
class ClassStore:
    """Object storage for non-primitive classes, backed by the engine.

    Each defined class gets a relation ``cls_<name>`` whose first column
    is the ``_oid`` surrogate, followed by the class attributes.  Spatial
    and temporal indexes are attached to the extent attributes when a
    universe is supplied.
    """

    engine: StorageEngine
    registry: ClassRegistry
    universe: Box | None = None
    _oid_counter: Iterator[int] = field(default_factory=lambda: itertools.count(1))
    _oid_index: dict[int, tuple[str, Any]] = field(default_factory=dict)
    #: Explicit transaction scoping all stores/reads (None = auto-commit).
    current_tx: Transaction | None = field(default=None)
    #: Oids stored under the open transaction (purged on rollback).
    _tx_oids: list[int] = field(default_factory=list)
    #: Stored-data scans started, per class (cheap, always on).
    scan_counts: dict[str, int] = field(default_factory=dict)
    #: When set (e.g. by a test fixture) every scan appends
    #: ``(class_name, spatial, temporal, filters, ranges)`` — the
    #: instrument behind the "fallbacks never re-scan" guarantee.
    scan_log: list[tuple] | None = field(default=None)
    # Makes the single-writer check-and-set atomic: two threads racing
    # `begin_transaction` must not both win.
    _writer_gate: threading.RLock = field(default_factory=threading.RLock,
                                          repr=False, compare=False)
    # Scan counters/log are shared across every connection; a plain
    # dict read-modify-write would drop counts under contention.
    _stats_lock: threading.Lock = field(default_factory=threading.Lock,
                                        repr=False, compare=False)

    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        del state["_writer_gate"]
        del state["_stats_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._writer_gate = threading.RLock()
        self._stats_lock = threading.Lock()

    @staticmethod
    def relation_for(class_name: str) -> str:
        """Storage relation name backing *class_name*."""
        return f"cls_{class_name}"

    # -- transaction scoping (no-overwrite MVCC under the objects) -------------

    def begin_transaction(self) -> Transaction:
        """Start an explicit transaction scoping subsequent object work.

        The kernel is a single-writer store: one explicit transaction at
        a time, shared by every connection over this kernel.  While it is
        open, stored objects are visible to this store's readers (the
        transaction sees its own writes) but invisible to fresh snapshots
        until commit.
        """
        with self._writer_gate:
            if self.current_tx is not None:
                raise TransactionError(
                    f"transaction {self.current_tx.xid} is already active "
                    "on this kernel (single-writer store)"
                )
            self.current_tx = self.engine.begin()
            self._tx_oids = []
            return self.current_tx

    def commit_transaction(self) -> None:
        """Commit the explicit transaction; its objects become durable."""
        with self._writer_gate:
            if self.current_tx is None:
                raise TransactionError("no transaction is active")
            self.engine.commit(self.current_tx)
            self.current_tx = None
            self._tx_oids = []

    def rollback_transaction(self) -> None:
        """Abort the explicit transaction; its object versions stay dead
        forever (no-overwrite storage).  Oids allocated under the
        transaction are dropped from the object index so later lookups
        fail with the documented :class:`UnknownClassError` instead of
        pointing at permanently invisible row versions."""
        with self._writer_gate:
            if self.current_tx is None:
                raise TransactionError("no transaction is active")
            self.engine.abort(self.current_tx)
            self.current_tx = None
            for oid in self._tx_oids:
                self._oid_index.pop(oid, None)
            self._tx_oids = []

    @contextmanager
    def read_view(self, snapshot: Any) -> Iterator[None]:
        """Pin *snapshot* for every read this store performs in the
        current context.

        The substrate of snapshot-isolated readers: a served connection
        pins the snapshot captured at ``begin()`` (or at statement
        start) so every row fetched underneath — scans, index probes,
        object gets — judges visibility against that one committed-set,
        however long the writer keeps committing alongside.
        """
        token = _ACTIVE_VIEW.set((self, snapshot))
        try:
            yield
        finally:
            _ACTIVE_VIEW.reset(token)

    def reader_snapshot(self) -> Any:
        """A fresh everything-committed-so-far snapshot, for pinning."""
        return self.engine.snapshot()

    @contextmanager
    def write_view(self) -> Iterator[None]:
        """Suspend any reader pin for this scope: reads see the live
        write-side view (fresh snapshot per read, or the open writer
        transaction's own view).

        The derivation fallbacks store objects — committing fresh xids
        mid-scope — and immediately re-read them; under a reader's
        frozen snapshot (or even a snapshot frozen at scope entry) those
        reads would miss the data the fallback just created.  The outer
        pin is restored on exit.
        """
        with self.read_view(None):
            yield

    def _snapshot(self):
        """Snapshot for reads: the pinned view when one is active in
        this context, else the open writer transaction's view, if any."""
        pinned = _ACTIVE_VIEW.get()
        if pinned is not None and pinned[0] is self \
                and pinned[1] is not None:
            return pinned[1]
        tx = self.current_tx
        if tx is None:
            return None  # engine default: everything committed
        return self.engine.snapshot(tx)

    def materialize(self, cls: NonPrimitiveClass) -> None:
        """Create the backing relation (and extent indexes) for *cls*."""
        relation = self.relation_for(cls.name)
        columns = [(OID_COLUMN, "int4")] + list(cls.attributes)
        self.engine.create_relation(relation, columns)
        self.engine.create_index(relation, OID_COLUMN)
        if cls.spatial_attr is not None and self.universe is not None:
            self.engine.create_spatial_index(relation, cls.spatial_attr,
                                             universe=self.universe)
        if cls.temporal_attr is not None:
            self.engine.create_temporal_index(relation, cls.temporal_attr)

    def store(self, class_name: str, values: dict[str, Any]) -> SciObject:
        """Insert an object of *class_name*; returns it with a fresh oid."""
        cls = self.registry.get(class_name)
        missing = [a for a in cls.attribute_names if a not in values]
        if missing:
            raise DerivationError(
                f"object of {class_name!r} is missing attribute(s): {missing}"
            )
        extra = [a for a in values if a not in cls.attribute_names]
        if extra:
            raise DerivationError(
                f"object of {class_name!r} has unknown attribute(s): {extra}"
            )
        oid = next(self._oid_counter)
        row = (oid,) + tuple(values[a] for a in cls.attribute_names)
        relation = self.relation_for(class_name)
        tx = self.current_tx
        if tx is not None:
            tid = self.engine.insert(relation, row, tx)
            self._tx_oids.append(oid)
            write_view = self.engine.snapshot(tx)
        else:
            tid = self.engine.insert_row(relation, row)
            write_view = self.engine.snapshot()
        self._oid_index[oid] = (class_name, tid)
        # Re-fetch under the *write-side* snapshot, not `_snapshot()`:
        # a derivation running while a reader pin is active must still
        # see the row it just inserted.
        stored = self.engine.fetch(relation, tid, write_view)
        obj_values = {a: stored[a] for a in cls.attribute_names}
        return SciObject(class_name=class_name, oid=oid, values=obj_values)

    def _row_to_object(self, class_name: str, row: Any) -> SciObject:
        cls = self.registry.get(class_name)
        values = {a: row[a] for a in cls.attribute_names}
        return SciObject(class_name=class_name, oid=row[OID_COLUMN], values=values)

    def get(self, oid: int) -> SciObject:
        """The object with surrogate id *oid*."""
        try:
            class_name, tid = self._oid_index[oid]
        except KeyError:
            raise UnknownClassError(f"no object with oid {oid}") from None
        try:
            row = self.engine.fetch(self.relation_for(class_name), tid,
                                    self._snapshot())
        except TupleNotFoundError:
            # The backing version is invisible under this snapshot (e.g.
            # its transaction rolled back): to callers the object simply
            # does not exist.
            raise UnknownClassError(
                f"no object with oid {oid} (version not visible)"
            ) from None
        return self._row_to_object(class_name, row)

    def objects(self, class_name: str) -> list[SciObject]:
        """All stored objects of *class_name*."""
        self.registry.get(class_name)
        relation = self.relation_for(class_name)
        return [
            self._row_to_object(class_name, row)
            for row in self.engine.scan(relation, self._snapshot())
        ]

    def count(self, class_name: str) -> int:
        """Number of stored objects of *class_name*."""
        return len(self.objects(class_name))

    # -- secondary attribute indexes -------------------------------------------

    def create_attribute_index(self, class_name: str, attr: str,
                               name: str | None = None) -> IndexDef:
        """Build a B-tree over a scalar attribute of *class_name*.

        Extent attributes are rejected: the grid index and timeline
        already cover them (attached at :meth:`materialize` time).
        """
        cls = self.registry.get(class_name)
        cls.type_of(attr)  # raises when the attribute does not exist
        if attr in (cls.spatial_attr, cls.temporal_attr):
            raise StorageError(
                f"{class_name}.{attr} is an extent attribute — it is "
                "indexed automatically (grid index / timeline)"
            )
        return self.engine.create_index(self.relation_for(class_name), attr,
                                        name=name)

    def drop_attribute_index(self, class_name: str, attr: str) -> None:
        """Drop the B-tree on ``class_name.attr``."""
        self.registry.get(class_name)
        if attr == OID_COLUMN:
            raise StorageError(
                "the OID index is automatic and cannot be dropped"
            )
        self.engine.drop_index(self.relation_for(class_name), attr)

    def drop_index_named(self, name: str) -> IndexDef:
        """Drop a secondary attribute index by its catalog name.

        The automatic structures — the OID B-tree (object fetch) and
        the extent grid/timeline (spatial retrieval, interpolation) —
        are load-bearing and cannot be dropped.
        """
        index = self.engine.catalog.index_named(name)
        if index.kind != "btree" or index.column == OID_COLUMN:
            raise StorageError(
                f"index {name!r} is automatic ({index.kind} on "
                f"{index.relation}.{index.column}) and cannot be dropped"
            )
        return self.engine.drop_index_named(name)

    def indexes_of(self, class_name: str) -> list[IndexDef]:
        """Catalog entries of every index on *class_name*'s relation."""
        self.registry.get(class_name)
        return self.engine.catalog.indexes_of(self.relation_for(class_name))

    # -- retrieval (paper §2.1.5 step 1) ---------------------------------------

    def _coerce(self, cls: NonPrimitiveClass, attr: str, value: Any) -> Any:
        """Parse date strings for abstime-typed attributes so range and
        equality predicates compare like with like."""
        if isinstance(value, str):
            try:
                if cls.type_of(attr) == "abstime":
                    return AbsTime.parse(value)
            except DerivationError:
                pass
        return value

    def normalize_predicates(
        self, cls: NonPrimitiveClass,
        filters: tuple[tuple[str, Any], ...],
        ranges: tuple[tuple[str, str, Any], ...],
    ) -> tuple[tuple[tuple[str, Any], ...], tuple[tuple[str, str, Any], ...]]:
        filters = tuple(
            (attr, self._coerce(cls, attr, value)) for attr, value in filters
        )
        ranges = tuple(
            (attr, op, self._coerce(cls, attr, value))
            for attr, op, value in ranges
        )
        for attr, op, _ in ranges:
            cls.type_of(attr)  # raises for unknown attributes
            if op not in COMPARISONS:
                raise DerivationError(f"unknown comparison operator {op!r}")
        return filters, ranges

    def choose_path(self, class_name: str,
                    spatial: Box | None = None,
                    temporal: AbsTime | None = None,
                    filters: tuple[tuple[str, Any], ...] = (),
                    ranges: tuple[tuple[str, str, Any], ...] = (),
                    projection: tuple[str, ...] = ()
                    ) -> AccessPath:
        """Cost-based access path for one retrieval (shared with the
        GaeaQL optimizer, so EXPLAIN shows exactly what will run).

        A non-empty *projection* names the only attributes the consumer
        wants, enabling covering index-only scans when an attribute
        B-tree supplies them all.
        """
        cls = self.registry.get(class_name)
        filters, ranges = self.normalize_predicates(cls, filters, ranges)
        spatial_q = spatial if (
            spatial is not None and cls.spatial_attr is not None
            and self.universe is not None
        ) else None
        temporal_q = temporal if (
            temporal is not None and cls.temporal_attr is not None
        ) else None
        return choose_access_path(
            self.engine, self.relation_for(class_name),
            spatial=spatial_q, temporal=temporal_q,
            equals=filters, ranges=ranges,
            needed_columns=tuple(projection) or None,
        )

    def _rows_for_path(self, relation: str, path: AccessPath,
                       snapshot: Any) -> Iterator[Row]:
        if path.kind == "index-eq":
            return self.engine.iter_lookup(relation, path.column,
                                           path.argument, snapshot)
        if path.kind == "index-range":
            lo, hi = path.argument
            return self.engine.iter_range(relation, path.column, lo, hi,
                                          snapshot, reverse=path.descending)
        if path.kind == "spatial-probe":
            return self.engine.iter_spatial(relation, path.argument, snapshot)
        if path.kind == "temporal-probe":
            return self.engine.iter_temporal(relation, path.argument,
                                             snapshot)
        return self.engine.scan(relation, snapshot)

    def ordered_path(self, class_name: str, attr: str,
                     descending: bool = False,
                     filters: tuple[tuple[str, Any], ...] = (),
                     ranges: tuple[tuple[str, str, Any], ...] = (),
                     limit_hint: int | None = None) -> AccessPath | None:
        """An index-order scan over ``class_name.attr`` (sort avoidance),
        or None when no B-tree backs the attribute.

        The physical planner compares this path's cost against
        scan-plus-explicit-Sort and keeps the cheaper plan.
        """
        cls = self.registry.get(class_name)
        cls.type_of(attr)
        filters, ranges = self.normalize_predicates(cls, filters, ranges)
        return choose_ordered_path(
            self.engine, self.relation_for(class_name), attr,
            descending=descending, equals=filters, ranges=ranges,
            limit_hint=limit_hint,
        )

    def _record_scan(self, class_name: str, spatial: Box | None,
                     temporal: AbsTime | None,
                     filters: tuple[tuple[str, Any], ...],
                     ranges: tuple[tuple[str, str, Any], ...]) -> None:
        with self._stats_lock:
            self.scan_counts[class_name] = \
                self.scan_counts.get(class_name, 0) + 1
            if self.scan_log is not None:
                self.scan_log.append(
                    (class_name, spatial, temporal, filters, ranges)
                )

    def validated_path(self, class_name: str,
                       spatial: Box | None = None,
                       temporal: AbsTime | None = None,
                       filters: tuple[tuple[str, Any], ...] = (),
                       ranges: tuple[tuple[str, str, Any], ...] = (),
                       access_path: AccessPath | None = None,
                       projection: tuple[str, ...] = ()) -> AccessPath:
        """*access_path* if still current, else a freshly chosen path.

        A plan-time path choice is only trusted while the catalog's
        index version still matches: CREATE/DROP INDEX since planning
        means the recorded choice may name a structure that no longer
        exists (or miss one that now would win).
        """
        if access_path is not None \
                and access_path.index_version \
                == self.engine.catalog.index_version:
            return access_path
        return self.choose_path(class_name, spatial=spatial,
                                temporal=temporal, filters=filters,
                                ranges=ranges, projection=projection)

    def iter_scan(self, class_name: str,
                  spatial: Box | None = None,
                  temporal: AbsTime | None = None,
                  filters: tuple[tuple[str, Any], ...] = (),
                  ranges: tuple[tuple[str, str, Any], ...] = (),
                  access_path: AccessPath | None = None
                  ) -> Iterator[SciObject]:
        """The raw candidate stream of one stored-data scan.

        Rows come straight off the (re-validated) access path with **no
        predicate re-checks** — the physical operator layer layers
        extent and attribute filters on top.  Exactly one scan event is
        recorded per call, which is what the scan counters measure.
        """
        cls = self.registry.get(class_name)
        filters, ranges = self.normalize_predicates(cls, filters, ranges)
        yield from self._iter_scan_normalized(
            class_name, spatial, temporal, filters, ranges, access_path
        )

    def _iter_scan_normalized(self, class_name: str,
                              spatial: Box | None, temporal: AbsTime | None,
                              filters: tuple[tuple[str, Any], ...],
                              ranges: tuple[tuple[str, str, Any], ...],
                              access_path: AccessPath | None
                              ) -> Iterator[SciObject]:
        """:meth:`iter_scan` body over already-normalized predicates."""
        relation = self.relation_for(class_name)
        snapshot = self._snapshot()
        path = self.validated_path(class_name, spatial=spatial,
                                   temporal=temporal, filters=filters,
                                   ranges=ranges, access_path=access_path)
        self._record_scan(class_name, spatial, temporal, filters, ranges)
        for row in self._rows_for_path(relation, path, snapshot):
            yield self._row_to_object(class_name, row)

    def _tids_for_path(self, relation: str, path: AccessPath) -> Any:
        """TID stream matching :meth:`_rows_for_path`'s visit order, or
        None for a full scan (the heap walk batches directly)."""
        if path.kind == "index-eq":
            return self.engine.iter_lookup_tids(relation, path.column,
                                                path.argument)
        if path.kind == "index-range":
            lo, hi = path.argument
            return self.engine.iter_range_tids(relation, path.column, lo, hi,
                                               reverse=path.descending)
        if path.kind == "spatial-probe":
            return self.engine.iter_spatial_tids(relation, path.argument)
        if path.kind == "temporal-probe":
            return self.engine.iter_temporal_tids(relation, path.argument)
        return None

    def iter_scan_batches(self, class_name: str,
                          spatial: Box | None = None,
                          temporal: AbsTime | None = None,
                          filters: tuple[tuple[str, Any], ...] = (),
                          ranges: tuple[tuple[str, str, Any], ...] = (),
                          access_path: AccessPath | None = None,
                          batch_size: int | None = None) -> Iterator["Batch"]:
        """The columnar counterpart of :meth:`iter_scan`: the same raw
        candidate stream (same path choice, same row order, one scan
        event recorded, no predicate re-checks) delivered as
        :class:`~repro.query.batch.Batch` slabs instead of per-row
        ``SciObject`` instances.

        Index paths stream TIDs off the chunked snapshot B-tree scans
        and the engine fetches raw value tuples in batch-sized runs;
        full scans batch straight off the heap walk.
        """
        from repro.query.batch import DEFAULT_BATCH_SIZE, Batch

        size = batch_size or DEFAULT_BATCH_SIZE
        cls = self.registry.get(class_name)
        filters, ranges = self.normalize_predicates(cls, filters, ranges)
        relation = self.relation_for(class_name)
        snapshot = self._snapshot()
        path = self.validated_path(class_name, spatial=spatial,
                                   temporal=temporal, filters=filters,
                                   ranges=ranges, access_path=access_path)
        self._record_scan(class_name, spatial, temporal, filters, ranges)
        tids = self._tids_for_path(relation, path)
        for chunk in self.engine.value_batches(relation, snapshot,
                                               batch_size=size, tids=tids):
            yield Batch.from_values(class_name, cls.attributes, chunk)

    def iter_index_only_batches(self, class_name: str, path: AccessPath,
                                batch_size: int | None = None
                                ) -> Iterator["Batch"]:
        """Covering-scan keys as single-column batches (see
        :meth:`iter_index_only` for the scalar contract)."""
        from repro.query.batch import DEFAULT_BATCH_SIZE, Batch, build_column

        size = batch_size or DEFAULT_BATCH_SIZE
        cls = self.registry.get(class_name)
        column = path.column
        type_name = "int4" if column == OID_COLUMN else cls.type_of(column)
        keys: list[Any] = []
        for row in self.iter_index_only(class_name, path):
            keys.append(row[column])
            if len(keys) >= size:
                arr, mask = build_column(type_name, keys)
                masks = {column: mask} if mask is not None else {}
                yield Batch(length=len(keys), columns={column: arr},
                            masks=masks, order=(column,))
                keys = []
        if keys:
            arr, mask = build_column(type_name, keys)
            masks = {column: mask} if mask is not None else {}
            yield Batch(length=len(keys), columns={column: arr},
                        masks=masks, order=(column,))

    def iter_index_only(self, class_name: str, path: AccessPath
                        ) -> Iterator[dict[str, Any]]:
        """Stream covering-scan rows: ``{column: key}`` dicts straight
        off the B-tree, never fetching heap values.

        Only valid for an ``index_only`` path (the planner guarantees
        the key covers every requested attribute and every predicate).
        """
        if not path.index_only or path.column is None:
            raise StorageError(
                "iter_index_only needs an index-only access path"
            )
        relation = self.relation_for(class_name)
        self._record_scan(class_name, None, None, (), ())
        if path.kind == "index-eq":
            pairs = self.engine.iter_index_keys(
                relation, path.column, eq=path.argument,
                snapshot=self._snapshot(),
            )
        else:
            lo, hi = path.argument
            pairs = self.engine.iter_index_keys(
                relation, path.column, lo=lo, hi=hi,
                snapshot=self._snapshot(),
            )
        for key, _ in pairs:
            yield {path.column: key}

    def iter_find(self, class_name: str,
                  spatial: Box | None = None,
                  temporal: AbsTime | None = None,
                  predicate: Callable[[SciObject], bool] | None = None,
                  filters: tuple[tuple[str, Any], ...] = (),
                  ranges: tuple[tuple[str, str, Any], ...] = (),
                  access_path: AccessPath | None = None
                  ) -> Iterator[SciObject]:
        """Stream matching objects through the cheapest access path.

        The driving scan comes from *access_path* (a plan-time choice —
        re-chosen automatically when stale, i.e. when indexes were
        created or dropped since) or from :meth:`choose_path`.  Every
        predicate is re-checked per row, so pushdown only prunes the
        candidate stream, never changes the result.
        """
        cls = self.registry.get(class_name)
        filters, ranges = self.normalize_predicates(cls, filters, ranges)
        for obj in self._iter_scan_normalized(class_name, spatial, temporal,
                                              filters, ranges, access_path):
            if not matches_extents(obj, cls, spatial, temporal):
                continue
            if not matches_predicates(obj, filters, ranges):
                continue
            if predicate is not None and not predicate(obj):
                continue
            yield obj

    def find(self, class_name: str,
             spatial: Box | None = None,
             temporal: AbsTime | None = None,
             predicate: Callable[[SciObject], bool] | None = None,
             filters: tuple[tuple[str, Any], ...] = (),
             ranges: tuple[tuple[str, str, Any], ...] = (),
             access_path: AccessPath | None = None) -> list[SciObject]:
        """Spatio-temporal retrieval (paper §2.1.5 step 1), materialized.

        Chooses the cheapest access path (extent index, attribute B-tree
        or full scan) and applies everything else as residual predicates;
        :meth:`iter_find` is the streaming variant.
        """
        return list(self.iter_find(
            class_name, spatial=spatial, temporal=temporal,
            predicate=predicate, filters=filters, ranges=ranges,
            access_path=access_path,
        ))

    def exists(self, class_name: str,
               spatial: Box | None = None,
               temporal: AbsTime | None = None) -> bool:
        """Whether any stored object matches the extent predicates.

        Short-circuits on the first streamed match — the cheap existence
        probe the planner uses to distinguish "predicates filtered
        everything out" from "nothing stored at these extents"."""
        return next(
            self.iter_find(class_name, spatial=spatial, temporal=temporal),
            None,
        ) is not None

    # -- automatically defined retrieval functions (paper §2.1.2) -------------

    def accessor(self, class_name: str, attr: str) -> Callable[[SciObject], Any]:
        """The auto-defined retrieval function ``attr(class)``.

        'The retrieval functions such as area(landcover) and
        timestamp(landcover) are automatically defined.'
        """
        cls = self.registry.get(class_name)
        cls.type_of(attr)  # raises when the attribute does not exist

        def access(obj: SciObject) -> Any:
            if obj.class_name != class_name:
                raise DerivationError(
                    f"{attr}({class_name}) applied to an object of "
                    f"{obj.class_name!r}"
                )
            return obj[attr]

        access.__name__ = f"{attr}_{class_name}"
        access.__doc__ = f"Auto-defined retrieval function {attr}({class_name})."
        return access
