"""Generic temporal interpolation of scientific objects.

Paper §2.1.5: "Interpolation can be used in many situations where data are
missing.  It is a generic derivation process which is applicable to many
data types in many domains."  The planner's step 2 uses this module to
synthesize an object at a missing timestamp from the stored snapshots
bracketing it.

Interpolation is attribute-wise, driven by the primitive type of each
attribute:

* numeric attributes (``int2/int4/float4/float8``) — linear in time;
* ``image`` — pixelwise linear blend (shapes must agree);
* ``abstime`` — the target timestamp for the temporal-extent attribute;
* everything else (names, reference systems, boxes) — must agree on both
  snapshots and is copied through; disagreement makes the pair
  non-interpolable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..adt.image import Image
from ..errors import DerivationError
from ..spatial.box import Box
from ..temporal.abstime import AbsTime
from .classes import NonPrimitiveClass, SciObject

__all__ = ["TemporalInterpolator", "InterpolationError",
           "replay_interpolation_task"]


class InterpolationError(DerivationError):
    """The snapshot pair cannot be interpolated."""


@dataclass
class TemporalInterpolator:
    """Linear-in-time attribute interpolator."""

    def weight(self, before: AbsTime, after: AbsTime, target: AbsTime) -> float:
        """Fraction of the way from *before* to *after* at *target*."""
        if not before <= target <= after:
            raise InterpolationError(
                f"target {target} outside snapshot range [{before}, {after}]"
            )
        span = before.days_between(after)
        if span == 0:
            return 0.0
        return before.days_between(target) / span

    def _blend(self, type_name: str, lo: Any, hi: Any, w: float) -> Any:
        if type_name in ("float4", "float8"):
            return float(lo) * (1.0 - w) + float(hi) * w
        if type_name in ("int2", "int4"):
            return round(float(lo) * (1.0 - w) + float(hi) * w)
        if type_name == "image":
            if lo.shape != hi.shape:
                raise InterpolationError(
                    f"image shapes differ: {lo.shape} vs {hi.shape}"
                )
            blended = (
                lo.data.astype(np.float64) * (1.0 - w)
                + hi.data.astype(np.float64) * w
            )
            return Image.from_array(blended, "float4")
        # Categorical / structural attributes must agree.
        if lo != hi:
            raise InterpolationError(
                f"{type_name} attribute differs between snapshots "
                f"({lo!r} vs {hi!r}); cannot interpolate"
            )
        return lo

    def interpolate(self, cls: NonPrimitiveClass, before: SciObject,
                    after: SciObject, target: AbsTime) -> dict[str, Any]:
        """Attribute dict for a synthetic object of *cls* at *target*.

        *before*/*after* must be instances of *cls* bracketing *target*
        in time.  The temporal-extent attribute is set to *target*; every
        other attribute is blended per its primitive type.
        """
        if before.class_name != cls.name or after.class_name != cls.name:
            raise InterpolationError(
                "snapshots are not instances of the interpolated class"
            )
        if cls.temporal_attr is None:
            raise InterpolationError(
                f"class {cls.name!r} has no temporal extent to interpolate "
                "over"
            )
        t_lo = before[cls.temporal_attr]
        t_hi = after[cls.temporal_attr]
        if t_lo > t_hi:
            before, after = after, before
            t_lo, t_hi = t_hi, t_lo
        w = self.weight(t_lo, t_hi, target)
        values: dict[str, Any] = {}
        for attr, type_name in cls.attributes:
            if attr == cls.temporal_attr:
                values[attr] = target
            else:
                values[attr] = self._blend(
                    type_name, before[attr], after[attr], w
                )
        return values


def replay_interpolation_task(manager, task) -> "SciObject":
    """Re-run a recorded interpolation task (temporal or spatial).

    *manager* is the :class:`~repro.core.manager.DerivationManager`
    owning the store; the fresh object is stored and returned, and a new
    task is recorded — mirroring :meth:`reproduce_task` for processes.
    """
    kind = task.parameters.get("__interpolation__")
    output_cls_name = manager.store.get(task.output_oids[0]).class_name
    cls = manager.classes.get(output_cls_name)
    if kind == "temporal":
        before = manager.store.get(task.input_oids["before"][0])
        after = manager.store.get(task.input_oids["after"][0])
        target = AbsTime.parse(task.parameters["target"])
        values = TemporalInterpolator().interpolate(cls, before, after,
                                                    target)
    elif kind == "spatial":
        from ..gis.mosaic import mosaic

        region = Box.parse(task.parameters["region"])
        pieces_objs = [manager.store.get(oid)
                       for oid in task.input_oids["pieces"]]
        pieces = [(obj["data"], obj[cls.spatial_attr])
                  for obj in pieces_objs]
        values = {"data": mosaic(pieces, region), cls.spatial_attr: region}
        for attr, _ in cls.attributes:
            if attr in ("data", cls.spatial_attr):
                continue
            values[attr] = pieces_objs[0][attr]
    else:
        raise DerivationError(
            f"task {task.task_id} is not an interpolation task"
        )
    obj = manager.store.store(output_cls_name, values)
    manager.tasks.record(
        task.process_name,
        {name: ([manager.store.get(o) for o in oids]
                if len(oids) > 1 or name == "pieces"
                else manager.store.get(oids[0]))
         for name, oids in task.input_oids.items()},
        output_oids=(obj.oid,),
        parameters=dict(task.parameters),
    )
    return obj
