"""Compound processes (paper §2.1.2, §2.1.4, Figure 5).

"A compound process is a network of intercommunicating processes ...
merely an abstraction which can be used to simplify a derivation
relationship between object classes.  Thus a compound process cannot be
directly applied, but must be expanded into its primitive processes
before actual derivation takes place."

A :class:`CompoundProcess` is a DAG of :class:`Step` objects.  Each step
invokes a process — primitive or another compound (nesting allowed) — and
wires its arguments either to compound-level arguments (``"@name"``) or to
the output of an earlier step.  :meth:`CompoundProcess.expand` flattens
nesting into a topologically ordered list of primitive
:class:`ExpandedStep` records, which the derivation manager executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CompoundExpansionError, UnknownProcessError
from .derivation import Argument, ProcessRegistry

__all__ = ["Step", "CompoundProcess", "CompoundRegistry", "ExpandedStep"]

_MAX_NESTING = 32


@dataclass(frozen=True)
class Step:
    """One sub-process invocation inside a compound.

    ``bindings`` maps the invoked process's argument names to sources:
    ``"@x"`` for the compound's own argument *x*, or a step name for that
    step's output object.
    """

    name: str
    process: str
    bindings: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class ExpandedStep:
    """A primitive step after expansion, with globally unique labels.

    ``label`` is the nesting path (``"detect/spca"``); ``bindings``
    sources refer to compound arguments (``"@x"``) or other expanded-step
    labels.
    """

    label: str
    process: str
    bindings: dict[str, str]


@dataclass(frozen=True)
class CompoundProcess:
    """A named network of sub-processes with a single output step."""

    name: str
    output_class: str
    arguments: tuple[Argument, ...]
    steps: tuple[Step, ...]
    output_step: str
    doc: str = ""

    def __post_init__(self) -> None:
        names = [step.name for step in self.steps]
        if len(names) != len(set(names)):
            raise CompoundExpansionError(
                f"compound {self.name!r}: duplicate step names"
            )
        if self.output_step not in names:
            raise CompoundExpansionError(
                f"compound {self.name!r}: output step {self.output_step!r} "
                "is not a step"
            )
        arg_names = {arg.name for arg in self.arguments}
        seen: set[str] = set()
        for step in self.steps:
            for source in step.bindings.values():
                if source.startswith("@"):
                    if source[1:] not in arg_names:
                        raise CompoundExpansionError(
                            f"compound {self.name!r}: step {step.name!r} "
                            f"references unknown argument {source!r}"
                        )
                elif source not in seen:
                    raise CompoundExpansionError(
                        f"compound {self.name!r}: step {step.name!r} "
                        f"references step {source!r} before it is defined"
                    )
            seen.add(step.name)

    def expand(self, primitives: ProcessRegistry,
               compounds: "CompoundRegistry") -> list[ExpandedStep]:
        """Flatten to primitive steps in execution order (paper §2.1.4
        observation 2)."""
        steps, _ = self._expand(primitives, compounds, prefix="", depth=0)
        return steps

    def _expand(self, primitives: ProcessRegistry,
                compounds: "CompoundRegistry", prefix: str, depth: int
                ) -> tuple[list[ExpandedStep], str]:
        """Recursive expansion; returns (steps, label of the output step)."""
        if depth > _MAX_NESTING:
            raise CompoundExpansionError(
                f"compound {self.name!r}: nesting exceeds {_MAX_NESTING} "
                "(recursive compound?)"
            )
        expanded: list[ExpandedStep] = []
        output_labels: dict[str, str] = {}  # local step name -> expanded label
        for step in self.steps:
            label = f"{prefix}{step.name}"
            resolved = {
                arg: (source if source.startswith("@")
                      else output_labels[source])
                for arg, source in step.bindings.items()
            }
            if step.process in primitives:
                expanded.append(ExpandedStep(
                    label=label, process=step.process, bindings=resolved,
                ))
                output_labels[step.name] = label
            elif step.process in compounds:
                inner = compounds.get(step.process)
                inner_steps, inner_output = inner._expand(
                    primitives, compounds, prefix=f"{label}/", depth=depth + 1,
                )
                # Re-wire the inner compound's "@arg" sources to this
                # step's already-resolved sources.
                arg_sources = {
                    arg.name: resolved[arg.name] for arg in inner.arguments
                }
                for inner_step in inner_steps:
                    rewired = {
                        arg: (arg_sources[source[1:]]
                              if source.startswith("@") else source)
                        for arg, source in inner_step.bindings.items()
                    }
                    expanded.append(ExpandedStep(
                        label=inner_step.label, process=inner_step.process,
                        bindings=rewired,
                    ))
                output_labels[step.name] = inner_output
            else:
                raise UnknownProcessError(
                    f"compound {self.name!r}: step {step.name!r} invokes "
                    f"unknown process {step.process!r}"
                )
        return expanded, output_labels[self.output_step]

    def describe(self) -> str:
        """Render the compound's structure."""
        lines = [f"DEFINE COMPOUND PROCESS {self.name}",
                 f"OUTPUT {self.output_class}"]
        args = ", ".join(str(arg) for arg in self.arguments)
        lines.append(f"ARGUMENT ( {args} )")
        lines.append("STEPS {")
        for step in self.steps:
            wires = ", ".join(
                f"{arg}<-{src}" for arg, src in sorted(step.bindings.items())
            )
            lines.append(f"  {step.name}: {step.process}({wires})")
        lines.append("}")
        lines.append(f"RESULT {self.output_step}")
        return "\n".join(lines)


@dataclass
class CompoundRegistry:
    """Registry of compound processes."""

    _compounds: dict[str, CompoundProcess] = field(default_factory=dict)

    def define(self, compound: CompoundProcess) -> CompoundProcess:
        """Register *compound*."""
        if compound.name in self._compounds:
            raise CompoundExpansionError(
                f"compound {compound.name!r} already defined"
            )
        self._compounds[compound.name] = compound
        return compound

    def get(self, name: str) -> CompoundProcess:
        """The compound called *name*."""
        try:
            return self._compounds[name]
        except KeyError:
            raise UnknownProcessError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._compounds

    def names(self) -> list[str]:
        """All compound names."""
        return list(self._compounds)
