"""The paper's primary contribution: the three-layer metadata manager.

* high level — concepts and experiments (:mod:`repro.core.concepts`,
  :mod:`repro.core.experiments`);
* derivation level — non-primitive classes, processes, tasks, the Petri
  derivation net and the retrieval planner;
* facade — :func:`repro.core.metadata_manager.open_kernel`.
"""

from .classes import ClassRegistry, ClassStore, NonPrimitiveClass, SciObject
from .compound import CompoundProcess, CompoundRegistry, ExpandedStep, Step
from .concepts import Concept, ConceptHierarchy
from .diagrams import lineage_to_dot, lineage_to_text, net_to_dot, net_to_text
from .derivation import (
    AnyOf,
    Apply,
    Argument,
    Assertion,
    AttrRef,
    Bindings,
    CardinalityAssertion,
    CommonSpatialAssertion,
    CommonTemporalAssertion,
    Expr,
    ExprAssertion,
    Literal,
    ParamRef,
    Process,
    ProcessRegistry,
)
from .experiments import Experiment, ExperimentManager
from .external import (
    RemoteExecutor,
    RemoteSite,
    is_external,
    record_external_derivation,
)
from .interpolation import InterpolationError, TemporalInterpolator
from .manager import DerivationManager, DerivationResult
from .metadata_manager import WORLD, MetadataManager, open_kernel
from .persistence import load_kernel, save_kernel
from .petri import DerivationNet, DerivationPlan, InputArc, Marking, Transition
from .planner import RetrievalPlanner, RetrievalResult
from .provenance import Lineage, ProvenanceBrowser
from .tasks import Task, TaskLog, TaskStatus, bindings_key

__all__ = [
    "AnyOf",
    "Apply",
    "Argument",
    "Assertion",
    "AttrRef",
    "Bindings",
    "CardinalityAssertion",
    "ClassRegistry",
    "ClassStore",
    "CommonSpatialAssertion",
    "CommonTemporalAssertion",
    "CompoundProcess",
    "CompoundRegistry",
    "Concept",
    "ConceptHierarchy",
    "DerivationManager",
    "DerivationNet",
    "DerivationPlan",
    "DerivationResult",
    "ExpandedStep",
    "Experiment",
    "ExperimentManager",
    "Expr",
    "ExprAssertion",
    "InputArc",
    "InterpolationError",
    "Lineage",
    "Literal",
    "Marking",
    "MetadataManager",
    "NonPrimitiveClass",
    "ParamRef",
    "Process",
    "ProcessRegistry",
    "ProvenanceBrowser",
    "RemoteExecutor",
    "RemoteSite",
    "RetrievalPlanner",
    "RetrievalResult",
    "SciObject",
    "Step",
    "Task",
    "TaskLog",
    "TaskStatus",
    "TemporalInterpolator",
    "Transition",
    "WORLD",
    "bindings_key",
    "is_external",
    "lineage_to_dot",
    "lineage_to_text",
    "load_kernel",
    "net_to_dot",
    "net_to_text",
    "open_kernel",
    "record_external_derivation",
    "save_kernel",
]
