"""Derivation-history graph: lineage over objects and tasks.

The availability of task records turns the database into a *derivation
diagram* over data objects, which the paper's conclusion says can be used
to "1) browse data following their derivation relationships, 2) compare
derivation procedures and their resulting data classes, and 3) derive
data not stored in the database".  (3) is the planner's job; this module
provides (1) and (2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DerivationError
from .classes import ClassStore
from .tasks import Task, TaskLog

__all__ = ["Lineage", "ProvenanceBrowser"]


@dataclass(frozen=True)
class Lineage:
    """The full derivation history of one object.

    ``steps`` is a topologically ordered list of tasks from base inputs to
    the object; ``base_oids`` are the underived inputs at the fringe.
    """

    root_oid: int
    steps: tuple[Task, ...]
    base_oids: frozenset[int]

    @property
    def depth(self) -> int:
        """Longest derivation chain length (0 for base objects)."""
        if not self.steps:
            return 0
        level: dict[int, int] = {oid: 0 for oid in self.base_oids}
        for task in self.steps:
            in_level = max(
                (level.get(oid, 0) for oid in task.all_input_oids()), default=0
            )
            for oid in task.output_oids:
                level[oid] = in_level + 1
        return level.get(self.root_oid, 0)

    def processes_used(self) -> list[str]:
        """Process names along the history, in execution order."""
        return [task.process_name for task in self.steps]

    def describe(self) -> str:
        """Multi-line rendering of the derivation history."""
        lines = [f"lineage of object {self.root_oid}:"]
        if not self.steps:
            lines.append("  (base object — supplied from outside the system)")
        for task in self.steps:
            lines.append("  " + task.describe())
        return "\n".join(lines)


@dataclass
class ProvenanceBrowser:
    """Lineage queries over a :class:`TaskLog` and :class:`ClassStore`."""

    tasks: TaskLog
    store: ClassStore

    def lineage(self, oid: int) -> Lineage:
        """Full derivation history of *oid* (cycle-safe)."""
        steps: list[Task] = []
        seen_tasks: set[int] = set()
        base: set[int] = set()

        def visit(current: int, trail: tuple[int, ...]) -> None:
            if current in trail:
                raise DerivationError(
                    f"derivation cycle through object {current}"
                )
            producer = self.tasks.producer_of(current)
            if producer is None:
                base.add(current)
                return
            if producer.task_id in seen_tasks:
                return
            for input_oid in sorted(producer.all_input_oids()):
                visit(input_oid, trail + (current,))
            if producer.task_id not in seen_tasks:
                seen_tasks.add(producer.task_id)
                steps.append(producer)

        visit(oid, ())
        return Lineage(root_oid=oid, steps=tuple(steps),
                       base_oids=frozenset(base))

    def derived_from(self, oid: int) -> set[int]:
        """All objects downstream of *oid* (its derived descendants)."""
        out: set[int] = set()
        frontier = [oid]
        while frontier:
            current = frontier.pop()
            for task in self.tasks.completed():
                if current in task.all_input_oids():
                    for produced in task.output_oids:
                        if produced not in out:
                            out.add(produced)
                            frontier.append(produced)
        return out

    def same_concept_different_derivation(self, oid_a: int, oid_b: int
                                          ) -> bool:
        """True when two objects were produced by *different* processes —
        the paper's §1 scenario (NDVI change by subtraction vs. by
        division): the data cannot be meaningfully compared without
        consulting exactly this predicate."""
        task_a = self.tasks.producer_of(oid_a)
        task_b = self.tasks.producer_of(oid_b)
        name_a = task_a.process_name if task_a else None
        name_b = task_b.process_name if task_b else None
        return name_a != name_b

    def compare_derivations(self, oid_a: int, oid_b: int) -> dict[str, object]:
        """Structured comparison of two objects' derivation procedures."""
        lin_a = self.lineage(oid_a)
        lin_b = self.lineage(oid_b)
        procs_a = lin_a.processes_used()
        procs_b = lin_b.processes_used()
        return {
            "oid_a": oid_a,
            "oid_b": oid_b,
            "processes_a": procs_a,
            "processes_b": procs_b,
            "identical_procedure": procs_a == procs_b,
            "shared_base_inputs": sorted(lin_a.base_oids & lin_b.base_oids),
            "depth_a": lin_a.depth,
            "depth_b": lin_b.depth,
        }
