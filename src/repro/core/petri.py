"""Derivation nets: the paper's modified Petri nets (§2.1.6).

"Every non-primitive class ... corresponds to a place in a PN, and every
process corresponds to a transition.  Tokens in every place represent the
data objects needed for the instantiation of a process."

Three modifications distinguish a *derivation net* from a classical PN:

1. **Non-consuming firing** — data objects are permanent; firing a
   transition does not remove input tokens.  (Classical consuming
   semantics are kept available for the EXP-B ablation.)
2. **Threshold inputs** — an input arc carries the *minimum* token count
   needed; more may be used (PCA needs >= 2 images).
3. **Guarded transitions** — integrity constraints (the template
   assertions) must hold before firing; at the class level these appear
   as an optional marking guard, with full object-level checking done by
   the planner when it binds concrete objects.

Because firing is non-consuming, the reachable marking set is *monotone*:
forward closure is a least fixpoint and backward planning is AND-OR
search — both polynomial, unlike general PN reachability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..errors import DerivationError, UnderivableError
from .derivation import ProcessRegistry

__all__ = ["InputArc", "Transition", "Marking", "DerivationNet", "DerivationPlan"]

Marking = dict[str, int]


@dataclass(frozen=True)
class InputArc:
    """An input place with the minimum token threshold (modification 2)."""

    place: str
    threshold: int = 1


@dataclass(frozen=True)
class Transition:
    """A process as a net transition: input arcs, one output place, guard."""

    name: str
    inputs: tuple[InputArc, ...]
    output: str
    guard: Callable[[Mapping[str, int]], bool] | None = None

    def enabled(self, marking: Mapping[str, int]) -> bool:
        """Threshold-and-guard enabling test (modifications 2 and 3)."""
        for arc in self.inputs:
            if marking.get(arc.place, 0) < arc.threshold:
                return False
        if self.guard is not None and not self.guard(marking):
            return False
        return True


@dataclass(frozen=True)
class DerivationPlan:
    """An ordered list of transitions deriving a target place.

    ``initial_places`` is the support of the initial marking the plan
    consumes from — the answer to the paper's formulation "given a final
    marking, try to find the initial marking which can lead to this
    marking".
    """

    target: str
    steps: tuple[str, ...]
    initial_places: frozenset[str]

    @property
    def length(self) -> int:
        """Number of process firings in the plan."""
        return len(self.steps)


@dataclass
class DerivationNet:
    """The class-level derivation net."""

    _places: set[str] = field(default_factory=set)
    _transitions: dict[str, Transition] = field(default_factory=dict)

    # -- construction -----------------------------------------------------------

    def add_place(self, name: str) -> None:
        """Add a place (idempotent)."""
        self._places.add(name)

    def add_transition(self, name: str, inputs: list[InputArc | tuple[str, int]],
                       output: str,
                       guard: Callable[[Mapping[str, int]], bool] | None = None
                       ) -> Transition:
        """Add a transition; places are created implicitly."""
        if name in self._transitions:
            raise DerivationError(f"duplicate transition {name!r}")
        arcs = tuple(
            arc if isinstance(arc, InputArc) else InputArc(place=arc[0],
                                                           threshold=arc[1])
            for arc in inputs
        )
        for arc in arcs:
            if arc.threshold < 1:
                raise DerivationError(
                    f"transition {name!r}: threshold must be >= 1"
                )
            self._places.add(arc.place)
        self._places.add(output)
        transition = Transition(name=name, inputs=arcs, output=output,
                                guard=guard)
        self._transitions[name] = transition
        return transition

    @staticmethod
    def from_processes(processes: ProcessRegistry) -> "DerivationNet":
        """Build the net from every registered (primitive) process.

        Each process becomes a transition whose input arcs carry the
        argument cardinalities: a SETOF argument with minimum cardinality
        *k* yields threshold *k*; multiple arguments over the same class
        sum their thresholds (that many distinct objects are needed).
        """
        net = DerivationNet()
        for cls_name in processes.classes.names():
            net.add_place(cls_name)
        for process in processes.all_processes():
            needed: dict[str, int] = {}
            for arg in process.arguments:
                amount = arg.min_cardinality if arg.is_set else 1
                needed[arg.class_name] = needed.get(arg.class_name, 0) + amount
            net.add_transition(
                name=process.name,
                inputs=[InputArc(place=place, threshold=k)
                        for place, k in needed.items()],
                output=process.output_class,
            )
        return net

    # -- introspection -------------------------------------------------------------

    @property
    def places(self) -> set[str]:
        """All place (class) names."""
        return set(self._places)

    @property
    def transitions(self) -> dict[str, Transition]:
        """All transitions by name."""
        return dict(self._transitions)

    def transition(self, name: str) -> Transition:
        """The transition called *name*."""
        try:
            return self._transitions[name]
        except KeyError:
            raise DerivationError(f"unknown transition {name!r}") from None

    def producers_of(self, place: str) -> list[Transition]:
        """Transitions whose output is *place*."""
        return [t for t in self._transitions.values() if t.output == place]

    # -- firing ----------------------------------------------------------------------

    def fire(self, marking: Marking, transition_name: str,
             consuming: bool = False) -> Marking:
        """Fire a transition, returning the successor marking.

        ``consuming=False`` is the paper's modified semantics (tokens are
        permanent); ``consuming=True`` is the classical rule kept for the
        ablation experiment.
        """
        transition = self.transition(transition_name)
        if not transition.enabled(marking):
            raise DerivationError(
                f"transition {transition_name!r} is not enabled"
            )
        successor = dict(marking)
        if consuming:
            for arc in transition.inputs:
                successor[arc.place] = successor[arc.place] - arc.threshold
        successor[transition.output] = successor.get(transition.output, 0) + 1
        return successor

    # -- forward analysis ----------------------------------------------------------------

    #: Token count given to derivable places during closure.  A producing
    #: transition can fire repeatedly over different input combinations
    #: (tokens are permanent), so at the class level a derivable place has
    #: effectively unbounded supply; the object-level planner does the
    #: real distinct-binding check.
    PRODUCIBLE = 1 << 20

    def forward_closure(self, marking: Marking) -> Marking:
        """Least fixpoint of non-consuming firing from *marking*.

        With permanent tokens, once a transition is enabled it stays
        enabled, so a worklist pass suffices.  Derivable places are
        marked with :data:`PRODUCIBLE` tokens (see above) so thresholds
        on *derived* inputs do not block downstream transitions.
        """
        state: Marking = dict(marking)
        changed = True
        while changed:
            changed = False
            for transition in self._transitions.values():
                if state.get(transition.output, 0) >= self.PRODUCIBLE:
                    continue
                if transition.enabled(state):
                    state[transition.output] = self.PRODUCIBLE
                    changed = True
        return state

    def reachable(self, marking: Marking, target: str) -> bool:
        """Whether *target* can hold a token starting from *marking* —
        'decide if a non-existing object could be derived from existing
        data' (§2.1.6)."""
        if target not in self._places:
            raise DerivationError(f"unknown place {target!r}")
        return self.forward_closure(marking).get(target, 0) > 0

    # -- backward analysis (paper's recursive retrieval mechanism) ----------------------

    def backward_plan(self, target: str, marking: Marking) -> DerivationPlan:
        """Back-propagate requirements from *target* to marked places.

        Implements §2.1.6's recursive mechanism as AND-OR search: a place
        is satisfiable when already marked (step 1) or when *some*
        producing transition has *all* its input places satisfiable
        (step 2, applied recursively).  Returns a topologically ordered
        firing sequence; raises :class:`UnderivableError` when back
        propagation stops at unmarked base places (step 3).
        """
        if target not in self._places:
            raise DerivationError(f"unknown place {target!r}")
        # producible[place]: some producer's inputs are all satisfiable at
        # their thresholds (then the place can supply any demand — tokens
        # are permanent and firings over distinct inputs accumulate).
        producible: dict[str, bool] = {}
        chosen: dict[str, Transition] = {}
        # Order in which places were *proved* producible.  At the moment
        # producible[p] flips True, every input of chosen[p] is either
        # satisfied by the marking or was proved producible earlier, so
        # this order is a valid firing order even when the chosen tree
        # closes a cycle through the marking (e.g. a threshold-2 input
        # replenished by a feedback transition).
        proof_order: dict[str, int] = {}

        def satisfiable(place: str, required: int,
                        trail: frozenset[str]) -> bool:
            if marking.get(place, 0) >= required:
                return True
            if place in producible:
                return producible[place]
            if place in trail:
                return False  # cyclic requirement cannot bottom out
            for transition in self.producers_of(place):
                if all(
                    satisfiable(arc.place, arc.threshold, trail | {place})
                    for arc in transition.inputs
                ):
                    producible[place] = True
                    chosen[place] = transition
                    proof_order[place] = len(proof_order)
                    return True
            producible[place] = False
            return False

        if not satisfiable(target, 1, frozenset()):
            raise UnderivableError(
                f"place {target!r} is not derivable from the current marking"
            )

        # Serialize the chosen AND-tree bottom-up into a firing sequence.
        steps: list[str] = []
        emitted: set[str] = set()
        initial: set[str] = set()

        def emit(place: str, trail: frozenset[str]) -> None:
            if place in trail:
                # A cycle in the chosen tree can only close through an
                # arc the search satisfied from the marking (the trail
                # guard in `satisfiable` forbids cyclic *production*),
                # so these tokens are initial — or the producing
                # transition is already on the stack and will be
                # appended by the frame above.
                if marking.get(place, 0) > 0:
                    initial.add(place)
                return
            if marking.get(place, 0) > 0 and place not in chosen:
                initial.add(place)
                return
            transition = chosen[place]
            if transition.name in emitted:
                return
            for arc in transition.inputs:
                emit(arc.place, trail | {place})
            if transition.name not in emitted:
                emitted.add(transition.name)
                steps.append(transition.name)

        emit(target, frozenset())
        # The tree walk above finds *which* transitions are needed, but
        # its emission order can be wrong when it cuts a cycle (the
        # producer on the stack is appended after transitions that
        # consume its output).  Re-sort by proof order, which is sound.
        steps.sort(key=lambda name: proof_order[self.transition(name).output])
        return DerivationPlan(
            target=target, steps=tuple(steps), initial_places=frozenset(initial)
        )

    def replay(self, plan: DerivationPlan, marking: Marking,
               consuming: bool = False) -> Marking:
        """Execute a plan's firing sequence from *marking*.

        A plan step is an *instruction to derive via that process*, not a
        single firing: when a later step's threshold demands more tokens
        of the step's output than currently exist, the step fires
        repeatedly (the object-level planner realizes this as distinct
        input bindings).  Used by tests to show plans are valid under
        non-consuming semantics, and by the EXP-B ablation to show the
        same plans can fail under classical consuming semantics when an
        input is reused.
        """
        state = dict(marking)
        for position, step in enumerate(plan.steps):
            output = self.transition(step).output
            demand = 1 if output == plan.target else 0
            for later in plan.steps[position + 1:]:
                for arc in self.transition(later).inputs:
                    if arc.place == output:
                        demand = max(demand, arc.threshold)
            firings = max(demand - state.get(output, 0), 1)
            for _ in range(firings):
                state = self.fire(state, step, consuming=consuming)
        return state

    def initial_marking_for(self, target: str, marking: Marking) -> Marking:
        """'Given a final marking, try to find the initial marking which
        can lead to this marking' — the support of *marking* restricted to
        the places a plan for *target* actually draws from, with the token
        counts the thresholds require."""
        plan = self.backward_plan(target, marking)
        needed: Marking = {}
        if target in plan.initial_places:
            # The target itself was already stored: the "initial marking"
            # is simply one token there.
            needed[target] = 1
        for step in plan.steps:
            for arc in self.transition(step).inputs:
                if arc.place in plan.initial_places:
                    needed[arc.place] = max(needed.get(arc.place, 0),
                                            arc.threshold)
        return needed
