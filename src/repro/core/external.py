"""Non-applicative and non-local derivations (paper §5 future work).

Two long-term extensions the paper names:

* "The need to deal with **processes that are not locally available**
  will be essential in the future."  :class:`RemoteSite` simulates a
  peer Gaea installation holding process definitions and an operator
  registry of its own; :class:`RemoteExecutor` ships input objects to
  the site, executes there, and records the task locally with site
  attribution — so lineage stays complete even when computation was
  elsewhere.
* "A process may in general be **non-applicative**, that is ... described
  by experimental procedures that do not follow a well known algorithm."
  :func:`record_external_derivation` registers the *outcome* of such a
  procedure (a wet-lab protocol, a manual digitization, a field survey)
  together with a textual procedure description: the derivation
  relationship is captured for browsing and comparison even though the
  system cannot re-execute it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import TaskExecutionError, UnknownProcessError
from .derivation import Bindings, Process
from .manager import DerivationManager, DerivationResult

__all__ = ["RemoteSite", "RemoteExecutor", "record_external_derivation",
           "EXTERNAL_MARKER"]

#: Parameter key marking a task as non-applicative (externally derived).
EXTERNAL_MARKER = "__external_procedure__"

#: Parameter key recording which site executed a remote task.
SITE_MARKER = "__executed_at__"


# ---------------------------------------------------------------------------
# Non-local processes
# ---------------------------------------------------------------------------


@dataclass
class RemoteSite:
    """A peer installation offering processes for remote execution.

    The simulation keeps the properties that matter to the metadata
    manager: the site has its own process registry and operator registry,
    objects must be *shipped* (values copied, not referenced), and every
    call pays a latency the statistics expose.
    """

    name: str
    operators: Any  # OperatorRegistry; typed loosely to avoid cycle
    _processes: dict[str, Process] = field(default_factory=dict)
    latency_ms: float = 5.0
    calls: int = 0
    bytes_shipped: int = 0

    def publish(self, process: Process) -> None:
        """Make *process* invocable by remote clients."""
        if process.name in self._processes:
            raise UnknownProcessError(
                f"site {self.name!r} already publishes {process.name!r}"
            )
        self._processes[process.name] = process

    def offered(self) -> list[str]:
        """Names of processes this site offers."""
        return list(self._processes)

    def get(self, process_name: str) -> Process:
        """The published process called *process_name*."""
        try:
            return self._processes[process_name]
        except KeyError:
            raise UnknownProcessError(
                f"site {self.name!r} does not offer {process_name!r}"
            ) from None

    def execute(self, process_name: str, bindings: Bindings
                ) -> dict[str, Any]:
        """Run a published process over shipped inputs; returns the
        output attribute values."""
        from ..storage.tuples import estimate_size

        process = self.get(process_name)
        self.calls += 1
        for bound in bindings.values():
            objs = bound if isinstance(bound, list) else [bound]
            for obj in objs:
                self.bytes_shipped += estimate_size(tuple(obj.values.values()))
        return process.evaluate(bindings, self.operators)


@dataclass
class RemoteExecutor:
    """Client-side façade: execute a site's process, record locally."""

    manager: DerivationManager
    sites: dict[str, RemoteSite] = field(default_factory=dict)

    def register_site(self, site: RemoteSite) -> None:
        """Attach a remote site."""
        if site.name in self.sites:
            raise UnknownProcessError(f"site {site.name!r} already known")
        self.sites[site.name] = site

    def sites_offering(self, process_name: str) -> list[str]:
        """Names of sites that publish *process_name*."""
        return [
            name for name, site in self.sites.items()
            if process_name in site.offered()
        ]

    def execute_remote(self, site_name: str, process_name: str,
                       bindings: Bindings) -> DerivationResult:
        """Execute a remote process; the result object and task land in
        the *local* store with site attribution."""
        try:
            site = self.sites[site_name]
        except KeyError:
            raise UnknownProcessError(f"unknown site {site_name!r}") from None
        process = site.get(process_name)
        if process.output_class not in self.manager.classes:
            raise UnknownProcessError(
                f"remote process {process_name!r} outputs "
                f"{process.output_class!r}, which is not defined locally"
            )
        attributes = site.execute(process_name, bindings)
        output = self.manager.store.store(process.output_class, attributes)
        task = self.manager.tasks.record(
            process_name, bindings, output_oids=(output.oid,),
            parameters={**process.parameters, SITE_MARKER: site_name},
        )
        return DerivationResult(output=output, task=task, reused=False)


# ---------------------------------------------------------------------------
# Non-applicative processes
# ---------------------------------------------------------------------------


def record_external_derivation(manager: DerivationManager,
                               procedure: str,
                               inputs: Bindings,
                               output_class: str,
                               output_values: dict[str, Any],
                               ) -> DerivationResult:
    """Register the outcome of a non-applicative procedure.

    *procedure* is the free-text description of how *output_values* were
    obtained from *inputs* (e.g. "visual interpretation of air photos by
    J. Doe, 1991 protocol").  The object is stored, the derivation
    relationship recorded as a task tagged :data:`EXTERNAL_MARKER`, and
    lineage/compare work as usual — only re-execution is impossible,
    which :meth:`DerivationManager.reproduce_task` reports explicitly.
    """
    if not procedure.strip():
        raise TaskExecutionError(
            "an external derivation needs a procedure description"
        )
    manager.classes.get(output_class)
    output = manager.store.store(output_class, output_values)
    task = manager.tasks.record(
        f"external:{procedure.splitlines()[0][:40]}",
        inputs, output_oids=(output.oid,),
        parameters={EXTERNAL_MARKER: procedure},
    )
    return DerivationResult(output=output, task=task, reused=False)


def is_external(task) -> bool:
    """Whether a task records a non-applicative derivation."""
    return EXTERNAL_MARKER in task.parameters
