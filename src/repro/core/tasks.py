"""Tasks: object-level derivation records (paper §2.1.2, §2.1.5).

"The instantiation of a process with input data objects is called a task.
Every task will generate a set of objects (most of the time just one) for
the output class."  Tasks are the object-level half of the derivation
relationship: the class level is a template (a *process*), the data-object
level "will record the actual derivation relationship among data objects".

The :class:`TaskLog` keeps every task ever run (Gaea never forgets a
derivation) and supports memoization: re-deriving the same process over
the same inputs returns the recorded result instead of recomputing —
"experiment management also helps avoid unnecessary duplication of
experiments" (paper §1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterator

from ..errors import TaskExecutionError
from .derivation import Bindings

__all__ = ["TaskStatus", "Task", "TaskLog", "bindings_key"]


class TaskStatus(Enum):
    """Lifecycle of a task."""

    COMPLETED = "completed"
    FAILED = "failed"


def bindings_key(process_name: str, bindings: Bindings) -> tuple:
    """A hashable identity for (process, input objects).

    Input objects are identified by oid; SETOF arguments are order
    insensitive (a set of bands is a set).  Process parameters do not
    appear because they are part of process identity already (§2.1.2).
    """
    parts: list[tuple[str, tuple[int, ...]]] = []
    for arg_name in sorted(bindings):
        bound = bindings[arg_name]
        if isinstance(bound, list):
            oids = tuple(sorted(obj.oid for obj in bound))
        else:
            oids = (bound.oid,)
        parts.append((arg_name, oids))
    return (process_name, tuple(parts))


@dataclass(frozen=True)
class Task:
    """One recorded process instantiation."""

    task_id: int
    process_name: str
    input_oids: dict[str, tuple[int, ...]]  # argument name -> bound oids
    output_oids: tuple[int, ...]
    status: TaskStatus
    error: str = ""
    parameters: dict[str, Any] = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        """True for completed tasks."""
        return self.status is TaskStatus.COMPLETED

    def all_input_oids(self) -> set[int]:
        """Every input oid across all arguments."""
        out: set[int] = set()
        for oids in self.input_oids.values():
            out |= set(oids)
        return out

    def describe(self) -> str:
        """One-line human-readable record."""
        ins = ", ".join(
            f"{name}={list(oids)}" for name, oids in sorted(self.input_oids.items())
        )
        return (
            f"task #{self.task_id}: {self.process_name}({ins}) -> "
            f"{list(self.output_oids)} [{self.status.value}]"
        )


@dataclass
class TaskLog:
    """Append-only log of every task, with memoization lookup."""

    _tasks: list[Task] = field(default_factory=list)
    _ids: Iterator[int] = field(default_factory=lambda: itertools.count(1))
    _memo: dict[tuple, int] = field(default_factory=dict)  # key -> task_id
    _by_output: dict[int, int] = field(default_factory=dict)  # oid -> task_id

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def record(self, process_name: str, bindings: Bindings,
               output_oids: tuple[int, ...],
               parameters: dict[str, Any] | None = None) -> Task:
        """Record a successful task."""
        input_oids = _bindings_to_oids(bindings)
        task = Task(
            task_id=next(self._ids),
            process_name=process_name,
            input_oids=input_oids,
            output_oids=output_oids,
            status=TaskStatus.COMPLETED,
            parameters=dict(parameters or {}),
        )
        self._tasks.append(task)
        self._memo[bindings_key(process_name, bindings)] = task.task_id
        for oid in output_oids:
            self._by_output[oid] = task.task_id
        return task

    def record_failure(self, process_name: str, bindings: Bindings,
                       error: str) -> Task:
        """Record a failed instantiation (failures are knowledge too)."""
        task = Task(
            task_id=next(self._ids),
            process_name=process_name,
            input_oids=_bindings_to_oids(bindings),
            output_oids=(),
            status=TaskStatus.FAILED,
            error=error,
        )
        self._tasks.append(task)
        return task

    def get(self, task_id: int) -> Task:
        """The task with the given id."""
        for task in self._tasks:
            if task.task_id == task_id:
                return task
        raise TaskExecutionError(f"unknown task id {task_id}")

    def find_memoized(self, process_name: str, bindings: Bindings
                      ) -> Task | None:
        """A previously completed task for the same (process, inputs)."""
        task_id = self._memo.get(bindings_key(process_name, bindings))
        return None if task_id is None else self.get(task_id)

    def producer_of(self, oid: int) -> Task | None:
        """The task that produced object *oid* (None for base objects)."""
        task_id = self._by_output.get(oid)
        return None if task_id is None else self.get(task_id)

    def tasks_of_process(self, process_name: str) -> list[Task]:
        """All tasks instantiating *process_name*."""
        return [t for t in self._tasks if t.process_name == process_name]

    def completed(self) -> list[Task]:
        """All successful tasks."""
        return [t for t in self._tasks if t.succeeded]

    def failed(self) -> list[Task]:
        """All failed tasks."""
        return [t for t in self._tasks if not t.succeeded]


def _bindings_to_oids(bindings: Bindings) -> dict[str, tuple[int, ...]]:
    out: dict[str, tuple[int, ...]] = {}
    for name, bound in bindings.items():
        if isinstance(bound, list):
            out[name] = tuple(obj.oid for obj in bound)
        else:
            out[name] = (bound.oid,)
    return out
