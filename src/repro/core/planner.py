"""The retrieval planner: retrieve → interpolate → derive (paper §2.1.5).

"The execution of a database query which involves the retrieval of a
derived spatio-temporal concept is performed according to the following
sequence: 1. direct data retrieval ... 2. data interpolation ... 3. data
are computed, based on a derivation relationship.  Steps 2 and 3 are
prioritized according to the user's needs."

:class:`RetrievalPlanner` implements exactly that: direct retrieval
always wins; the order of the two fallbacks is configurable.  Derivation
uses the Petri-net back-propagation plan at the class level
(:meth:`~repro.core.petri.DerivationNet.backward_plan`) and then binds
actual objects to each planned process, executing through the derivation
manager so every firing leaves a task record.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..errors import AssertionViolatedError, DerivationError, UnderivableError
from ..spatial.box import Box
from ..temporal.abstime import AbsTime
from .classes import SciObject, matches_extents, matches_predicates
from .derivation import Bindings, CardinalityAssertion, Process
from .interpolation import InterpolationError, TemporalInterpolator
from .manager import DerivationManager
from .tasks import Task

__all__ = ["RetrievalPlanner", "RetrievalResult", "RetrievalPath",
           "MarkingCache"]

RetrievalPath = str  # "retrieve" | "interpolate" | "derive"

_DEFAULT_FALLBACKS: tuple[str, ...] = ("interpolate", "derive")

#: Shared per-class stored-supply counts, keyed by
#: ``(class_name, str(spatial), str(temporal))``.  One query execution
#: (e.g. a concept union over several derivable members) passes the same
#: cache to every derivation so the backward-planning marking probes run
#: once per input class instead of once per member; the cache must be
#: cleared whenever a derivation actually fires (stored supply changed).
MarkingCache = dict


@dataclass(frozen=True)
class RetrievalResult:
    """Outcome of a planned retrieval."""

    objects: tuple[SciObject, ...]
    path: RetrievalPath
    tasks: tuple[Task, ...] = ()
    plan_steps: tuple[str, ...] = ()

    @property
    def object(self) -> SciObject:
        """The single result object (error when empty or plural)."""
        if len(self.objects) != 1:
            raise DerivationError(
                f"expected exactly one object, have {len(self.objects)}"
            )
        return self.objects[0]


@dataclass
class RetrievalPlanner:
    """Executes the §2.1.5 retrieval sequence over a derivation manager."""

    manager: DerivationManager
    interpolator: TemporalInterpolator = field(
        default_factory=TemporalInterpolator
    )
    fallback_order: tuple[str, ...] = _DEFAULT_FALLBACKS
    time_tolerance_days: int = 0

    def __post_init__(self) -> None:
        bad = set(self.fallback_order) - {"interpolate", "derive"}
        if bad:
            raise DerivationError(f"unknown fallback step(s): {sorted(bad)}")

    # -- the public entry point -------------------------------------------------

    def retrieve(self, class_name: str,
                 spatial: Box | None = None,
                 temporal: AbsTime | None = None,
                 spatial_coverage: bool = False,
                 filters: tuple[tuple[str, Any], ...] = (),
                 ranges: tuple[tuple[str, str, Any], ...] = ()
                 ) -> RetrievalResult:
        """Fetch objects of *class_name* matching the extent predicates,
        generating them when they are not stored.

        With ``spatial_coverage`` the spatial predicate demands an object
        whose extent *contains* the query box (not merely overlaps it);
        partial neighbours are then combined by spatial interpolation
        (mosaicking) — the "temporal or spatial" interpolation of §2.1.5.

        *filters* (attribute equalities) and *ranges* (attribute
        comparisons) are pushed down into the store's access-path
        machinery, so a selective predicate rides an attribute B-tree
        instead of filtering a full scan.  They do not trigger the
        interpolate/derive fallbacks: when extent-matching objects exist
        but the predicates reject them all, the answer is an empty direct
        retrieval — exactly what post-filtering produced before pushdown.
        """
        cls = self.manager.classes.get(class_name)
        store = self.manager.store
        filters, ranges = store.normalize_predicates(cls, filters, ranges)

        # Step 1: direct retrieval — ONE stored-data scan, counting both
        # extent matches and predicate survivors as it streams, so the
        # fallback decision below never re-reads the relation.
        path = store.choose_path(class_name, spatial=spatial,
                                 temporal=temporal, filters=filters,
                                 ranges=ranges)
        extent_matches = 0
        found: list[SciObject] = []
        for obj in store.iter_scan(class_name, spatial=spatial,
                                   temporal=temporal, filters=filters,
                                   ranges=ranges, access_path=path):
            if not matches_extents(obj, cls, spatial, temporal,
                                   spatial_coverage=spatial_coverage):
                continue
            extent_matches += 1
            if matches_predicates(obj, filters, ranges):
                found.append(obj)
        if found:
            return RetrievalResult(objects=tuple(found), path="retrieve")
        if filters or ranges:
            # An attribute-driven index probe prunes the stream by the
            # predicates themselves, so its emptiness says nothing about
            # the extents; a short-circuiting existence probe settles it.
            covered = extent_matches > 0 if path.observes_extents \
                else self._extents_covered(cls, class_name, spatial,
                                           temporal, spatial_coverage)
            if covered:
                # Stored data covers the extents; the attribute
                # predicates filtered everything out.  Fallbacks are for
                # missing *data*, not for unsatisfied predicates.
                return RetrievalResult(objects=(), path="retrieve")

        return self.run_fallbacks(
            class_name, spatial, temporal,
            spatial_coverage=spatial_coverage,
            filters=filters, ranges=ranges,
            known_empty=True,
        )

    def run_fallbacks(self, class_name: str,
                      spatial: Box | None, temporal: AbsTime | None,
                      spatial_coverage: bool = False,
                      filters: tuple[tuple[str, Any], ...] = (),
                      ranges: tuple[tuple[str, str, Any], ...] = (),
                      known_empty: bool = False,
                      marking_cache: MarkingCache | None = None
                      ) -> RetrievalResult:
        """Steps 2–3 of §2.1.5 in the configured fallback order.

        With *known_empty* the caller asserts that no stored object of
        *class_name* matches the query extents (it has already executed
        the stored-data scan), letting the derivation step skip its own
        re-scans of the target relation.  Normalized attribute
        predicates are re-applied to whatever the fallbacks produce.
        """
        cls = self.manager.classes.get(class_name)

        def filtered(result: RetrievalResult) -> RetrievalResult:
            """Apply pushed predicates to fallback-produced objects."""
            if not (filters or ranges):
                return result
            kept = tuple(
                obj for obj in result.objects
                if matches_predicates(obj, filters, ranges)
            )
            return RetrievalResult(objects=kept, path=result.path,
                                   tasks=result.tasks,
                                   plan_steps=result.plan_steps)

        errors: list[str] = []
        for step in self.fallback_order:
            try:
                if step == "interpolate":
                    if temporal is not None and cls.temporal_attr is not None:
                        try:
                            return filtered(self._interpolate(
                                class_name, spatial, temporal))
                        except InterpolationError as exc:
                            if not (spatial_coverage and spatial is not None):
                                raise
                            errors.append(f"interpolate(temporal): {exc}")
                    if spatial_coverage and spatial is not None:
                        return filtered(self._interpolate_spatial(
                            class_name, spatial, temporal))
                    continue
                return filtered(self._derive(
                    class_name, spatial, temporal,
                    spatial_coverage=spatial_coverage,
                    known_empty=known_empty,
                    marking_cache=marking_cache))
            except (InterpolationError, UnderivableError,
                    AssertionViolatedError) as exc:
                errors.append(f"{step}: {exc}")
        raise UnderivableError(
            f"cannot satisfy query on {class_name!r}"
            + (f" ({'; '.join(errors)})" if errors else "")
        )

    def _extents_covered(self, cls, class_name: str,
                         spatial: Box | None, temporal: AbsTime | None,
                         spatial_coverage: bool) -> bool:
        """Whether stored data (ignoring attribute predicates) satisfies
        the extent requirements of this retrieval.

        Under *spatial_coverage* the direct path keeps only objects
        whose extent *contains* the query box, so mere overlap must not
        count as coverage — otherwise overlapping partial neighbours
        would suppress the mosaic-interpolation fallback.
        """
        if spatial_coverage and spatial is not None \
                and cls.spatial_attr is not None:
            return any(
                obj[cls.spatial_attr].contains(spatial)
                for obj in self.manager.store.iter_find(
                    class_name, spatial=spatial, temporal=temporal)
            )
        return self.manager.store.exists(class_name, spatial=spatial,
                                         temporal=temporal)

    def interpolate(self, class_name: str,
                    spatial: Box | None = None,
                    temporal: AbsTime | None = None) -> RetrievalResult:
        """Force the temporal-interpolation path (§2.1.5 step 2).

        The public entry point the ``Interpolate`` physical operator
        drives; raises :class:`InterpolationError` when the class has no
        temporal extent, the query no timestamp, or no snapshots bracket
        it.
        """
        cls = self.manager.classes.get(class_name)
        if temporal is None:
            raise InterpolationError(
                f"retrieval of {class_name!r} has no timestamp to "
                "interpolate at"
            )
        if cls.temporal_attr is None:
            raise InterpolationError(
                f"class {class_name!r} has no temporal extent"
            )
        return self._interpolate(class_name, spatial, temporal)

    def derive(self, class_name: str,
               spatial: Box | None = None,
               temporal: AbsTime | None = None,
               spatial_coverage: bool = False,
               known_empty: bool = False,
               marking_cache: MarkingCache | None = None
               ) -> RetrievalResult:
        """Force the derivation path, skipping direct retrieval.

        The public face of the §2.1.5 step-3 machinery, used by the
        ``DERIVE`` statement and the ``Derive`` physical operator:
        recompute the objects through the derivation net even when
        matching data is already stored.  See :meth:`run_fallbacks` for
        *known_empty* and *marking_cache*.
        """
        return self._derive(class_name, spatial, temporal,
                            spatial_coverage=spatial_coverage,
                            known_empty=known_empty,
                            marking_cache=marking_cache)

    # -- step 2: interpolation ------------------------------------------------------

    def _interpolate(self, class_name: str, spatial: Box | None,
                     temporal: AbsTime) -> RetrievalResult:
        # Like derivation, interpolation stores its output and wants the
        # latest committed brackets — suspend any reader pin.
        with self.manager.store.write_view():
            return self._interpolate_live(class_name, spatial, temporal)

    def _interpolate_live(self, class_name: str, spatial: Box | None,
                          temporal: AbsTime) -> RetrievalResult:
        cls = self.manager.classes.get(class_name)
        relation = self.manager.store.relation_for(class_name)
        timeline = self.manager.store.engine.timeline_of(relation)
        before_t, after_t = timeline.bracketing(temporal)
        if before_t is None or after_t is None:
            raise InterpolationError(
                f"no snapshots bracket {temporal} in {class_name!r}"
            )

        def matching(at: AbsTime) -> list[SciObject]:
            return self.manager.store.find(class_name, spatial=spatial,
                                           temporal=at)

        candidates_lo = matching(before_t)
        candidates_hi = matching(after_t)
        if not candidates_lo or not candidates_hi:
            raise InterpolationError(
                f"bracketing snapshots of {class_name!r} do not cover the "
                "requested region"
            )
        values = self.interpolator.interpolate(
            cls, candidates_lo[0], candidates_hi[0], temporal
        )
        obj = self.manager.store.store(class_name, values)
        # Interpolation is itself a derivation (§2.1.5: "a generic
        # derivation process"), so it leaves a task record too.
        task = self.manager.tasks.record(
            "interpolate-temporal",
            {"before": candidates_lo[0], "after": candidates_hi[0]},
            output_oids=(obj.oid,),
            parameters={"__interpolation__": "temporal",
                        "target": str(temporal)},
        )
        return RetrievalResult(objects=(obj,), path="interpolate",
                               tasks=(task,))

    def _interpolate_spatial(self, class_name: str, region: Box,
                             temporal: AbsTime | None) -> RetrievalResult:
        """Spatial interpolation: mosaic partial neighbours over *region*.

        Requires an image-typed ``data`` attribute; every other
        non-extent attribute must agree across the pieces.
        """
        with self.manager.store.write_view():
            return self._interpolate_spatial_live(class_name, region,
                                                  temporal)

    def _interpolate_spatial_live(self, class_name: str, region: Box,
                                  temporal: AbsTime | None
                                  ) -> RetrievalResult:
        from ..gis.mosaic import covers, mosaic

        cls = self.manager.classes.get(class_name)
        if cls.spatial_attr is None:
            raise InterpolationError(
                f"class {class_name!r} has no spatial extent"
            )
        if "data" not in cls.attribute_names \
                or cls.type_of("data") != "image":
            raise InterpolationError(
                f"class {class_name!r} has no image 'data' attribute to "
                "mosaic"
            )
        candidates = self.manager.store.find(class_name, spatial=region,
                                             temporal=temporal)
        extents = [obj[cls.spatial_attr] for obj in candidates]
        if not covers(extents, region):
            raise InterpolationError(
                f"stored {class_name!r} objects do not jointly cover the "
                "requested region"
            )
        pieces = [
            (obj["data"], obj[cls.spatial_attr]) for obj in candidates
        ]
        values: dict[str, object] = {"data": mosaic(pieces, region)}
        values[cls.spatial_attr] = region
        for attr, _ in cls.attributes:
            if attr in ("data", cls.spatial_attr):
                continue
            first = candidates[0][attr]
            if any(obj[attr] != first for obj in candidates[1:]):
                raise InterpolationError(
                    f"attribute {attr!r} differs across mosaic pieces"
                )
            values[attr] = first
        obj = self.manager.store.store(class_name, values)
        task = self.manager.tasks.record(
            "interpolate-spatial",
            {"pieces": candidates},
            output_oids=(obj.oid,),
            parameters={"__interpolation__": "spatial",
                        "region": str(region)},
        )
        return RetrievalResult(objects=(obj,), path="interpolate",
                               tasks=(task,))

    # -- step 3: derivation ------------------------------------------------------------

    def _derive(self, class_name: str, spatial: Box | None,
                temporal: AbsTime | None,
                spatial_coverage: bool = False,
                known_empty: bool = False,
                marking_cache: MarkingCache | None = None
                ) -> RetrievalResult:
        # Derivation stores objects and re-reads them mid-flight; a
        # reader's pinned snapshot must not apply inside (it would hide
        # what the net just fired).  The pin is restored on return.
        with self.manager.store.write_view():
            return self._derive_live(
                class_name, spatial, temporal,
                spatial_coverage=spatial_coverage,
                known_empty=known_empty, marking_cache=marking_cache,
            )

    def _derive_live(self, class_name: str, spatial: Box | None,
                     temporal: AbsTime | None,
                     spatial_coverage: bool = False,
                     known_empty: bool = False,
                     marking_cache: MarkingCache | None = None
                     ) -> RetrievalResult:
        cls = self.manager.classes.get(class_name)

        def matching_target() -> list[SciObject]:
            objs = self.manager.store.find(class_name, spatial=spatial,
                                           temporal=temporal)
            if spatial_coverage and spatial is not None \
                    and cls.spatial_attr is not None:
                objs = [o for o in objs
                        if o[cls.spatial_attr].contains(spatial)]
            return objs

        net = self.manager.derivation_net()
        # The target is counted strictly against the query extents;
        # inputs use the lenient candidate rule of `_candidates_for`.
        # With `known_empty` the caller has already executed the
        # stored-data scan and found nothing at these extents, so the
        # target count is known without touching the relation again.
        known = {class_name: 0} if known_empty else None
        marking = self._query_marking(spatial, temporal, known=known,
                                      cache=marking_cache)
        if not known_empty:
            marking[class_name] = len(matching_target())
        plan = net.backward_plan(class_name, marking)
        # Demand per class: the largest threshold any planned consumer
        # places on it (the target itself needs one object).  A step is
        # fired enough times, over distinct bindings, to close the gap
        # between stored supply and demand — the object-level realization
        # of the net's threshold semantics (§2.1.6 modification 2).
        demand: dict[str, int] = {class_name: 1}
        for step_name in plan.steps:
            for arc in net.transition(step_name).inputs:
                demand[arc.place] = max(demand.get(arc.place, 0),
                                        arc.threshold)
        tasks: list[Task] = []
        target_outputs: list[SciObject] = []
        for process_name in plan.steps:
            process = self.manager.processes.get(process_name)
            out_cls = process.output_class
            if known_empty and out_cls == class_name and temporal is None:
                # The caller's scan found nothing at these extents with
                # no timestamp restriction — the any-time supply check
                # below would re-read the same emptiness.
                existing: list[SciObject] = []
            else:
                existing = self.manager.store.find(
                    out_cls, spatial=spatial, temporal=None
                )
            needed = max(demand.get(out_cls, 1) - len(existing), 1)
            results = self._execute_with_search(
                process, spatial, temporal, count=needed,
                exclude_oids={obj.oid for obj in existing},
            )
            tasks.extend(r.task for r in results)
            if out_cls == class_name:
                target_outputs.extend(r.output for r in results)
        if marking_cache is not None and tasks:
            # Firing changed stored supply; cached counts are stale.
            marking_cache.clear()
        if known_empty:
            # Nothing was stored at these extents before firing, so the
            # answer is exactly the fired outputs that match them — no
            # re-scan of the relation needed.
            produced = [
                obj for obj in target_outputs
                if matches_extents(obj, cls, spatial, temporal,
                                   spatial_coverage=spatial_coverage)
            ]
        else:
            produced = matching_target()
        if not produced:
            # The derivation ran but its output does not match the
            # requested extents (e.g. inputs covered a different region).
            raise UnderivableError(
                f"derivation of {class_name!r} produced no object matching "
                "the requested extents"
            )
        return RetrievalResult(
            objects=tuple(produced), path="derive", tasks=tuple(tasks),
            plan_steps=plan.steps,
        )

    _MAX_BINDING_ATTEMPTS = 64

    def _execute_with_search(self, process: Process, spatial: Box | None,
                             temporal: AbsTime | None, count: int = 1,
                             exclude_oids: set[int] | None = None):
        """Execute *process* *count* times over distinct bindings.

        The first binding option is the natural one (earliest objects).
        When template assertions reject a combination — e.g. the same
        scene bound to both the red and NIR argument of an NDVI process —
        alternatives are tried, bounded by ``_MAX_BINDING_ATTEMPTS``.
        Results whose outputs duplicate each other or fall in
        *exclude_oids* (pre-existing supply) do not count toward *count*.
        """
        results = []
        produced_oids: set[int] = set(exclude_oids or set())
        last_error: AssertionViolatedError | None = None
        for attempt, bindings in enumerate(
            self._binding_options(process, spatial, temporal)
        ):
            if attempt >= self._MAX_BINDING_ATTEMPTS or len(results) >= count:
                break
            try:
                result = self.manager.execute_process(process.name, bindings)
            except AssertionViolatedError as exc:
                last_error = exc
                continue
            if result.output.oid in produced_oids:
                continue
            produced_oids.add(result.output.oid)
            results.append(result)
        if len(results) >= count:
            return results
        if not results and last_error is not None:
            raise last_error
        raise UnderivableError(
            f"process {process.name!r}: needed {count} distinct "
            f"derivations, achieved {len(results)}"
        )

    def _query_marking(self, spatial: Box | None,
                       temporal: AbsTime | None,
                       known: dict[str, int] | None = None,
                       cache: MarkingCache | None = None) -> dict[str, int]:
        """Class-level marking restricted to the query extents.

        Mirrors :meth:`_candidates_for`: exact temporal matches are
        preferred, falling back to any stored object when none match —
        derivations may legitimately consume inputs at other timestamps
        (e.g. a change process spanning years).

        *known* supplies counts the caller has already established
        (classes it just scanned), and *cache* shares per-class counts
        across derivations of one query execution — a concept union
        whose members share input classes probes each input once.
        """
        marking: dict[str, int] = {}
        extent_key = (str(spatial), str(temporal))
        for name in self.manager.classes.names():
            if known is not None and name in known:
                marking[name] = known[name]
                continue
            cache_key = (name, extent_key)
            if cache is not None and cache_key in cache:
                marking[name] = cache[cache_key]
                continue
            cls = self.manager.classes.get(name)
            objs = self.manager.store.find(
                name, spatial=spatial if cls.spatial_attr else None,
            )
            if temporal is not None and cls.temporal_attr is not None:
                exact = [
                    obj for obj in objs
                    if abs(obj[cls.temporal_attr].days - temporal.days)
                    <= self.time_tolerance_days
                ]
                objs = exact or objs
            marking[name] = len(objs)
            if cache is not None:
                cache[cache_key] = marking[name]
        return marking

    def _candidates_for(self, arg, spatial: Box | None,
                        temporal: AbsTime | None) -> list[SciObject]:
        arg_cls = self.manager.classes.get(arg.class_name)
        candidates = self.manager.store.find(
            arg.class_name,
            spatial=spatial if arg_cls.spatial_attr else None,
            temporal=None,
        )
        if temporal is not None and arg_cls.temporal_attr is not None:
            exact = [
                obj for obj in candidates
                if abs(obj[arg_cls.temporal_attr].days - temporal.days)
                <= self.time_tolerance_days
            ]
            candidates = exact or candidates
        candidates.sort(key=lambda obj: obj.oid)
        return candidates

    def _binding_options(self, process: Process, spatial: Box | None,
                         temporal: AbsTime | None) -> Iterator[Bindings]:
        """Lazily enumerate candidate binding combinations.

        Scalar arguments iterate over their candidates (earliest first);
        two scalar arguments of the same class never receive the same
        object.  SETOF arguments take the exact count the template
        demands, sliding a window over the candidates when the first
        choice is rejected.
        """
        per_arg: list[list[object]] = []
        for arg in process.arguments:
            candidates = self._candidates_for(arg, spatial, temporal)
            if not candidates:
                raise UnderivableError(
                    f"no stored objects of {arg.class_name!r} to bind "
                    f"argument {arg.name!r} of {process.name!r}"
                )
            if arg.is_set:
                count = self._set_cardinality(process, arg.name)
                if count is None:
                    options: list[object] = [candidates]
                else:
                    if len(candidates) < count:
                        raise UnderivableError(
                            f"argument {arg.name!r} of {process.name!r} "
                            f"needs {count} objects, found {len(candidates)}"
                        )
                    options = [
                        list(combo)
                        for combo in itertools.islice(
                            itertools.combinations(candidates, count), 16
                        )
                    ]
            else:
                options = list(candidates[:8])
            per_arg.append(options)

        names = [arg.name for arg in process.arguments]
        scalar_class = {
            arg.name: arg.class_name
            for arg in process.arguments if not arg.is_set
        }
        for combo in itertools.product(*per_arg):
            bindings = dict(zip(names, combo))
            # Distinctness: same-class scalar arguments get distinct oids.
            seen: dict[str, set[int]] = {}
            ok = True
            for name, bound in bindings.items():
                if name in scalar_class:
                    cls = scalar_class[name]
                    oid = bound.oid  # type: ignore[union-attr]
                    if oid in seen.setdefault(cls, set()):
                        ok = False
                        break
                    seen[cls].add(oid)
            if ok:
                yield bindings

    @staticmethod
    def _set_cardinality(process: Process, arg_name: str) -> int | None:
        """Exact SETOF cardinality demanded by the template, if any."""
        for assertion in process.assertions:
            if isinstance(assertion, CardinalityAssertion) \
                    and assertion.arg == arg_name and assertion.exact:
                return assertion.count
        return None

    # -- diagnostics ---------------------------------------------------------------------

    def explain(self, class_name: str,
                spatial: Box | None = None,
                temporal: AbsTime | None = None,
                filters: tuple[tuple[str, Any], ...] = (),
                ranges: tuple[tuple[str, str, Any], ...] = (),
                projection: tuple[str, ...] = ()
                ) -> dict[str, object]:
        """Describe, without side effects, which path a retrieval would
        take — used by the optimizer and by EXP-A.

        Besides the §2.1.5 path the report carries ``access``: the
        cost-based physical access path a direct retrieval would stream
        from (index probe vs. full scan), with its estimates.
        """
        cls = self.manager.classes.get(class_name)
        access = self.manager.store.choose_path(
            class_name, spatial=spatial, temporal=temporal,
            filters=filters, ranges=ranges, projection=projection,
        )
        matches = sum(1 for _ in self.manager.store.iter_find(
            class_name, spatial=spatial, temporal=temporal,
            filters=filters, ranges=ranges, access_path=access,
        ))
        if matches:
            return {"path": "retrieve", "matches": matches,
                    "access": access.describe()}
        if (filters or ranges) and self.manager.store.exists(
                class_name, spatial=spatial, temporal=temporal):
            return {"path": "retrieve", "matches": 0,
                    "access": access.describe()}
        for step in self.fallback_order:
            if step == "interpolate" and temporal is not None \
                    and cls.temporal_attr is not None:
                relation = self.manager.store.relation_for(class_name)
                timeline = self.manager.store.engine.timeline_of(relation)
                before_t, after_t = timeline.bracketing(temporal)
                if before_t is not None and after_t is not None:
                    return {
                        "path": "interpolate",
                        "bracket": (str(before_t), str(after_t)),
                        "access": access.describe(),
                    }
            if step == "derive":
                net = self.manager.derivation_net()
                marking = self._query_marking(spatial, temporal)
                marking[class_name] = 0  # no stored object matched
                try:
                    plan = net.backward_plan(class_name, marking)
                except UnderivableError:
                    continue
                return {"path": "derive", "plan": list(plan.steps),
                        "access": access.describe()}
        return {"path": "unsatisfiable", "access": access.describe()}
