"""Derivation diagrams: rendering nets and lineages for browsing.

The paper's conclusion names three uses of derivation diagrams:
"1) browse data following their derivation relationships, 2) compare
derivation procedures and their resulting data classes, and 3) derive
data not stored in the database."  (3) is the planner; this module
provides the browsing renderers for (1) and (2): Graphviz-DOT output and
a plain-text adjacency listing for both the class-level derivation net
and object-level lineages.
"""

from __future__ import annotations

from .classes import ClassStore
from .petri import DerivationNet
from .provenance import Lineage

__all__ = ["net_to_dot", "net_to_text", "lineage_to_dot", "lineage_to_text"]


def _quote(name: str) -> str:
    return '"' + name.replace('"', r"\"") + '"'


def net_to_dot(net: DerivationNet, marking: dict[str, int] | None = None
               ) -> str:
    """Graphviz DOT for a derivation net.

    Places (classes) render as ellipses — shaded when *marking* gives
    them tokens — and transitions (processes) as boxes; arc labels carry
    thresholds above 1.
    """
    lines = ["digraph derivation_net {", "  rankdir=LR;"]
    for place in sorted(net.places):
        attrs = ["shape=ellipse"]
        if marking and marking.get(place, 0) > 0:
            attrs.append("style=filled")
            attrs.append(f'xlabel="{marking[place]} token(s)"')
        lines.append(f"  {_quote(place)} [{', '.join(attrs)}];")
    for name, transition in sorted(net.transitions.items()):
        lines.append(f"  {_quote(name)} [shape=box];")
        for arc in transition.inputs:
            label = (f' [label="{arc.threshold}"]'
                     if arc.threshold > 1 else "")
            lines.append(f"  {_quote(arc.place)} -> {_quote(name)}{label};")
        lines.append(f"  {_quote(name)} -> {_quote(transition.output)};")
    lines.append("}")
    return "\n".join(lines)


def net_to_text(net: DerivationNet) -> str:
    """Plain-text adjacency listing of a derivation net."""
    lines = ["derivation net:"]
    for name, transition in sorted(net.transitions.items()):
        inputs = ", ".join(
            f"{arc.place}(>={arc.threshold})" if arc.threshold > 1
            else arc.place
            for arc in transition.inputs
        )
        lines.append(f"  {name}: {inputs} -> {transition.output}")
    orphans = net.places - {
        arc.place
        for t in net.transitions.values() for arc in t.inputs
    } - {t.output for t in net.transitions.values()}
    if orphans:
        lines.append(f"  (isolated places: {', '.join(sorted(orphans))})")
    return "\n".join(lines)


def lineage_to_dot(lineage: Lineage, store: ClassStore | None = None) -> str:
    """Graphviz DOT for an object's derivation history.

    Objects render as ellipses (labelled with their class when *store*
    is supplied), tasks as boxes; the queried root object is emphasized.
    """
    def obj_label(oid: int) -> str:
        if store is not None:
            try:
                obj = store.get(oid)
            except Exception:
                return f"oid {oid}"
            return f"{obj.class_name}\\noid {oid}"
        return f"oid {oid}"

    lines = ["digraph lineage {", "  rankdir=BT;"]
    oids = set(lineage.base_oids) | {lineage.root_oid}
    for task in lineage.steps:
        oids |= task.all_input_oids() | set(task.output_oids)
    for oid in sorted(oids):
        attrs = [f'label="{obj_label(oid)}"', "shape=ellipse"]
        if oid == lineage.root_oid:
            attrs.append("penwidth=2")
        if oid in lineage.base_oids:
            attrs.append("style=dashed")
        lines.append(f'  o{oid} [{", ".join(attrs)}];')
    for task in lineage.steps:
        node = f"t{task.task_id}"
        lines.append(
            f'  {node} [label="{task.process_name}\\ntask {task.task_id}"'
            ", shape=box];"
        )
        for oid in sorted(task.all_input_oids()):
            lines.append(f"  o{oid} -> {node};")
        for oid in task.output_oids:
            lines.append(f"  {node} -> o{oid};")
    lines.append("}")
    return "\n".join(lines)


def lineage_to_text(lineage: Lineage, store: ClassStore | None = None
                    ) -> str:
    """Indented textual derivation tree, root first."""
    producers = {
        oid: task for task in lineage.steps for oid in task.output_oids
    }

    def describe(oid: int) -> str:
        if store is not None:
            try:
                return f"{store.get(oid).class_name}#{oid}"
            except Exception:
                return f"#{oid}"
        return f"#{oid}"

    lines: list[str] = []

    def render(oid: int, depth: int) -> None:
        producer = producers.get(oid)
        tag = "" if producer else "  (base)"
        lines.append("  " * depth + describe(oid) + tag)
        if producer is not None:
            lines.append("  " * (depth + 1)
                         + f"<- {producer.process_name} "
                           f"(task {producer.task_id})")
            for input_oid in sorted(producer.all_input_oids()):
                render(input_oid, depth + 2)

    render(lineage.root_oid, 0)
    return "\n".join(lines)
