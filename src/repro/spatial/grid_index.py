"""A fixed-grid spatial index over bounding boxes.

The storage substrate uses this to answer spatial-range retrievals over
non-primitive class extents ("direct data retrieval", paper §2.1.5 step 1)
without scanning every stored object.  A grid file is period-appropriate
for the early-90s setting and simple to reason about: the indexed universe
is divided into ``nx x ny`` cells, each holding the ids of every box that
intersects it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterator

from ..errors import SpatialError
from .box import Box

__all__ = ["GridIndex"]


@dataclass
class GridIndex:
    """Grid-file index mapping :class:`Box` extents to entry ids.

    Parameters
    ----------
    universe:
        The box covering all indexable extents.  Entries outside it are
        rejected — in Gaea the universe is the study region.
    nx, ny:
        Grid resolution (cells per axis).
    """

    universe: Box
    nx: int = 16
    ny: int = 16
    _cells: dict[tuple[int, int], set[Hashable]] = field(default_factory=dict)
    _entries: dict[Hashable, Box] = field(default_factory=dict)
    # Extents outside the universe are legal but unbinnable; they live in
    # an overflow set consulted by every query.
    _outside: set[Hashable] = field(default_factory=set)
    # Queries union mutable cell sets, so concurrent insert/remove would
    # otherwise raise "set changed size during iteration" mid-query.
    _lock: threading.RLock = field(default_factory=threading.RLock,
                                   repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.nx < 1 or self.ny < 1:
            raise SpatialError("grid resolution must be >= 1 per axis")
        if self.universe.area == 0.0:
            raise SpatialError("grid universe must have positive area")

    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, entry_id: Hashable) -> bool:
        return entry_id in self._entries

    # -- cell math ----------------------------------------------------------

    def _cell_span(self, box: Box) -> Iterator[tuple[int, int]]:
        """All cell coordinates intersecting *box* (clamped to the grid)."""
        cell_w = self.universe.width / self.nx
        cell_h = self.universe.height / self.ny
        ix_lo = int((box.xmin - self.universe.xmin) / cell_w)
        ix_hi = int((box.xmax - self.universe.xmin) / cell_w)
        iy_lo = int((box.ymin - self.universe.ymin) / cell_h)
        iy_hi = int((box.ymax - self.universe.ymin) / cell_h)
        ix_lo = max(0, min(self.nx - 1, ix_lo))
        ix_hi = max(0, min(self.nx - 1, ix_hi))
        iy_lo = max(0, min(self.ny - 1, iy_lo))
        iy_hi = max(0, min(self.ny - 1, iy_hi))
        for ix in range(ix_lo, ix_hi + 1):
            for iy in range(iy_lo, iy_hi + 1):
                yield (ix, iy)

    # -- mutation -----------------------------------------------------------

    def insert(self, entry_id: Hashable, box: Box) -> None:
        """Index *box* under *entry_id* (one extent per id).

        Extents outside the universe go to the overflow set: legal, just
        not accelerated.
        """
        with self._lock:
            if entry_id in self._entries:
                raise SpatialError(f"duplicate grid entry id {entry_id!r}")
            self._entries[entry_id] = box
            if not self.universe.overlaps(box):
                self._outside.add(entry_id)
                return
            for cell in self._cell_span(box):
                self._cells.setdefault(cell, set()).add(entry_id)

    def remove(self, entry_id: Hashable) -> None:
        """Drop *entry_id* from the index."""
        with self._lock:
            box = self._entries.pop(entry_id, None)
            if box is None:
                raise SpatialError(f"unknown grid entry id {entry_id!r}")
            if entry_id in self._outside:
                self._outside.discard(entry_id)
                return
            for cell in self._cell_span(box):
                bucket = self._cells.get(cell)
                if bucket is not None:
                    bucket.discard(entry_id)
                    if not bucket:
                        del self._cells[cell]

    # -- queries ------------------------------------------------------------

    def query(self, box: Box) -> set[Hashable]:
        """Ids of every indexed extent overlapping *box*."""
        with self._lock:
            candidates: set[Hashable] = set(self._outside)
            for cell in self._cell_span(box):
                candidates |= self._cells.get(cell, set())
            return {
                entry_id
                for entry_id in candidates
                if self._entries[entry_id].overlaps(box)
            }

    def estimate_matches(self, box: Box) -> int:
        """Cheap upper-bound estimate of :meth:`query`'s result size.

        Sums the candidate buckets of the touched cells without running
        the per-entry overlap test, so the cost model can price a spatial
        probe without executing it.  Boxes spanning several cells are
        counted once per cell, which keeps this an over- rather than
        under-estimate.
        """
        with self._lock:
            total = len(self._outside)
            for cell in self._cell_span(box):
                total += len(self._cells.get(cell, ()))
            return min(total, len(self._entries))

    def query_contained(self, box: Box) -> set[Hashable]:
        """Ids of extents entirely inside *box*."""
        with self._lock:
            return {
                entry_id
                for entry_id in self.query(box)
                if box.contains(self._entries[entry_id])
            }

    def extent_of(self, entry_id: Hashable) -> Box:
        """The indexed extent for *entry_id*."""
        try:
            return self._entries[entry_id]
        except KeyError:
            raise SpatialError(f"unknown grid entry id {entry_id!r}") from None
