"""Spatial extent semantics: boxes, topological relations, grid index."""

from .box import Box
from .grid_index import GridIndex
from .relations import TopoRelation, common, common_box, mutual_overlap, relate

__all__ = [
    "Box",
    "GridIndex",
    "TopoRelation",
    "common",
    "common_box",
    "mutual_overlap",
    "relate",
]
