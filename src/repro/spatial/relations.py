"""Spatial relations and the ``common()`` guard rule.

Figure 3's process template uses assertions such as
``common(bands.spatialextent)`` to "make sure that the spatio-temporal
extents of the input classes are the same or overlap".  This module
implements that predicate plus the standard topological relations between
boxes (a simplified Egenhofer set, reference [12] of the paper).
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable, Sequence

from .box import Box

__all__ = ["TopoRelation", "relate", "common", "common_box", "mutual_overlap"]


class TopoRelation(Enum):
    """Topological relation between two boxes (simplified Egenhofer)."""

    DISJOINT = "disjoint"
    MEET = "meet"
    OVERLAP = "overlap"
    COVERS = "covers"
    COVERED_BY = "covered_by"
    EQUAL = "equal"


def relate(a: Box, b: Box) -> TopoRelation:
    """Classify the topological relation between boxes *a* and *b*."""
    if a == b:
        return TopoRelation.EQUAL
    if not a.overlaps(b):
        return TopoRelation.DISJOINT
    inter = a.intersection(b)
    assert inter is not None
    if inter.area == 0.0:
        # Overlapping with zero-area intersection means touching edges.
        return TopoRelation.MEET
    if a.contains(b):
        return TopoRelation.COVERS
    if b.contains(a):
        return TopoRelation.COVERED_BY
    return TopoRelation.OVERLAP


def mutual_overlap(boxes: Sequence[Box]) -> bool:
    """True when every pair of *boxes* overlaps (shares at least a point)."""
    for i, first in enumerate(boxes):
        for second in boxes[i + 1 :]:
            if not first.overlaps(second):
                return False
    return True


def common(extents: Iterable[Box]) -> bool:
    """The paper's ``common()`` assertion on spatial extents.

    Returns ``True`` when the extents "are the same or overlap" with a
    *shared* region: the intersection of all extents must be non-empty.
    An empty sequence is vacuously common; a single extent always is.
    """
    boxes = list(extents)
    if not boxes:
        return True
    return common_box(boxes) is not None


def common_box(extents: Iterable[Box]) -> Box | None:
    """Intersection of all *extents*, or ``None`` when they share nothing.

    This is the region a derivation over the inputs is valid on; processes
    with invariant spatial transfer use ``ANYOF`` (paper Figure 3) because
    their assertions already guarantee agreement.
    """
    boxes = list(extents)
    if not boxes:
        return None
    acc: Box | None = boxes[0]
    for box in boxes[1:]:
        if acc is None:
            return None
        acc = acc.intersection(box)
    return acc
