"""Spatial bounding boxes — the ``SPATIAL EXTENT`` carrier.

Non-primitive classes in Gaea carry a ``spatialextent = box`` attribute
(paper §2.1.1, the ``landcover`` class definition).  A box is an
axis-aligned rectangle in some *reference system* (``long/lat``, ``UTM``,
...) expressed in some *reference unit* (``meter``, ``degree``, ...).

Boxes are value-identified primitive objects: equality is structural and
they are hashable and immutable.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from ..errors import SpatialError, ValueRepresentationError

__all__ = ["Box"]

_BOX_RE = re.compile(
    r"""^\(\s*(?P<xmin>-?\d+(?:\.\d+)?)\s*,\s*(?P<ymin>-?\d+(?:\.\d+)?)\s*,
    \s*(?P<xmax>-?\d+(?:\.\d+)?)\s*,\s*(?P<ymax>-?\d+(?:\.\d+)?)\s*
    (?:,\s*(?P<ref>[A-Za-z/_0-9-]+)\s*)?\)$""",
    re.VERBOSE,
)


@dataclass(frozen=True, order=False)
class Box:
    """Axis-aligned bounding box ``[xmin, xmax] x [ymin, ymax]``.

    ``ref_system`` names the coordinate reference system; boxes in
    different reference systems cannot be compared or combined (a real
    system would reproject; Gaea's assertions simply require agreement).
    """

    xmin: float
    ymin: float
    xmax: float
    ymax: float
    ref_system: str = "long/lat"

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise SpatialError(
                f"degenerate box: ({self.xmin},{self.ymin},{self.xmax},{self.ymax})"
            )

    # -- representation -----------------------------------------------------

    @staticmethod
    def parse(text: str) -> "Box":
        """Parse the external representation ``(xmin, ymin, xmax, ymax[, ref])``."""
        match = _BOX_RE.match(text.strip())
        if match is None:
            raise ValueRepresentationError(f"bad box literal {text!r}")
        ref = match.group("ref") or "long/lat"
        return Box(
            xmin=float(match.group("xmin")),
            ymin=float(match.group("ymin")),
            xmax=float(match.group("xmax")),
            ymax=float(match.group("ymax")),
            ref_system=ref,
        )

    @staticmethod
    def validate(value: Any) -> "Box":
        """Validator used by the ``box`` primitive class."""
        if isinstance(value, Box):
            return value
        if isinstance(value, str):
            return Box.parse(value)
        if isinstance(value, (tuple, list)) and len(value) in (4, 5):
            return Box(*value)
        raise ValueRepresentationError(
            f"box: cannot build from {type(value).__name__}"
        )

    def __str__(self) -> str:
        return (
            f"({self.xmin}, {self.ymin}, {self.xmax}, {self.ymax}, "
            f"{self.ref_system})"
        )

    # -- geometry -----------------------------------------------------------

    @property
    def width(self) -> float:
        """Extent along x."""
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        """Extent along y."""
        return self.ymax - self.ymin

    @property
    def area(self) -> float:
        """Area in squared reference units."""
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        """Center point ``(x, y)``."""
        return ((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    def _check_ref(self, other: "Box") -> None:
        if self.ref_system != other.ref_system:
            raise SpatialError(
                f"reference system mismatch: {self.ref_system!r} vs "
                f"{other.ref_system!r}"
            )

    def contains_point(self, x: float, y: float) -> bool:
        """True when ``(x, y)`` lies inside or on the boundary."""
        return self.xmin <= x <= self.xmax and self.ymin <= y <= self.ymax

    def contains(self, other: "Box") -> bool:
        """True when *other* lies entirely inside this box."""
        self._check_ref(other)
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and other.xmax <= self.xmax
            and other.ymax <= self.ymax
        )

    def overlaps(self, other: "Box") -> bool:
        """True when the two boxes share any point (boundaries count)."""
        self._check_ref(other)
        return not (
            other.xmin > self.xmax
            or other.xmax < self.xmin
            or other.ymin > self.ymax
            or other.ymax < self.ymin
        )

    def intersection(self, other: "Box") -> "Box | None":
        """The shared box, or ``None`` when disjoint."""
        self._check_ref(other)
        if not self.overlaps(other):
            return None
        return Box(
            xmin=max(self.xmin, other.xmin),
            ymin=max(self.ymin, other.ymin),
            xmax=min(self.xmax, other.xmax),
            ymax=min(self.ymax, other.ymax),
            ref_system=self.ref_system,
        )

    def union(self, other: "Box") -> "Box":
        """Smallest box covering both operands."""
        self._check_ref(other)
        return Box(
            xmin=min(self.xmin, other.xmin),
            ymin=min(self.ymin, other.ymin),
            xmax=max(self.xmax, other.xmax),
            ymax=max(self.ymax, other.ymax),
            ref_system=self.ref_system,
        )

    def expanded(self, margin: float) -> "Box":
        """Box grown by *margin* on every side (negative shrinks; the
        result must stay non-degenerate)."""
        return Box(
            xmin=self.xmin - margin,
            ymin=self.ymin - margin,
            xmax=self.xmax + margin,
            ymax=self.ymax + margin,
            ref_system=self.ref_system,
        )
