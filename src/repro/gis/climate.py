"""Climate-index operators for the desert concept (paper §2.1.1).

"An acceptable definition of a desert must include ... the amount of
precipitation received, ... the amount of evaporation, the mean
temperature ..." and "dryness, related to precipitation, can be measured
by the Aridity Index, a Quotient of Dryness or the Radiational Index of
Dryness".  These operators give the desert-classification processes their
alternative metrics, so DESERTIC REGION really is derivable in several
well-defined ways (one class per derivation).
"""

from __future__ import annotations

import numpy as np

from ..adt.image import Image
from ..errors import SignatureMismatchError

__all__ = ["aridity_index", "dryness_quotient", "desert_mask_rainfall",
           "desert_mask_aridity"]


def aridity_index(rainfall: Image, temperature: Image) -> Image:
    """De Martonne aridity index ``P / (T + 10)`` (mm/year, °C).

    Lower is drier; values under ~10 indicate arid conditions.
    """
    if not rainfall.size_eq(temperature):
        raise SignatureMismatchError(
            f"aridity_index: sizes differ "
            f"({rainfall.shape} vs {temperature.shape})"
        )
    p = rainfall.data.astype(np.float64)
    t = temperature.data.astype(np.float64) + 10.0
    out = np.zeros_like(p)
    np.divide(p, t, out=out, where=t != 0)
    return Image.from_array(out, "float4")


def dryness_quotient(rainfall: Image, temperature: Image) -> Image:
    """Emberger-style quotient of dryness ``2000 P / (Tmax² - Tmin²)``.

    With a single mean-temperature raster we approximate the seasonal
    span as ±8 °C around the mean; lower values are drier.
    """
    if not rainfall.size_eq(temperature):
        raise SignatureMismatchError("dryness_quotient: sizes differ")
    p = rainfall.data.astype(np.float64)
    t = temperature.data.astype(np.float64) + 273.15
    tmax = t + 8.0
    tmin = t - 8.0
    span = tmax**2 - tmin**2
    out = np.zeros_like(p)
    np.divide(2000.0 * p, span, out=out, where=span != 0)
    return Image.from_array(out, "float4")


def desert_mask_rainfall(rainfall: Image, cutoff_mm: float) -> Image:
    """Hot trade-wind desert mask: rainfall under *cutoff_mm* per year
    (the paper's 250 mm — or a dissenting scientist's 200 mm, §2.1.2)."""
    return Image.from_array(
        rainfall.data.astype(np.float64) < cutoff_mm, "char"
    )


def desert_mask_aridity(aridity: Image, cutoff: float = 10.0) -> Image:
    """Desert mask from the De Martonne aridity index."""
    return Image.from_array(
        aridity.data.astype(np.float64) < cutoff, "char"
    )
