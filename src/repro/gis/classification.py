"""Land-cover classification — ``unsuperclassify()`` and a supervised
variant.

Figure 3's process P20 derives LAND_COVER with
``unsuperclassify(composite(bands), 12)``: an unsupervised grouping of
"remotely sensed data into land cover classes based on their similarity".
We implement it as seeded k-means over the per-pixel band vectors (the
standard unsupervised classifier in early-90s GIS packages, e.g. IDRISI's
CLUSTER).

Supervised classification — the paper's §4.3 example of a process needing
user interaction — is provided as minimum-distance-to-means over training
signatures, so the limitation discussion has a concrete counterpart.
"""

from __future__ import annotations

import numpy as np

from ..adt.image import Image
from ..errors import SignatureMismatchError
from .composite import decompose

__all__ = ["kmeans", "unsuperclassify", "superclassify"]


def kmeans(samples: np.ndarray, k: int, seed: int = 0,
           max_iter: int = 50) -> tuple[np.ndarray, np.ndarray]:
    """Seeded k-means: returns (labels, centers).

    *samples* is ``(n, d)``.  Initialization is k-means++-style greedy
    farthest-point seeding from a deterministic RNG, so classification is
    reproducible — a property the derivation manager's memoization and
    the EXP-C reproducibility experiment rely on.
    """
    if samples.ndim != 2:
        raise SignatureMismatchError("kmeans: samples must be 2-D")
    n = samples.shape[0]
    if not 1 <= k <= n:
        raise SignatureMismatchError(f"kmeans: need 1 <= k <= {n}, got {k}")
    rng = np.random.default_rng(seed)
    centers = np.empty((k, samples.shape[1]))
    centers[0] = samples[rng.integers(n)]
    dist = np.sum((samples - centers[0]) ** 2, axis=1)
    for i in range(1, k):
        centers[i] = samples[int(np.argmax(dist))]
        dist = np.minimum(dist, np.sum((samples - centers[i]) ** 2, axis=1))
    labels = np.zeros(n, dtype=np.int32)
    for _ in range(max_iter):
        sq = (
            np.sum(samples**2, axis=1)[:, None]
            - 2.0 * samples @ centers.T
            + np.sum(centers**2, axis=1)[None, :]
        )
        new_labels = np.argmin(sq, axis=1).astype(np.int32)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for i in range(k):
            member = samples[labels == i]
            if len(member):
                centers[i] = member.mean(axis=0)
    return labels, centers


def unsuperclassify(composite_img: Image, numclass: int) -> Image:
    """The paper's ``unsuperclassify`` operator.

    Takes a band composite (see :mod:`repro.gis.composite`) and the class
    count; returns an int2 label raster.  The band count is inferred from
    the composite's aspect ratio against a square-scene assumption when
    possible, falling back to treating the whole composite as one band —
    callers produced by :func:`composite` always decompose exactly.
    """
    nbands = _infer_band_count(composite_img)
    bands = decompose(composite_img, nbands)
    stack = np.stack([b.data.astype(np.float64) for b in bands], axis=-1)
    nrow, ncol, _ = stack.shape
    samples = stack.reshape(nrow * ncol, nbands)
    labels, _ = kmeans(samples, numclass, seed=numclass)
    return Image.from_array(labels.reshape(nrow, ncol), "int2")


def _infer_band_count(composite_img: Image) -> int:
    """Infer how many equal-width bands a composite concatenates.

    Composites built by :func:`repro.gis.composite.composite` put *b*
    same-width scenes side by side, so ``ncol = b * width``.  We pick the
    largest *b* <= 8 that divides the width evenly and leaves scenes at
    least as tall as wide... unless the image is wider than tall by an
    exact small factor, which is the definitive signal.
    """
    nrow, ncol = composite_img.shape
    if ncol % nrow == 0 and 1 <= ncol // nrow <= 16:
        return ncol // nrow
    for b in range(8, 1, -1):
        if ncol % b == 0:
            return b
    return 1


def superclassify(composite_img: Image, signatures: np.ndarray) -> Image:
    """Supervised minimum-distance classification.

    *signatures* is ``(k, nbands)`` of training class means (in a real
    workflow digitized interactively — the §4.3 limitation).  Returns an
    int2 label raster.
    """
    if signatures.ndim != 2:
        raise SignatureMismatchError("superclassify: signatures must be 2-D")
    nbands = signatures.shape[1]
    bands = decompose(composite_img, nbands)
    stack = np.stack([b.data.astype(np.float64) for b in bands], axis=-1)
    nrow, ncol, _ = stack.shape
    samples = stack.reshape(nrow * ncol, nbands)
    sq = (
        np.sum(samples**2, axis=1)[:, None]
        - 2.0 * samples @ signatures.T
        + np.sum(signatures**2, axis=1)[None, :]
    )
    labels = np.argmin(sq, axis=1).astype(np.int16)
    return Image.from_array(labels.reshape(nrow, ncol), "int2")
