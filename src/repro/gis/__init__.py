"""GIS / remote-sensing substrate: the global-change workload domain.

Synthetic scene generation plus the analysis algorithms the paper's
processes invoke, and :func:`register_gis_operators` to install them into
an operator registry so processes and dataflow networks can call them by
name.
"""

from __future__ import annotations

import numpy as np

from ..adt.operators import OperatorRegistry
from .change import (
    change_fraction,
    confusion_counts,
    label_changes,
    threshold_change,
)
from .classification import kmeans, superclassify, unsuperclassify
from .climate import (
    aridity_index,
    desert_mask_aridity,
    desert_mask_rainfall,
    dryness_quotient,
)
from .composite import band_count, composite, decompose
from .ndvi import ndvi, ndvi_difference, ndvi_ratio
from .pca import (
    compute_correlation,
    compute_covariance,
    convert_image_matrix,
    convert_matrix_image,
    get_eigen_vector,
    linear_combination,
    pca,
    spca,
)
from .synth import COVER_CLASSES, TM_BAND_NAMES, LandCoverField, SceneGenerator

__all__ = [
    "COVER_CLASSES",
    "LandCoverField",
    "SceneGenerator",
    "TM_BAND_NAMES",
    "aridity_index",
    "band_count",
    "change_fraction",
    "composite",
    "compute_correlation",
    "compute_covariance",
    "confusion_counts",
    "convert_image_matrix",
    "convert_matrix_image",
    "decompose",
    "desert_mask_aridity",
    "desert_mask_rainfall",
    "dryness_quotient",
    "get_eigen_vector",
    "kmeans",
    "label_changes",
    "linear_combination",
    "ndvi",
    "ndvi_difference",
    "ndvi_ratio",
    "pca",
    "register_gis_operators",
    "spca",
    "superclassify",
    "threshold_change",
    "unsuperclassify",
]


def register_gis_operators(ops: OperatorRegistry) -> None:
    """Install the GIS analysis operators into *ops*.

    These are the named operators the Figure-2/3/4 processes apply; the
    Figure-4 stage operators are registered under the paper's hyphenated
    names as well as Python-style aliases.
    """
    ops.register("ndvi", ["image", "image"], "image", ndvi,
                 doc="normalized difference vegetation index (red, nir)")
    ops.register("ndvi_difference", ["image", "image"], "image",
                 ndvi_difference,
                 doc="vegetation change by NDVI subtraction (later, earlier)")
    ops.register("ndvi_ratio", ["image", "image"], "image", ndvi_ratio,
                 doc="vegetation change by NDVI division (later, earlier)")
    ops.register("composite", ["setof image"], "image", composite,
                 doc="stack bands into one composite image (Figure 3)")
    ops.register("unsuperclassify", ["image", "int4"], "image",
                 unsuperclassify,
                 doc="unsupervised (k-means) land-cover classification")

    def _superclassify_op(composite_img, signatures):
        return superclassify(composite_img, signatures.data)

    ops.register("superclassify", ["image", "matrix"], "image",
                 _superclassify_op,
                 doc="supervised minimum-distance classification; the "
                     "signature matrix is digitized interactively (§4.3)")
    ops.register("label_changes", ["image", "image"], "image", label_changes,
                 doc="mask of pixels whose class label changed")
    ops.register("threshold_change", ["image", "float8"], "image",
                 threshold_change,
                 doc="significant-change mask from a change component")
    ops.register("aridity_index", ["image", "image"], "image", aridity_index,
                 doc="De Martonne aridity index (rainfall, temperature)")
    ops.register("dryness_quotient", ["image", "image"], "image",
                 dryness_quotient,
                 doc="Emberger quotient of dryness (rainfall, temperature)")
    ops.register("desert_mask_rainfall", ["image", "float8"], "image",
                 desert_mask_rainfall,
                 doc="desert mask: annual rainfall below a cutoff")
    ops.register("desert_mask_aridity", ["image", "float8"], "image",
                 desert_mask_aridity,
                 doc="desert mask: aridity index below a cutoff")

    # Figure-4 stage operators, paper-style names.
    for name in ("convert-image-matrix", "convert_image_matrix"):
        ops.register(name, ["setof image"], "setof matrix",
                     convert_image_matrix,
                     doc="images to matrices (Figure 4 stage 1)")
    for name in ("compute-covariance", "compute_covariance"):
        ops.register(name, ["setof>=2 matrix"], "matrix", compute_covariance,
                     doc="inter-image covariance (Figure 4 stage 2)")
    ops.register("compute_correlation", ["setof>=2 matrix"], "matrix",
                 compute_correlation,
                 doc="inter-image correlation (SPCA variant)")
    for name in ("get-eigen-vector", "get_eigen_vector"):
        ops.register(name, ["matrix"], "vector", get_eigen_vector,
                     doc="principal eigenvector (Figure 4 stage 3)")
    ops.register("get_eigen_vector_k", ["matrix", "int4"], "vector",
                 get_eigen_vector,
                 doc="eigenvector of a chosen component rank")
    for name in ("linear-combination", "linear_combination"):
        ops.register(name, ["vector", "setof matrix"], "setof matrix",
                     linear_combination,
                     doc="project the stack onto weights (Figure 4 stage 4)")
    for name in ("convert-matrix-image", "convert_matrix_image"):
        ops.register(name, ["setof matrix"], "setof image",
                     convert_matrix_image,
                     doc="matrices back to images (Figure 4 stage 5)")

    def _img_smooth(img, passes: int):
        from ..adt.image import Image
        from .synth import _smooth

        return Image.from_array(_smooth(img.data.astype(float), passes),
                                "float4")

    ops.register("img_smooth", ["image", "int4"], "image", _img_smooth,
                 doc="box-smooth an image (spatial interpolation helper)")

    def _first_image(images: list) -> object:
        return images[0]

    ops.register("first_image", ["setof image"], "image", _first_image,
                 doc="select the single image out of a SET OF image")

    def _pca_op(images: list, ncomp: int) -> list:
        return pca(images, ncomp)[0]

    def _spca_op(images: list, ncomp: int) -> list:
        return spca(images, ncomp)[0]

    ops.register("pca", ["setof>=2 image", "int4"], "setof image", _pca_op,
                 doc="PCA component images (compound operator, Figure 4)")
    ops.register("spca", ["setof>=2 image", "int4"], "setof image", _spca_op,
                 doc="standardized PCA component images (Eastman)")

    def _pca_change(images: list) -> object:
        comps, _ = pca(images, min(2, len(images)))
        return comps[-1]

    def _spca_change(images: list) -> object:
        comps, _ = spca(images, min(2, len(images)))
        return comps[-1]

    ops.register("pca_change", ["setof>=2 image"], "image", _pca_change,
                 doc="change component (last of 2) from PCA")
    ops.register("spca_change", ["setof>=2 image"], "image", _spca_change,
                 doc="change component (last of 2) from SPCA")


def make_signatures(class_means: list[list[float]]) -> np.ndarray:
    """Helper to build a supervised-classification signature matrix."""
    return np.asarray(class_means, dtype=np.float64)
