"""NDVI — the normalized difference vegetation index (paper footnote 2).

"NDVI is ... a qualitative measure of vegetation derived from AVHRR
satellite imagery data": ``(NIR - red) / (NIR + red)``, in [-1, 1].
The §1 motivating scenario derives vegetation *change* from two NDVI
rasters either by subtraction or by division — both provided here and
registered as operators so the two scientists' processes are distinct,
comparable derivations.
"""

from __future__ import annotations

import numpy as np

from ..adt.image import Image
from ..errors import SignatureMismatchError

__all__ = ["ndvi", "ndvi_difference", "ndvi_ratio"]


def ndvi(red: Image, nir: Image) -> Image:
    """Normalized difference vegetation index of a red/NIR band pair."""
    if not red.size_eq(nir):
        raise SignatureMismatchError(
            f"ndvi: band sizes differ ({red.shape} vs {nir.shape})"
        )
    r = red.data.astype(np.float64)
    n = nir.data.astype(np.float64)
    total = n + r
    out = np.zeros_like(total)
    np.divide(n - r, total, out=out, where=total != 0)
    return Image.from_array(out, "float4")


def ndvi_difference(later: Image, earlier: Image) -> Image:
    """Vegetation change as NDVI subtraction (scientist #1 of §1)."""
    if not later.size_eq(earlier):
        raise SignatureMismatchError(
            f"ndvi_difference: sizes differ ({later.shape} vs {earlier.shape})"
        )
    return Image.from_array(
        later.data.astype(np.float64) - earlier.data.astype(np.float64),
        "float4",
    )


def ndvi_ratio(later: Image, earlier: Image) -> Image:
    """Vegetation change as NDVI division (scientist #2 of §1).

    Zero-NDVI denominators map to 1.0 (no change) so barren pixels do not
    explode the ratio.
    """
    if not later.size_eq(earlier):
        raise SignatureMismatchError(
            f"ndvi_ratio: sizes differ ({later.shape} vs {earlier.shape})"
        )
    num = later.data.astype(np.float64)
    den = earlier.data.astype(np.float64)
    out = np.ones_like(num)
    np.divide(num, den, out=out, where=den != 0)
    return Image.from_array(out, "float4")
