"""Band compositing — the ``composite()`` operator of Figure 3.

``C20.data = unsuperclassify(composite(bands), 12)``: the classification
operator works on a single composite object built from the input bands.
Our composite stacks the bands into one image by interleaving them into a
feature plane; :func:`decompose` recovers the bands.  (A display-oriented
GIS would build an RGB composite; for classification what matters is that
the per-pixel band vector survives, which this encoding guarantees.)
"""

from __future__ import annotations

import numpy as np

from ..adt.image import Image
from ..errors import SignatureMismatchError

__all__ = ["composite", "decompose", "band_count"]


def composite(bands: list[Image]) -> Image:
    """Stack same-shaped bands into one image.

    The output has the bands side by side along the column axis:
    shape ``(nrow, ncol * nbands)``.  The band count is recoverable from
    the shape ratio, keeping the composite a legal 2-D ``image`` value.
    """
    if not bands:
        raise SignatureMismatchError("composite: no input bands")
    first = bands[0]
    for band in bands[1:]:
        if not band.size_eq(first):
            raise SignatureMismatchError(
                f"composite: band sizes differ ({band.shape} vs {first.shape})"
            )
    stacked = np.concatenate(
        [band.data.astype(np.float64) for band in bands], axis=1
    )
    return Image.from_array(stacked, "float4")


def band_count(composite_img: Image, nrow: int, ncol: int) -> int:
    """Number of bands encoded in a composite of ``nrow x ncol`` scenes."""
    if composite_img.nrow != nrow or composite_img.ncol % ncol != 0:
        raise SignatureMismatchError(
            "band_count: composite shape does not match the scene shape"
        )
    return composite_img.ncol // ncol


def decompose(composite_img: Image, nbands: int) -> list[Image]:
    """Recover the band list from a composite."""
    if nbands < 1 or composite_img.ncol % nbands != 0:
        raise SignatureMismatchError(
            f"decompose: {nbands} bands do not divide width "
            f"{composite_img.ncol}"
        )
    width = composite_img.ncol // nbands
    return [
        Image.from_array(
            composite_img.data[:, i * width:(i + 1) * width], "float4"
        )
        for i in range(nbands)
    ]
