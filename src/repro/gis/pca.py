"""Principal component analysis and standardized PCA (Figure 4, §2.1.3).

The paper derives "vegetation change" over an image time series with PCA
(Richards [31]) and compares it with Eastman's *standardized* PCA (SPCA
[9]), which uses the correlation matrix instead of the covariance matrix.
Both are provided:

* as whole algorithms (:func:`pca`, :func:`spca`) returning component
  images plus the eigen-structure, and
* as the individual dataflow operators of Figure 4
  (``convert-image-matrix``, ``compute-covariance``,
  ``get-eigen-vector``, ``linear-combination``,
  ``convert-matrix-image``), so the compound-operator network can be
  built and validated against the direct computation.
"""

from __future__ import annotations

import numpy as np

from ..adt.image import Image
from ..adt.matrix import Matrix
from ..adt.vector import Vector
from ..errors import SignatureMismatchError

__all__ = [
    "convert_image_matrix",
    "compute_covariance",
    "compute_correlation",
    "get_eigen_vector",
    "linear_combination",
    "convert_matrix_image",
    "pca",
    "spca",
]


# ---------------------------------------------------------------------------
# Figure-4 stage operators
# ---------------------------------------------------------------------------


def convert_image_matrix(images: list[Image]) -> list[Matrix]:
    """``convert-image-matrix``: images to float matrices (one per image)."""
    if not images:
        raise SignatureMismatchError("convert_image_matrix: no input images")
    shape = images[0].shape
    for img in images[1:]:
        if img.shape != shape:
            raise SignatureMismatchError(
                f"convert_image_matrix: sizes differ ({img.shape} vs {shape})"
            )
    return [Matrix.from_array(img.data) for img in images]


def _stack_pixels(mats: list[Matrix]) -> np.ndarray:
    """(npixels, nimages) sample matrix from a list of same-shape mats."""
    return np.stack([m.data.ravel() for m in mats], axis=1)


def compute_covariance(mats: list[Matrix]) -> Matrix:
    """``compute-covariance``: inter-image covariance matrix.

    Treats each image as one variable and each pixel as one observation,
    the standard construction for multitemporal PCA (Richards [31] ch.6).
    Needs at least two images (the Petri-net threshold of §2.1.6).
    """
    if len(mats) < 2:
        raise SignatureMismatchError(
            "compute_covariance: needs at least 2 images"
        )
    samples = _stack_pixels(mats)
    return Matrix.from_array(np.cov(samples, rowvar=False))


def compute_correlation(mats: list[Matrix]) -> Matrix:
    """Correlation-matrix variant used by *standardized* PCA (Eastman)."""
    if len(mats) < 2:
        raise SignatureMismatchError(
            "compute_correlation: needs at least 2 images"
        )
    samples = _stack_pixels(mats)
    return Matrix.from_array(np.corrcoef(samples, rowvar=False))


def _orient(vec: np.ndarray) -> np.ndarray:
    """Resolve eigenvector sign ambiguity deterministically.

    The anchor is the *first* coefficient whose magnitude is within a
    relative tolerance of the maximum, not the argmax itself: when two
    coefficients are near-equal in magnitude (e.g. the ±[1, 1]/√2
    eigenvectors of a 2-variable correlation matrix), floating-point
    noise can flip which one argmax picks, and with it the sign of the
    whole component.
    """
    mags = np.abs(vec)
    anchor = int(np.argmax(mags >= mags.max() * (1.0 - 1e-9)))
    return -vec if vec[anchor] < 0 else vec


def get_eigen_vector(cov: Matrix, component: int = 0) -> Vector:
    """``get-eigen-vector``: the eigenvector of the given component rank.

    Component 0 is the largest-eigenvalue axis.  Sign is normalized so
    the anchor coefficient is positive (eigenvectors are sign-ambiguous;
    normalization keeps derivations reproducible).
    """
    if cov.nrow != cov.ncol:
        raise SignatureMismatchError("get_eigen_vector: matrix not square")
    if not 0 <= component < cov.nrow:
        raise SignatureMismatchError(
            f"get_eigen_vector: component {component} out of range"
        )
    values, vectors = np.linalg.eigh(cov.data)
    order = np.argsort(values)[::-1]
    return Vector.from_array(_orient(vectors[:, order[component]]))


def linear_combination(weights: Vector, mats: list[Matrix]) -> list[Matrix]:
    """``linear-combination``: project the image stack onto *weights*.

    Returns a single-element list (``SET OF matrix`` in Figure 4): the
    component image as a matrix.
    """
    if len(weights) != len(mats):
        raise SignatureMismatchError(
            f"linear_combination: {len(weights)} weights for {len(mats)} "
            "matrices"
        )
    acc = np.zeros_like(mats[0].data, dtype=np.float64)
    for w, mat in zip(weights.data, mats):
        acc = acc + w * mat.data
    return [Matrix.from_array(acc)]


def convert_matrix_image(mats: list[Matrix]) -> list[Image]:
    """``convert-matrix-image``: matrices back to float4 images."""
    return [Image.from_array(m.data, "float4") for m in mats]


# ---------------------------------------------------------------------------
# Whole-algorithm entry points
# ---------------------------------------------------------------------------


def _pca_core(images: list[Image], ncomp: int, standardized: bool
              ) -> tuple[list[Image], np.ndarray, np.ndarray]:
    mats = convert_image_matrix(images)
    if standardized:
        samples = _stack_pixels(mats)
        means = samples.mean(axis=0)
        stds = samples.std(axis=0)
        stds[stds == 0] = 1.0
        mats = [
            Matrix.from_array((m.data - mu) / sd)
            for m, mu, sd in zip(mats, means, stds)
        ]
        cov = compute_covariance(mats)  # covariance of standardized = corr
    else:
        cov = compute_covariance(mats)
    values, vectors = np.linalg.eigh(cov.data)
    order = np.argsort(values)[::-1]
    values = values[order]
    vectors = vectors[:, order]
    if not 1 <= ncomp <= len(images):
        raise SignatureMismatchError(
            f"pca: ncomp must be in [1, {len(images)}], got {ncomp}"
        )
    components: list[Image] = []
    for idx in range(ncomp):
        vec = _orient(vectors[:, idx])
        projected = linear_combination(Vector.from_array(vec), mats)
        components.append(convert_matrix_image(projected)[0])
    return components, values, vectors


def pca(images: list[Image], ncomp: int = 1
        ) -> tuple[list[Image], np.ndarray]:
    """Standard (covariance) PCA over an image stack.

    Returns ``(component_images, eigenvalues)`` with components ordered
    by decreasing variance.  In multitemporal change analysis the later
    components isolate change (Richards [31]).
    """
    components, values, _ = _pca_core(images, ncomp, standardized=False)
    return components, values


def spca(images: list[Image], ncomp: int = 1
         ) -> tuple[list[Image], np.ndarray]:
    """Standardized PCA (Eastman [9]): PCA on the correlation matrix.

    Standardization stops high-variance scenes from dominating the
    loadings, which Eastman showed sharpens the change components in NDVI
    time series.
    """
    components, values, _ = _pca_core(images, ncomp, standardized=True)
    return components, values
