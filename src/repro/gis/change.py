"""Change detection over label rasters and index rasters.

The compound process of Figure 5 (land-change detection) ends in a
comparison of classified land-cover rasters; this module provides the
comparison operators plus summary statistics the examples and benchmarks
report.
"""

from __future__ import annotations

import numpy as np

from ..adt.image import Image
from ..errors import SignatureMismatchError

__all__ = ["label_changes", "change_fraction", "confusion_counts",
           "threshold_change"]


def label_changes(later: Image, earlier: Image) -> Image:
    """Binary mask of pixels whose class label changed."""
    if not later.size_eq(earlier):
        raise SignatureMismatchError(
            f"label_changes: sizes differ ({later.shape} vs {earlier.shape})"
        )
    return Image.from_array(later.data != earlier.data, "char")


def change_fraction(later: Image, earlier: Image) -> float:
    """Fraction of pixels whose label changed."""
    mask = label_changes(later, earlier)
    return float(np.mean(mask.data))


def confusion_counts(later: Image, earlier: Image, numclass: int
                     ) -> np.ndarray:
    """Class-transition matrix ``counts[from, to]`` between two label
    rasters."""
    if not later.size_eq(earlier):
        raise SignatureMismatchError("confusion_counts: sizes differ")
    frm = earlier.data.astype(np.int64).ravel()
    to = later.data.astype(np.int64).ravel()
    if frm.min() < 0 or to.min() < 0 or frm.max() >= numclass \
            or to.max() >= numclass:
        raise SignatureMismatchError(
            "confusion_counts: labels out of range for numclass"
        )
    counts = np.zeros((numclass, numclass), dtype=np.int64)
    np.add.at(counts, (frm, to), 1)
    return counts


def threshold_change(change_img: Image, sigma: float = 2.0) -> Image:
    """Binary mask of significant change in a continuous change raster.

    Pixels beyond ``sigma`` standard deviations from the raster mean are
    flagged — the usual way a PCA change component is turned into a
    change map.
    """
    data = change_img.data.astype(np.float64)
    mu = float(np.mean(data))
    sd = float(np.std(data))
    if sd == 0.0:
        return Image.from_array(np.zeros_like(data), "char")
    return Image.from_array(np.abs(data - mu) > sigma * sd, "char")
