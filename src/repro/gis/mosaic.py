"""Spatial mosaicking: combining partial scenes to cover a query region.

Paper §2.1.5 step 2 names *spatial* interpolation next to temporal
interpolation as a generic way to answer queries when "data are missing".
The spatial case: no single stored object covers the requested region,
but several neighbours jointly do.  :func:`mosaic` resamples each input
onto the query grid (nearest neighbour within each input's extent) and
averages where inputs overlap.
"""

from __future__ import annotations

import numpy as np

from ..adt.image import Image
from ..errors import SpatialError
from ..spatial.box import Box

__all__ = ["mosaic", "covers"]


def covers(extents: list[Box], region: Box,
           sample_grid: int = 16) -> bool:
    """Whether *extents* jointly cover *region*.

    Checked on a ``sample_grid`` × ``sample_grid`` lattice of cell
    centers — exact rectangle-union coverage is overkill for planning.
    """
    if not extents:
        return False
    xs = np.linspace(region.xmin, region.xmax, sample_grid + 1)
    ys = np.linspace(region.ymin, region.ymax, sample_grid + 1)
    cx = (xs[:-1] + xs[1:]) / 2.0
    cy = (ys[:-1] + ys[1:]) / 2.0
    for x in cx:
        for y in cy:
            if not any(e.contains_point(float(x), float(y)) for e in extents):
                return False
    return True


def _sample(image: Image, extent: Box, xs: np.ndarray, ys: np.ndarray
            ) -> tuple[np.ndarray, np.ndarray]:
    """Nearest-neighbour sample *image* at world points (xs x ys).

    Returns (values, mask) arrays of shape (len(ys), len(xs)); mask is
    True where the point falls inside *extent*.
    """
    if extent.width == 0 or extent.height == 0:
        raise SpatialError("cannot sample an image with a degenerate extent")
    cols = (xs - extent.xmin) / extent.width * image.ncol
    rows = (extent.ymax - ys) / extent.height * image.nrow
    col_idx = np.clip(cols.astype(int), 0, image.ncol - 1)
    row_idx = np.clip(rows.astype(int), 0, image.nrow - 1)
    in_x = (xs >= extent.xmin) & (xs <= extent.xmax)
    in_y = (ys >= extent.ymin) & (ys <= extent.ymax)
    mask = in_y[:, None] & in_x[None, :]
    values = image.data.astype(np.float64)[np.ix_(row_idx, col_idx)]
    return values, mask


def mosaic(pieces: list[tuple[Image, Box]], region: Box,
           nrow: int = 0, ncol: int = 0) -> Image:
    """Mosaic *pieces* (image + extent) onto *region*.

    The output grid defaults to the first piece's pixel density scaled to
    the region.  Overlapping pieces are averaged; uncovered cells raise
    :class:`SpatialError` (use :func:`covers` to plan first).
    """
    if not pieces:
        raise SpatialError("mosaic needs at least one piece")
    first_img, first_ext = pieces[0]
    if nrow <= 0:
        density_y = first_img.nrow / max(first_ext.height, 1e-12)
        nrow = max(int(round(region.height * density_y)), 1)
    if ncol <= 0:
        density_x = first_img.ncol / max(first_ext.width, 1e-12)
        ncol = max(int(round(region.width * density_x)), 1)
    xs = np.linspace(region.xmin, region.xmax, ncol, endpoint=False) \
        + region.width / ncol / 2.0
    ys = np.linspace(region.ymax, region.ymin, nrow, endpoint=False) \
        - region.height / nrow / 2.0
    acc = np.zeros((nrow, ncol))
    weight = np.zeros((nrow, ncol))
    for image, extent in pieces:
        if extent.ref_system != region.ref_system:
            raise SpatialError(
                f"piece in {extent.ref_system!r} cannot mosaic into "
                f"{region.ref_system!r}"
            )
        values, mask = _sample(image, extent, xs, ys)
        acc = np.where(mask, acc + values, acc)
        weight = weight + mask
    if np.any(weight == 0):
        uncovered = int(np.sum(weight == 0))
        raise SpatialError(
            f"mosaic leaves {uncovered} cell(s) uncovered; pieces do not "
            "span the region"
        )
    return Image.from_array(acc / weight, "float4")
