"""Reproduction of *Managing Derived Data in the Gaea Scientific DBMS*
(Hachem, Qiu, Gennert, Ward — VLDB 1993).

The package rebuilds the Gaea kernel from scratch in Python:

* :mod:`repro.adt` — system-level semantics: the ADT facility (primitive
  classes, operators, compound-operator dataflow networks);
* :mod:`repro.spatial` / :mod:`repro.temporal` — the two classic extents;
* :mod:`repro.storage` — the POSTGRES-substitute no-overwrite engine;
* :mod:`repro.core` — the paper's contribution: concepts, processes,
  tasks, Petri-net derivation modeling, the retrieval planner, the
  experiment manager, and the metadata-manager facade;
* :mod:`repro.query` — the GaeaQL interpreter (parser/optimizer/executor);
* :mod:`repro.gis` — the global-change workload substrate (synthetic
  scenes, NDVI, classification, PCA/SPCA, climate indexes);
* :mod:`repro.baseline` — the IDRISI/GRASS-style file-based comparison
  system;
* :mod:`repro.figures` — programmatic builders regenerating the paper's
  figures.

Quickstart::

    from repro import open_session

    session = open_session()
    session.execute('''
        DEFINE CLASS landsat_tm (
          ATTRIBUTES: band = char16; data = image;
          SPATIAL EXTENT: spatialextent = box;
          TEMPORAL EXTENT: timestamp = abstime;
        )
    ''')
"""

from .core import open_kernel
from .query import open_session

__version__ = "1.0.0"

__all__ = ["open_kernel", "open_session", "__version__"]
