"""Reproduction of *Managing Derived Data in the Gaea Scientific DBMS*
(Hachem, Qiu, Gennert, Ward — VLDB 1993).

The package rebuilds the Gaea kernel from scratch in Python:

* :mod:`repro.adt` — system-level semantics: the ADT facility (primitive
  classes, operators, compound-operator dataflow networks);
* :mod:`repro.spatial` / :mod:`repro.temporal` — the two classic extents;
* :mod:`repro.storage` — the POSTGRES-substitute no-overwrite engine;
* :mod:`repro.core` — the paper's contribution: concepts, processes,
  tasks, Petri-net derivation modeling, the retrieval planner, the
  experiment manager, and the metadata-manager facade;
* :mod:`repro.query` — the GaeaQL interpreter (parser/optimizer/executor);
* :mod:`repro.gis` — the global-change workload substrate (synthetic
  scenes, NDVI, classification, PCA/SPCA, climate indexes);
* :mod:`repro.baseline` — the IDRISI/GRASS-style file-based comparison
  system;
* :mod:`repro.figures` — programmatic builders regenerating the paper's
  figures.

Quickstart::

    import repro

    conn = repro.connect()
    cur = conn.cursor()
    cur.execute('''
        DEFINE CLASS landsat_tm (
          ATTRIBUTES: band = char16; data = image;
          SPATIAL EXTENT: spatialextent = box;
          TEMPORAL EXTENT: timestamp = abstime;
        )
    ''')
    scenes = conn.prepare("SELECT FROM landsat_tm WHERE timestamp = ?")
    cur.execute(scenes, ["1986-01-15"])   # planned once, bound per call
    for obj in cur:                        # objects stream lazily
        print(obj.oid, obj["band"])

    cur.execute("CREATE INDEX ON landsat_tm (band)")  # B-tree + replan
    print(cur.explain("SELECT FROM landsat_tm WHERE band = 'nir'"))
    # retrieve landsat_tm: path=retrieve access=index-eq(band='nir') ...

See ``README.md`` and ``docs/`` (architecture, full GaeaQL reference)
for the complete tour.

Migrating from ``open_session``: the legacy session API still works
unchanged (``open_session().execute(source)``), but it re-parses and
re-plans every call.  ``repro.connect()`` returns a
:class:`~repro.query.client.Connection` whose cursors accept the same
GaeaQL, add ``?``/``:name`` bind parameters, reuse plans through an LRU
cache (``conn.cache_hits``), stream results, and scope work in
transactions (``conn.begin()``/``commit()``/``rollback()``).  An
existing session exposes ``session.connection()`` for incremental
migration.
"""

from .core import open_kernel
from .query import Connection, Cursor, PreparedStatement, connect, open_session

__version__ = "2.1.0"

__all__ = [
    "Connection",
    "Cursor",
    "GaeaServer",
    "PreparedStatement",
    "connect",
    "open_kernel",
    "open_session",
    "remote_connect",
    "__version__",
]


def __getattr__(name: str):
    # The server stack imports lazily: plain local use never pays for
    # the socket/server modules, and repro.server importing repro stays
    # cycle-free.
    if name == "GaeaServer":
        from .server import GaeaServer
        return GaeaServer
    if name == "remote_connect":
        from .server.remote import remote_connect
        return remote_connect
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
