"""Programmatic builders regenerating the paper's figures.

The paper has no tables; its evaluation surface is five figures.  Each
``build_figureN`` function constructs the corresponding artifact with the
public API so tests and benchmarks can verify structure and behaviour:

* Figure 1 — the Gaea system architecture (kernel component tree);
* Figure 2 — the three semantic layers: the desert/NDVI/vegetation-change
  concept DAG, the C*/P* class-and-process catalog, and the operator
  layer beneath;
* Figure 3 — the DEFINE PROCESS statement for unsupervised
  classification (P20), parsed from the paper's syntax;
* Figure 4 — the PCA compound operator as a five-node dataflow network;
* Figure 5 — the land-change-detection compound process.

The Figure-2 catalog follows the class/process identifiers the running
text names explicitly: C1 (rectified Landsat TM, base), C2–C5 (hot
trade-wind desert derivations, processes P2–P5, with P5 deriving the
concept *from itself* using C2), C6 (NDVI), C7/C8 (vegetation change by
PCA/SPCA, processes P7/P8), C20 (land cover, P20) and C21 (land-cover
changes, P21).  Identifiers the figure draws but the text never defines
(C10–C13 etc.) are represented by the base climate classes the desert
derivations need.
"""

from __future__ import annotations

from dataclasses import dataclass

from .adt.dataflow import DataflowNetwork
from .adt.operators import OperatorRegistry
from .core.classes import SciObject
from .core.metadata_manager import MetadataManager
from .gis import SceneGenerator
from .query.session import GaeaSession, open_session
from .spatial.box import Box
from .temporal.abstime import AbsTime

__all__ = [
    "Figure2Catalog",
    "FIGURE3_SOURCE",
    "build_figure1",
    "build_figure2",
    "build_figure3",
    "build_figure4",
    "build_figure5",
    "populate_scenes",
]

#: Study region used by all figure builders (roughly Africa in long/lat).
AFRICA = Box(-20.0, -35.0, 52.0, 38.0)


# ---------------------------------------------------------------------------
# Figure 1 — system architecture
# ---------------------------------------------------------------------------


def build_figure1() -> GaeaSession:
    """A complete Gaea stack: kernel + interpreter, as Figure 1 wires it.

    The caller can verify :meth:`MetadataManager.component_tree` has the
    paper's boxes: metadata manager (data type/operator, derivation,
    experiment managers), interpreter (parser/optimizer/executor via the
    session) and the backend.
    """
    return open_session(universe=AFRICA)


# ---------------------------------------------------------------------------
# Figure 2 — the three semantic layers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure2Catalog:
    """Handle to the built Figure-2 database."""

    session: GaeaSession
    concept_names: tuple[str, ...]
    class_names: tuple[str, ...]
    process_names: tuple[str, ...]

    @property
    def kernel(self) -> MetadataManager:
        """The kernel under the session."""
        return self.session.kernel


_FIGURE2_CLASSES = """
DEFINE CLASS avhrr_scene (
  ATTRIBUTES: area = char16; band = char16; data = image;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
)
DEFINE CLASS landsat_tm_rectified (
  ATTRIBUTES: area = char16; band = char16; ref_system = char16;
              ref_unit = char16; data = image;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
)
DEFINE CLASS rainfall_annual (
  ATTRIBUTES: area = char16; data = image;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
)
DEFINE CLASS temperature_annual (
  ATTRIBUTES: area = char16; data = image;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
)
DEFINE CLASS ndvi_c6 (
  ATTRIBUTES: area = char16; data = image;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
  DERIVED BY: P6
)
DEFINE CLASS veg_change_pca_c7 (
  ATTRIBUTES: area = char16; data = image;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
  DERIVED BY: P7
)
DEFINE CLASS veg_change_spca_c8 (
  ATTRIBUTES: area = char16; data = image;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
  DERIVED BY: P8
)
DEFINE CLASS desert_rain250_c2 (
  ATTRIBUTES: area = char16; data = image;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
  DERIVED BY: P2
)
DEFINE CLASS desert_rain200_c3 (
  ATTRIBUTES: area = char16; data = image;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
  DERIVED BY: P3
)
DEFINE CLASS desert_aridity_c4 (
  ATTRIBUTES: area = char16; data = image;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
  DERIVED BY: P4
)
DEFINE CLASS desert_smoothed_c5 (
  ATTRIBUTES: area = char16; data = image;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
  DERIVED BY: P5
)
DEFINE CLASS land_cover_c20 (
  ATTRIBUTES: area = char16; numclass = int4; data = image;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
  DERIVED BY: P20
)
DEFINE CLASS land_cover_changes_c21 (
  ATTRIBUTES: area = char16; data = image;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
  DERIVED BY: P21
)
"""

_FIGURE2_PROCESSES = """
DEFINE PROCESS P6
OUTPUT ndvi_c6
ARGUMENT ( avhrr_scene red, avhrr_scene nir )
TEMPLATE {
  ASSERTIONS:
    str_eq(red.band, 'red');
    str_eq(nir.band, 'nir');
    time_eq(red.timestamp, nir.timestamp);
    img_size_eq(red.data, nir.data);
  MAPPINGS:
    ndvi_c6.data = ndvi(red.data, nir.data);
    ndvi_c6.area = red.area;
    ndvi_c6.spatialextent = red.spatialextent;
    ndvi_c6.timestamp = red.timestamp;
}
DEFINE PROCESS P7
OUTPUT veg_change_pca_c7
ARGUMENT ( SETOF ndvi_c6 series >= 2 )
TEMPLATE {
  ASSERTIONS:
    card(series) >= 2;
    common(series.spatialextent);
  MAPPINGS:
    veg_change_pca_c7.data = pca_change(series);
    veg_change_pca_c7.area = ANYOF series.area;
    veg_change_pca_c7.spatialextent = ANYOF series.spatialextent;
    veg_change_pca_c7.timestamp = ANYOF series.timestamp;
}
DEFINE PROCESS P8
OUTPUT veg_change_spca_c8
ARGUMENT ( SETOF ndvi_c6 series >= 2 )
TEMPLATE {
  ASSERTIONS:
    card(series) >= 2;
    common(series.spatialextent);
  MAPPINGS:
    veg_change_spca_c8.data = spca_change(series);
    veg_change_spca_c8.area = ANYOF series.area;
    veg_change_spca_c8.spatialextent = ANYOF series.spatialextent;
    veg_change_spca_c8.timestamp = ANYOF series.timestamp;
}
DEFINE PROCESS P2
OUTPUT desert_rain250_c2
ARGUMENT ( rainfall_annual rain )
TEMPLATE {
  MAPPINGS:
    desert_rain250_c2.data = desert_mask_rainfall(rain.data, $cutoff);
    desert_rain250_c2.area = rain.area;
    desert_rain250_c2.spatialextent = rain.spatialextent;
    desert_rain250_c2.timestamp = rain.timestamp;
  PARAMETERS:
    cutoff = 250.0;
}
DEFINE PROCESS P3
OUTPUT desert_rain200_c3
ARGUMENT ( rainfall_annual rain )
TEMPLATE {
  MAPPINGS:
    desert_rain200_c3.data = desert_mask_rainfall(rain.data, $cutoff);
    desert_rain200_c3.area = rain.area;
    desert_rain200_c3.spatialextent = rain.spatialextent;
    desert_rain200_c3.timestamp = rain.timestamp;
  PARAMETERS:
    cutoff = 200.0;
}
DEFINE PROCESS P4
OUTPUT desert_aridity_c4
ARGUMENT ( rainfall_annual rain, temperature_annual temp )
TEMPLATE {
  ASSERTIONS:
    img_size_eq(rain.data, temp.data);
  MAPPINGS:
    desert_aridity_c4.data = desert_mask_aridity(aridity_index(rain.data, temp.data), 10.0);
    desert_aridity_c4.area = rain.area;
    desert_aridity_c4.spatialextent = rain.spatialextent;
    desert_aridity_c4.timestamp = rain.timestamp;
}
DEFINE PROCESS P5
OUTPUT desert_smoothed_c5
ARGUMENT ( desert_rain250_c2 d )
TEMPLATE {
  MAPPINGS:
    desert_smoothed_c5.data = img_threshold_above(img_smooth(d.data, 2), 0.5);
    desert_smoothed_c5.area = d.area;
    desert_smoothed_c5.spatialextent = d.spatialextent;
    desert_smoothed_c5.timestamp = d.timestamp;
}
DEFINE PROCESS P20
OUTPUT land_cover_c20
ARGUMENT ( SETOF landsat_tm_rectified bands >= 3 )
TEMPLATE {
  ASSERTIONS:
    card(bands) = 3;
    common(bands.spatialextent);
    common(bands.timestamp);
  MAPPINGS:
    land_cover_c20.data = unsuperclassify(composite(bands), 12);
    land_cover_c20.numclass = 12;
    land_cover_c20.area = ANYOF bands.area;
    land_cover_c20.spatialextent = ANYOF bands.spatialextent;
    land_cover_c20.timestamp = ANYOF bands.timestamp;
}
DEFINE PROCESS P21
OUTPUT land_cover_changes_c21
ARGUMENT ( land_cover_c20 later, land_cover_c20 earlier )
TEMPLATE {
  ASSERTIONS:
    img_size_eq(later.data, earlier.data);
  MAPPINGS:
    land_cover_changes_c21.data = label_changes(later.data, earlier.data);
    land_cover_changes_c21.area = later.area;
    land_cover_changes_c21.spatialextent = later.spatialextent;
    land_cover_changes_c21.timestamp = later.timestamp;
}
"""

_FIGURE2_CONCEPTS = """
DEFINE CONCEPT remote_sensing_data MEMBERS avhrr_scene, landsat_tm_rectified
DEFINE CONCEPT landsat_tm ISA remote_sensing_data MEMBERS landsat_tm_rectified
DEFINE CONCEPT desert
DEFINE CONCEPT hot_trade_wind_desert ISA desert MEMBERS desert_rain250_c2, desert_rain200_c3, desert_aridity_c4, desert_smoothed_c5
DEFINE CONCEPT ice_snow_desert ISA desert
DEFINE CONCEPT ndvi_concept MEMBERS ndvi_c6
DEFINE CONCEPT vegetation_change MEMBERS veg_change_pca_c7, veg_change_spca_c8
DEFINE CONCEPT land_cover_concept MEMBERS land_cover_c20
DEFINE CONCEPT land_cover_changes_concept MEMBERS land_cover_changes_c21
"""


def build_figure2(session: GaeaSession | None = None) -> Figure2Catalog:
    """Build the Figure-2 catalog: classes, processes and concepts."""
    if session is None:
        session = open_session(universe=AFRICA)
    session.execute(_FIGURE2_CLASSES)
    session.execute(_FIGURE2_PROCESSES)
    session.execute(_FIGURE2_CONCEPTS)
    return Figure2Catalog(
        session=session,
        concept_names=(
            "remote_sensing_data", "landsat_tm", "desert",
            "hot_trade_wind_desert", "ice_snow_desert", "ndvi_concept",
            "vegetation_change", "land_cover_concept",
            "land_cover_changes_concept",
        ),
        class_names=(
            "avhrr_scene", "landsat_tm_rectified", "rainfall_annual",
            "temperature_annual", "ndvi_c6", "veg_change_pca_c7",
            "veg_change_spca_c8", "desert_rain250_c2", "desert_rain200_c3",
            "desert_aridity_c4", "desert_smoothed_c5", "land_cover_c20",
            "land_cover_changes_c21",
        ),
        process_names=(
            "P6", "P7", "P8", "P2", "P3", "P4", "P5", "P20", "P21",
        ),
    )


def populate_scenes(catalog: Figure2Catalog, seed: int = 7, size: int = 48,
                    years: tuple[int, ...] = (1988, 1989),
                    region: str = "africa") -> dict[str, list[SciObject]]:
    """Load synthetic base data into a Figure-2 catalog.

    Per year: one AVHRR red/nir pair, three rectified TM bands, plus the
    annual rainfall and temperature rasters.  Returns the stored objects
    by class name.
    """
    gen = SceneGenerator(seed=seed, nrow=size, ncol=size)
    store = catalog.kernel.store
    out: dict[str, list[SciObject]] = {}

    def keep(obj: SciObject) -> None:
        out.setdefault(obj.class_name, []).append(obj)

    for year in years:
        stamp = AbsTime.from_ymd(year, 7, 1)
        for band in ("red", "nir"):
            keep(store.store("avhrr_scene", {
                "area": region, "band": band,
                "data": gen.band(region, year, 7, band),
                "spatialextent": AFRICA, "timestamp": stamp,
            }))
        for band in ("red", "nir", "green"):
            keep(store.store("landsat_tm_rectified", {
                "area": region, "band": band,
                "ref_system": "long/lat", "ref_unit": "degree",
                "data": gen.band(region, year, 7, band),
                "spatialextent": AFRICA, "timestamp": stamp,
            }))
        keep(store.store("rainfall_annual", {
            "area": region, "data": gen.rainfall(region, year),
            "spatialextent": AFRICA, "timestamp": stamp,
        }))
        keep(store.store("temperature_annual", {
            "area": region, "data": gen.temperature(region, year),
            "spatialextent": AFRICA, "timestamp": stamp,
        }))
    return out


# ---------------------------------------------------------------------------
# Figure 3 — DEFINE PROCESS for unsupervised classification
# ---------------------------------------------------------------------------

#: The paper's Figure-3 statement in GaeaQL (P20 over rectified TM).
FIGURE3_SOURCE = """
DEFINE PROCESS unsupervised-classification
OUTPUT land_cover
ARGUMENT ( SETOF landsat_tm_rect bands >= 3 )
TEMPLATE {
  ASSERTIONS:
    card(bands) = 3;
    common(bands.spatialextent);
    common(bands.timestamp);
  MAPPINGS:
    land_cover.data = unsuperclassify(composite(bands), 12);
    land_cover.numclass = 12;
    land_cover.spatialextent = ANYOF bands.spatialextent;
    land_cover.timestamp = ANYOF bands.timestamp;
}
"""


def build_figure3(session: GaeaSession | None = None) -> GaeaSession:
    """Define the Figure-3 class pair and the P20 process verbatim."""
    if session is None:
        session = open_session(universe=AFRICA)
    session.execute("""
    DEFINE CLASS landsat_tm_rect (
      ATTRIBUTES: band = char16; data = image;
      SPATIAL EXTENT: spatialextent = box;
      TEMPORAL EXTENT: timestamp = abstime;
    )
    DEFINE CLASS land_cover (
      ATTRIBUTES: numclass = int4; data = image;
      SPATIAL EXTENT: spatialextent = box;
      TEMPORAL EXTENT: timestamp = abstime;
      DERIVED BY: unsupervised-classification
    )
    """)
    session.execute(FIGURE3_SOURCE)
    return session


# ---------------------------------------------------------------------------
# Figure 4 — the PCA compound operator
# ---------------------------------------------------------------------------


def build_figure4(operators: OperatorRegistry,
                  name: str = "pca_network") -> DataflowNetwork:
    """The five-node PCA dataflow network exactly as Figure 4 draws it.

    ``SET OF image -> convert-image-matrix -> compute-covariance ->
    get-eigen-vector -> linear-combination -> convert-matrix-image ->
    SET OF image``.
    """
    net = DataflowNetwork(name=name, operators=operators,
                          doc="principal component analysis (Figure 4)")
    net.add_input("images", "setof image")
    net.add_node("to_matrices", "convert-image-matrix", ["@images"])
    net.add_node("covariance", "compute-covariance", ["to_matrices"])
    net.add_node("eigenvector", "get-eigen-vector", ["covariance"])
    net.add_node("combined", "linear-combination",
                 ["eigenvector", "to_matrices"])
    net.add_node("to_images", "convert-matrix-image", ["combined"])
    net.set_output("to_images")
    return net


# ---------------------------------------------------------------------------
# Figure 5 — the land-change-detection compound process
# ---------------------------------------------------------------------------


def build_figure5(catalog: Figure2Catalog) -> str:
    """Define Figure 5's compound process on a Figure-2 catalog.

    Two rectified-TM scenes are classified independently (the figure's
    two ``unsupervised classification`` boxes) and compared by P21 (the
    label-change comparison the figure routes into Land-Cover-Changes).
    Returns the compound's name.
    """
    catalog.session.execute("""
    DEFINE COMPOUND PROCESS land-change-detection
    OUTPUT land_cover_changes_c21
    ARGUMENT ( SETOF landsat_tm_rectified tm_early >= 3,
               SETOF landsat_tm_rectified tm_late >= 3 )
    STEPS {
      classify_early: P20 ( bands = $tm_early );
      classify_late: P20 ( bands = $tm_late );
      compare: P21 ( later = classify_late, earlier = classify_early );
    }
    RESULT compare
    """)
    return "land-change-detection"
