"""Value identity and external/internal representations for primitive classes.

The paper (§2.1.3) states that in primitive classes "data objects are value
identified, i.e., the object identifier for a data object is its value" and
that every primitive class carries an *external representation* (a parsable
string form, as in the ``image`` example) and an *internal representation*
(a concrete structure).

This module provides the small protocol both sides of that split use:

* :func:`value_key` — a hashable identity key for any supported internal
  value, fulfilling value identification even for numpy arrays (which are
  not hashable themselves).
* :class:`Representation` — a pairing of ``parse`` / ``format`` callables
  used by :class:`repro.adt.registry.PrimitiveClass`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..errors import ValueRepresentationError

__all__ = ["value_key", "Representation", "identity_representation"]


def _array_digest(array: np.ndarray) -> str:
    """Return a stable content digest for a numpy array.

    The digest covers dtype, shape and raw bytes, so two arrays compare
    equal under :func:`value_key` exactly when they are elementwise
    identical with the same dtype and shape.
    """
    hasher = hashlib.sha256()
    hasher.update(str(array.dtype).encode())
    hasher.update(str(array.shape).encode())
    hasher.update(np.ascontiguousarray(array).tobytes())
    return hasher.hexdigest()


def value_key(value: Any) -> Any:
    """Return a hashable identity key for *value*.

    Primitive-class objects are value identified (paper §2.1.3): changing
    the value always yields a different object.  For plain scalars the
    value itself is the key; for numpy arrays we use a content digest; for
    containers we recurse; for objects exposing a ``value_key()`` method
    (the image/matrix/vector primitive classes) we delegate.
    """
    if hasattr(value, "value_key") and callable(value.value_key):
        return value.value_key()
    if isinstance(value, np.ndarray):
        return ("ndarray", _array_digest(value))
    if isinstance(value, (list, tuple)):
        return (type(value).__name__,) + tuple(value_key(item) for item in value)
    if isinstance(value, frozenset):
        return ("frozenset", frozenset(value_key(item) for item in value))
    if isinstance(value, dict):
        return (
            "dict",
            tuple(sorted((key, value_key(val)) for key, val in value.items())),
        )
    if isinstance(value, np.generic):
        return value.item()
    return value


@dataclass(frozen=True)
class Representation:
    """External/internal representation pair for a primitive class.

    ``parse`` maps an external string to an internal value and ``format``
    maps the internal value back.  Both raise
    :class:`~repro.errors.ValueRepresentationError` on malformed input.
    """

    parse: Callable[[str], Any]
    format: Callable[[Any], str]

    def roundtrip(self, text: str) -> str:
        """Parse *text* and format the result (useful for validation)."""
        return self.format(self.parse(text))


def _identity_parse(text: str) -> str:
    if not isinstance(text, str):
        raise ValueRepresentationError(f"expected str, got {type(text).__name__}")
    return text


def identity_representation() -> Representation:
    """A representation whose external and internal forms are the same
    string — used by character primitive classes such as ``char16``."""
    return Representation(parse=_identity_parse, format=_identity_parse)
