"""Compound operators as dataflow networks (paper §2.1.3, Figure 4).

A *compound operator* "is composed of a network of intercommunicating
operators ... a data flow network of functional operators that are applied
on primitive classes".  Figure 4 shows PCA as such a network:

    SET OF image -> convert-image-matrix -> SET OF matrix
                 -> compute-covariance   -> matrix
                 -> get-eigen-vector     -> vector
    (vector, SET OF matrix) -> linear-combination -> SET OF matrix
                 -> convert-matrix-image -> SET OF image

The network here is a DAG of :class:`Node` objects, each bound to a
registered operator.  Node inputs are named ports wired either to another
node's output or to a network-level input.  Execution topologically
schedules the nodes and applies each operator through the
:class:`~repro.adt.operators.OperatorRegistry`, so every arc is
type-checked.  A finished network can itself be registered as an operator
(:meth:`DataflowNetwork.as_operator`) — "a self-contained compound
operator that can be applied as a primitive mapping function" (§2.1.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from graphlib import CycleError, TopologicalSorter
from typing import Any

from ..errors import DataflowCycleError, DataflowWiringError
from .operators import OperatorRegistry

__all__ = ["Node", "DataflowNetwork"]


@dataclass(frozen=True)
class _Source:
    """Where a node input comes from: a network input or a node output."""

    kind: str  # "input" | "node"
    name: str


@dataclass
class Node:
    """One operator application inside a dataflow network."""

    name: str
    operator: str
    inputs: list[_Source] = field(default_factory=list)


@dataclass
class DataflowNetwork:
    """A DAG of operator applications usable as a compound operator.

    Build with :meth:`add_input`, :meth:`add_node`, :meth:`set_output`;
    run with :meth:`execute`.
    """

    name: str
    operators: OperatorRegistry
    doc: str = ""
    _inputs: list[str] = field(default_factory=list)
    _input_types: dict[str, str] = field(default_factory=dict)
    _nodes: dict[str, Node] = field(default_factory=dict)
    _output_node: str | None = None

    # -- construction ---------------------------------------------------------

    def add_input(self, name: str, type_term: str) -> None:
        """Declare a network-level input port with a type term
        (e.g. ``"setof image"``)."""
        if name in self._input_types:
            raise DataflowWiringError(f"duplicate network input {name!r}")
        self._inputs.append(name)
        self._input_types[name] = type_term

    def add_node(self, name: str, operator: str,
                 inputs: list[str]) -> Node:
        """Add a node applying *operator* to the named sources.

        Each source is either ``"@portname"`` (a network input) or a node
        name (that node's output).
        """
        if name in self._nodes:
            raise DataflowWiringError(f"duplicate node name {name!r}")
        self.operators.overloads(operator)  # raises if unknown
        sources = []
        for src in inputs:
            if src.startswith("@"):
                port = src[1:]
                if port not in self._input_types:
                    raise DataflowWiringError(
                        f"node {name!r} references unknown network input "
                        f"{port!r}"
                    )
                sources.append(_Source(kind="input", name=port))
            else:
                if src not in self._nodes:
                    raise DataflowWiringError(
                        f"node {name!r} references unknown node {src!r} "
                        "(nodes must be added in dependency order)"
                    )
                sources.append(_Source(kind="node", name=src))
        node = Node(name=name, operator=operator, inputs=sources)
        self._nodes[name] = node
        return node

    def set_output(self, node_name: str) -> None:
        """Declare which node's output is the network output."""
        if node_name not in self._nodes:
            raise DataflowWiringError(f"unknown output node {node_name!r}")
        self._output_node = node_name

    # -- introspection ----------------------------------------------------------

    @property
    def input_names(self) -> list[str]:
        """Declared network input ports, in declaration order."""
        return list(self._inputs)

    @property
    def node_names(self) -> list[str]:
        """All node names, in insertion order."""
        return list(self._nodes)

    def node(self, name: str) -> Node:
        """The node called *name*."""
        try:
            return self._nodes[name]
        except KeyError:
            raise DataflowWiringError(f"unknown node {name!r}") from None

    def edges(self) -> list[tuple[str, str]]:
        """Node-to-node arcs ``(producer, consumer)``."""
        out = []
        for node in self._nodes.values():
            for src in node.inputs:
                if src.kind == "node":
                    out.append((src.name, node.name))
        return out

    def schedule(self) -> list[str]:
        """Topological execution order of node names."""
        graph: dict[str, set[str]] = {name: set() for name in self._nodes}
        for producer, consumer in self.edges():
            graph[consumer].add(producer)
        try:
            return list(TopologicalSorter(graph).static_order())
        except CycleError as exc:
            raise DataflowCycleError(str(exc)) from exc

    def validate(self) -> None:
        """Check the network is complete: an output is set, every node
        reachable, no cycles."""
        if self._output_node is None:
            raise DataflowWiringError(f"network {self.name!r} has no output node")
        self.schedule()

    # -- execution ---------------------------------------------------------------

    def execute(self, **bindings: Any) -> Any:
        """Run the network with network inputs bound by name.

        Returns the output node's value.  Intermediate values are
        type-checked by the operator registry at every application.
        """
        self.validate()
        missing = [port for port in self._inputs if port not in bindings]
        if missing:
            raise DataflowWiringError(
                f"missing bindings for network input(s): {missing}"
            )
        extra = [key for key in bindings if key not in self._input_types]
        if extra:
            raise DataflowWiringError(f"unknown network input(s): {extra}")

        values: dict[str, Any] = {}
        for node_name in self.schedule():
            node = self._nodes[node_name]
            args = []
            for src in node.inputs:
                if src.kind == "input":
                    args.append(bindings[src.name])
                else:
                    args.append(values[src.name])
            values[node_name] = self.operators.apply(node.operator, *args)
        assert self._output_node is not None
        return values[self._output_node]

    def trace(self, **bindings: Any) -> dict[str, Any]:
        """Like :meth:`execute` but returns every node's value by name —
        used by tests and by provenance recording."""
        self.validate()
        values: dict[str, Any] = {}
        for node_name in self.schedule():
            node = self._nodes[node_name]
            args = [
                bindings[src.name] if src.kind == "input" else values[src.name]
                for src in node.inputs
            ]
            values[node_name] = self.operators.apply(node.operator, *args)
        return values

    # -- promotion to an operator --------------------------------------------------

    def as_operator(self, result_type: str) -> None:
        """Register this network as a first-class operator.

        The compound operator takes the network inputs (in declaration
        order) with their declared type terms and returns *result_type* —
        §2.1.5: compound operators "can be applied as a primitive mapping
        function between two primitive classes."
        """
        self.validate()
        arg_types = [self._input_types[port] for port in self._inputs]

        def run(*args: Any) -> Any:
            return self.execute(**dict(zip(self._inputs, args)))

        self.operators.register(
            self.name, arg_types, result_type, run,
            doc=self.doc or f"compound operator ({len(self._nodes)} nodes)",
        )
