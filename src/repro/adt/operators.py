"""Operators: functions encapsulating primitive classes (paper §2.1.3).

"Following Postgres, functions on primitive classes are called operators."
An operator has a *signature* over primitive-class names and a Python
callable implementing it.  The registry supports the browsing the paper
promises (§4.2): look up operators applicable to a primitive class, or
find the classes having a given operator.

Signatures use two type-term forms:

* a plain primitive-class name, e.g. ``"image"``;
* ``"setof <name>"`` — a sequence of that class, as in Figure 4's
  ``SET OF image`` / ``SET OF matrix`` arcs.  A ``setof`` term may carry a
  minimum cardinality, the *threshold* semantics of the modified Petri net
  (§2.1.6 modification 2: "for PCA, two input data images are enough, but
  more than two are usually used").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..errors import (
    OperatorAlreadyRegisteredError,
    SignatureMismatchError,
    UnknownOperatorError,
    ValueRepresentationError,
)
from .registry import TypeRegistry

__all__ = ["TypeTerm", "Signature", "Operator", "OperatorRegistry"]


@dataclass(frozen=True)
class TypeTerm:
    """One argument (or result) slot in an operator signature."""

    type_name: str
    is_set: bool = False
    min_cardinality: int = 1

    @staticmethod
    def parse(term: "str | TypeTerm") -> "TypeTerm":
        """Parse ``"image"`` or ``"setof image"`` / ``"setof>=2 image"``."""
        if isinstance(term, TypeTerm):
            return term
        parts = term.split()
        if len(parts) == 1:
            return TypeTerm(type_name=parts[0])
        if len(parts) == 2 and parts[0].startswith("setof"):
            minimum = 1
            suffix = parts[0][len("setof"):]
            if suffix.startswith(">="):
                minimum = int(suffix[2:])
            elif suffix:
                raise ValueRepresentationError(f"bad type term {term!r}")
            return TypeTerm(type_name=parts[1], is_set=True, min_cardinality=minimum)
        raise ValueRepresentationError(f"bad type term {term!r}")

    def __str__(self) -> str:
        if not self.is_set:
            return self.type_name
        if self.min_cardinality > 1:
            return f"setof>={self.min_cardinality} {self.type_name}"
        return f"setof {self.type_name}"


@dataclass(frozen=True)
class Signature:
    """Argument and result types of an operator."""

    arg_terms: tuple[TypeTerm, ...]
    result_term: TypeTerm

    @staticmethod
    def of(arg_types: Sequence[str | TypeTerm], result_type: str | TypeTerm
           ) -> "Signature":
        """Build from string terms, e.g. ``Signature.of(["setof image",
        "int4"], "image")``."""
        return Signature(
            arg_terms=tuple(TypeTerm.parse(t) for t in arg_types),
            result_term=TypeTerm.parse(result_type),
        )

    @property
    def arity(self) -> int:
        """Number of argument slots."""
        return len(self.arg_terms)

    def __str__(self) -> str:
        args = ", ".join(str(t) for t in self.arg_terms)
        return f"({args}) -> {self.result_term}"


@dataclass(frozen=True)
class Operator:
    """A named, typed function over primitive classes."""

    name: str
    signature: Signature
    fn: Callable[..., Any]
    doc: str = ""

    def __str__(self) -> str:
        return f"{self.name}{self.signature}"


@dataclass
class OperatorRegistry:
    """Registry of operators, type-checked against a :class:`TypeRegistry`.

    Overloading is supported: the same name may be registered with
    different signatures; resolution picks the first signature whose
    arg terms accept the actual values.
    """

    types: TypeRegistry
    _by_name: dict[str, list[Operator]] = field(default_factory=dict)

    def register(self, name: str, arg_types: Sequence[str | TypeTerm],
                 result_type: str | TypeTerm, fn: Callable[..., Any],
                 doc: str = "") -> Operator:
        """Register an operator; raises on exact-signature duplicates and
        on signatures naming unregistered primitive classes."""
        signature = Signature.of(arg_types, result_type)
        for term in signature.arg_terms + (signature.result_term,):
            self.types.get(term.type_name)  # raises UnknownTypeError
        op = Operator(name=name, signature=signature, fn=fn, doc=doc)
        bucket = self._by_name.setdefault(name, [])
        if any(existing.signature == signature for existing in bucket):
            raise OperatorAlreadyRegisteredError(f"{name}{signature}")
        bucket.append(op)
        return op

    def overloads(self, name: str) -> list[Operator]:
        """All operators registered under *name*."""
        try:
            return list(self._by_name[name])
        except KeyError:
            raise UnknownOperatorError(name) from None

    def get(self, name: str) -> Operator:
        """The unique operator called *name* (error when overloaded)."""
        ops = self.overloads(name)
        if len(ops) > 1:
            raise UnknownOperatorError(
                f"{name} is overloaded ({len(ops)} signatures); use resolve()"
            )
        return ops[0]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def names(self) -> list[str]:
        """All registered operator names."""
        return list(self._by_name)

    # -- value/type checking --------------------------------------------------

    def _accepts(self, term: TypeTerm, value: Any) -> bool:
        cls = self.types.get(term.type_name)
        if term.is_set:
            if not isinstance(value, (list, tuple)):
                return False
            if len(value) < term.min_cardinality:
                return False
            return all(cls.accepts(item) for item in value)
        return cls.accepts(value)

    def _matches(self, op: Operator, args: Sequence[Any]) -> bool:
        if len(args) != op.signature.arity:
            return False
        return all(
            self._accepts(term, arg)
            for term, arg in zip(op.signature.arg_terms, args)
        )

    def resolve(self, name: str, args: Sequence[Any]) -> Operator:
        """Pick the overload of *name* accepting *args*."""
        candidates = self.overloads(name)
        for op in candidates:
            if self._matches(op, args):
                return op
        sigs = "; ".join(str(op.signature) for op in candidates)
        raise SignatureMismatchError(
            f"no overload of {name} accepts {len(args)} given argument(s); "
            f"have: {sigs}"
        )

    def apply(self, name: str, *args: Any) -> Any:
        """Type-check *args*, run the operator, and type-check the result."""
        op = self.resolve(name, args)
        normalized = []
        for term, arg in zip(op.signature.arg_terms, args):
            cls = self.types.get(term.type_name)
            if term.is_set:
                normalized.append([cls.validate(item) for item in arg])
            else:
                normalized.append(cls.validate(arg))
        result = op.fn(*normalized)
        result_term = op.signature.result_term
        result_cls = self.types.get(result_term.type_name)
        if result_term.is_set:
            if not isinstance(result, (list, tuple)):
                raise SignatureMismatchError(
                    f"{name} declared {result_term} but returned "
                    f"{type(result).__name__}"
                )
            return [result_cls.validate(item) for item in result]
        return result_cls.validate(result)

    # -- browsing (paper §4.2) --------------------------------------------------

    def operators_for(self, type_name: str) -> list[Operator]:
        """Operators applicable to the primitive class *type_name*
        (appearing in any argument slot, including via subtyping)."""
        self.types.get(type_name)
        found = []
        for ops in self._by_name.values():
            for op in ops:
                for term in op.signature.arg_terms:
                    if self.types.is_subtype(type_name, term.type_name):
                        found.append(op)
                        break
        return found

    def classes_with(self, operator_name: str) -> set[str]:
        """Primitive-class names appearing in argument slots of the named
        operator — 'find the primitive classes that have a specific
        operator' (paper §4.2)."""
        classes: set[str] = set()
        for op in self.overloads(operator_name):
            for term in op.signature.arg_terms:
                classes.add(term.type_name)
        return classes
