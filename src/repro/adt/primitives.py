"""Built-in scalar primitive classes.

Registers the primitive classes named throughout the paper — ``int2``,
``int4``, ``float4``, ``float8``, ``char``, ``char16``, ``bool`` — plus the
extent carriers ``box`` (spatial bounding box) and ``abstime`` (absolute
time), which Figure 3 and the ``landcover`` class definition use as
attribute types.

Each class gets a validator that normalizes to the canonical internal
representation (e.g. ``int4`` clamps nothing but *checks* range, because a
scientific DBMS should refuse silently-wrapping values) and an external
string representation.
"""

from __future__ import annotations

from functools import partial
from typing import Any

import numpy as np

from ..errors import ValueRepresentationError
from ..spatial.box import Box
from ..temporal.abstime import AbsTime
from .registry import PrimitiveClass, TypeRegistry
from .values import Representation, identity_representation

__all__ = ["register_scalar_primitives", "INT2_RANGE", "INT4_RANGE"]

INT2_RANGE = (-(2**15), 2**15 - 1)
INT4_RANGE = (-(2**31), 2**31 - 1)


def _validate_int(lo: int, hi: int, name: str, value: Any) -> int:
    if isinstance(value, bool):
        raise ValueRepresentationError(f"{name}: bool is not an integer")
    if isinstance(value, np.integer):
        value = int(value)
    if not isinstance(value, int):
        raise ValueRepresentationError(
            f"{name}: expected int, got {type(value).__name__}"
        )
    if not lo <= value <= hi:
        raise ValueRepresentationError(f"{name}: {value} out of range [{lo},{hi}]")
    return value


def _int_validator(lo: int, hi: int, name: str):
    # functools.partial of a module-level function: picklable, unlike a
    # closure — kernel checkpoints serialize the type registry.
    return partial(_validate_int, lo, hi, name)


def _validate_float(name: str, single: bool, value: Any) -> float:
    if isinstance(value, bool):
        raise ValueRepresentationError(f"{name}: bool is not a float")
    if isinstance(value, (np.floating, np.integer)):
        value = float(value)
    if isinstance(value, int):
        value = float(value)
    if not isinstance(value, float):
        raise ValueRepresentationError(
            f"{name}: expected float, got {type(value).__name__}"
        )
    if single:
        # Normalize through float32 the way a 4-byte column would.
        value = float(np.float32(value))
    return value


def _float_validator(name: str, single: bool):
    return partial(_validate_float, name, single)


def _validate_char(limit: int | None, name: str, value: Any) -> str:
    if not isinstance(value, str):
        raise ValueRepresentationError(
            f"{name}: expected str, got {type(value).__name__}"
        )
    if limit is not None and len(value) > limit:
        raise ValueRepresentationError(
            f"{name}: length {len(value)} exceeds limit {limit}"
        )
    return value


def _char_validator(limit: int | None, name: str):
    return partial(_validate_char, limit, name)


def _bool_validator(value: Any) -> bool:
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    raise ValueRepresentationError(f"bool: expected bool, got {type(value).__name__}")


def _parse_int(text: str) -> int:
    try:
        return int(text.strip())
    except (ValueError, AttributeError) as exc:
        raise ValueRepresentationError(f"bad integer literal {text!r}") from exc


def _parse_float(text: str) -> float:
    try:
        return float(text.strip())
    except (ValueError, AttributeError) as exc:
        raise ValueRepresentationError(f"bad float literal {text!r}") from exc


def _parse_bool(text: str) -> bool:
    lowered = text.strip().lower()
    if lowered in ("t", "true", "1"):
        return True
    if lowered in ("f", "false", "0"):
        return False
    raise ValueRepresentationError(f"bad boolean literal {text!r}")


def _format_bool(value: bool) -> str:
    return "true" if value else "false"


def _parse_box(text: str) -> Box:
    return Box.parse(text)


def _parse_abstime(text: str) -> AbsTime:
    return AbsTime.parse(text)


def register_scalar_primitives(registry: TypeRegistry) -> None:
    """Register the paper's scalar primitive classes into *registry*.

    The hierarchy mirrors how a user would browse it: ``numeric`` and
    ``character`` abstract roots with concrete width-specific leaves.
    """
    registry.register(
        PrimitiveClass(
            name="numeric",
            validate=_float_validator("numeric", single=False),
            representation=Representation(parse=_parse_float, format=repr),
            doc="Abstract numeric root (browsing only).",
        )
    )
    registry.register(
        PrimitiveClass(
            name="int2",
            validate=_int_validator(*INT2_RANGE, "int2"),
            representation=Representation(parse=_parse_int, format=str),
            parent="numeric",
            doc="16-bit signed integer.",
        )
    )
    registry.register(
        PrimitiveClass(
            name="int4",
            validate=_int_validator(*INT4_RANGE, "int4"),
            representation=Representation(parse=_parse_int, format=str),
            parent="numeric",
            doc="32-bit signed integer.",
        )
    )
    registry.register(
        PrimitiveClass(
            name="float4",
            validate=_float_validator("float4", single=True),
            representation=Representation(parse=_parse_float, format=repr),
            parent="numeric",
            doc="Single-precision float (normalized through float32).",
        )
    )
    registry.register(
        PrimitiveClass(
            name="float8",
            validate=_float_validator("float8", single=False),
            representation=Representation(parse=_parse_float, format=repr),
            parent="numeric",
            doc="Double-precision float.",
        )
    )
    registry.register(
        PrimitiveClass(
            name="character",
            validate=_char_validator(None, "character"),
            representation=identity_representation(),
            doc="Abstract character root (browsing only).",
        )
    )
    registry.register(
        PrimitiveClass(
            name="char16",
            validate=_char_validator(16, "char16"),
            representation=identity_representation(),
            parent="character",
            doc="Character string of at most 16 bytes (paper's char16).",
        )
    )
    registry.register(
        PrimitiveClass(
            name="text",
            validate=_char_validator(None, "text"),
            representation=identity_representation(),
            parent="character",
            doc="Unbounded character string.",
        )
    )
    registry.register(
        PrimitiveClass(
            name="bool",
            validate=_bool_validator,
            representation=Representation(
                parse=_parse_bool, format=_format_bool
            ),
            doc="Boolean.",
        )
    )
    registry.register(
        PrimitiveClass(
            name="box",
            validate=Box.validate,
            representation=Representation(parse=_parse_box, format=str),
            doc="Spatial bounding box: the SPATIAL EXTENT carrier.",
        )
    )
    registry.register(
        PrimitiveClass(
            name="abstime",
            validate=AbsTime.validate,
            representation=Representation(parse=_parse_abstime, format=str),
            doc="Absolute time: the TEMPORAL EXTENT carrier.",
        )
    )
