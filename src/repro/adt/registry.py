"""Type registry: the primitive-class half of the ADT facility.

In Gaea (paper §2.1.3) the system level manages *primitive classes* —
abstract data types encapsulated with the operators that apply to them.
Our registry substitutes for the POSTGRES ADT facility the prototype used:
users can define new primitive classes dynamically, browse them in a
hierarchy, and attach operators (see :mod:`repro.adt.operators`).

A primitive class consists of:

* a name (``int4``, ``float8``, ``char16``, ``image``, ...),
* a validator for internal values,
* an external/internal :class:`~repro.adt.values.Representation`,
* an optional parent class name, giving the browsable hierarchy the paper
  describes ("all the primitive classes and their operators are managed
  in a hierarchical structure", §4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..errors import (
    TypeAlreadyRegisteredError,
    UnknownTypeError,
    ValueRepresentationError,
)
from .values import Representation

__all__ = ["PrimitiveClass", "TypeRegistry"]


@dataclass(frozen=True)
class PrimitiveClass:
    """A system-level primitive class (an ADT).

    ``validate`` returns the (possibly normalized) internal value or raises
    :class:`~repro.errors.ValueRepresentationError`.
    """

    name: str
    validate: Callable[[Any], Any]
    representation: Representation
    parent: str | None = None
    doc: str = ""

    def parse(self, text: str) -> Any:
        """Parse an external-representation string to an internal value."""
        return self.validate(self.representation.parse(text))

    def format(self, value: Any) -> str:
        """Format an internal value as its external representation."""
        return self.representation.format(self.validate(value))

    def accepts(self, value: Any) -> bool:
        """Return ``True`` when *value* is a valid instance of this class."""
        try:
            self.validate(value)
        except ValueRepresentationError:
            return False
        return True


@dataclass
class TypeRegistry:
    """Registry of primitive classes with hierarchy browsing.

    The registry is deliberately an instance (not module state) so that a
    Gaea kernel owns its own extensible type system, as the Postgres ADT
    facility is owned by a database.
    """

    _classes: dict[str, PrimitiveClass] = field(default_factory=dict)

    def register(self, cls: PrimitiveClass) -> PrimitiveClass:
        """Register *cls*; raises if the name is taken or the parent is
        unknown."""
        if cls.name in self._classes:
            raise TypeAlreadyRegisteredError(cls.name)
        if cls.parent is not None and cls.parent not in self._classes:
            raise UnknownTypeError(
                f"parent {cls.parent!r} of {cls.name!r} is not registered"
            )
        self._classes[cls.name] = cls
        return cls

    def get(self, name: str) -> PrimitiveClass:
        """Return the primitive class called *name*."""
        try:
            return self._classes[name]
        except KeyError:
            raise UnknownTypeError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def __iter__(self) -> Iterator[PrimitiveClass]:
        return iter(self._classes.values())

    def __len__(self) -> int:
        return len(self._classes)

    def names(self) -> list[str]:
        """All registered primitive-class names, in registration order."""
        return list(self._classes)

    def children(self, name: str) -> list[PrimitiveClass]:
        """Direct subclasses of *name* in the browsable hierarchy."""
        self.get(name)
        return [cls for cls in self._classes.values() if cls.parent == name]

    def ancestors(self, name: str) -> list[PrimitiveClass]:
        """Chain of parents of *name*, nearest first."""
        chain: list[PrimitiveClass] = []
        current = self.get(name)
        while current.parent is not None:
            current = self.get(current.parent)
            chain.append(current)
        return chain

    def is_subtype(self, name: str, ancestor: str) -> bool:
        """True when *name* equals *ancestor* or descends from it."""
        if name == ancestor:
            self.get(name)
            return True
        return any(cls.name == ancestor for cls in self.ancestors(name))

    def roots(self) -> list[PrimitiveClass]:
        """Primitive classes with no parent (hierarchy roots)."""
        return [cls for cls in self._classes.values() if cls.parent is None]

    def tree(self) -> dict[str, list[str]]:
        """Adjacency mapping parent name -> child names for browsing."""
        out: dict[str, list[str]] = {cls.name: [] for cls in self._classes.values()}
        for cls in self._classes.values():
            if cls.parent is not None:
                out[cls.parent].append(cls.name)
        return out

    def validate_value(self, type_name: str, value: Any) -> Any:
        """Validate *value* against the named class, returning the
        normalized internal value."""
        return self.get(type_name).validate(value)
