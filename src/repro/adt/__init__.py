"""System-level semantics layer: the ADT facility (paper §2.1.3).

This package substitutes for the POSTGRES ADT facility the Gaea prototype
was built on: a dynamically extensible registry of *primitive classes*
(value-identified abstract data types) and the *operators* encapsulating
them, plus compound operators expressed as dataflow networks (Figure 4).

Typical setup::

    from repro.adt import make_standard_registries

    types, ops = make_standard_registries()
    ops.apply("img_nrow", some_image)
"""

from .builtin_ops import register_builtin_operators
from .dataflow import DataflowNetwork, Node
from .image import Image, PIXTYPE_DTYPES, register_image_class
from .matrix import Matrix, register_matrix_class
from .operators import Operator, OperatorRegistry, Signature, TypeTerm
from .primitives import register_scalar_primitives
from .registry import PrimitiveClass, TypeRegistry
from .values import Representation, value_key
from .vector import Vector, register_vector_class

__all__ = [
    "DataflowNetwork",
    "Image",
    "Matrix",
    "Node",
    "Operator",
    "OperatorRegistry",
    "PIXTYPE_DTYPES",
    "PrimitiveClass",
    "Representation",
    "Signature",
    "TypeRegistry",
    "TypeTerm",
    "Vector",
    "make_standard_registries",
    "register_builtin_operators",
    "register_image_class",
    "register_matrix_class",
    "register_scalar_primitives",
    "register_vector_class",
    "value_key",
]


def make_standard_registries() -> tuple[TypeRegistry, OperatorRegistry]:
    """Build a type registry with all standard primitive classes and an
    operator registry with all built-in operators — the system level a
    fresh Gaea kernel starts from."""
    types = TypeRegistry()
    register_scalar_primitives(types)
    register_image_class(types)
    register_matrix_class(types)
    register_vector_class(types)
    ops = OperatorRegistry(types=types)
    register_builtin_operators(ops)
    return types, ops
