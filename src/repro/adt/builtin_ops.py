"""Built-in operators on the core primitive classes.

Registers the image accessors the paper lists verbatim in §2.1.3
(``img_nrow``, ``img_ncol``, ``img_type``, ``img_filepath``,
``img_size_eq``) plus the raster-algebra operators the derivation
processes in Figure 2 need (subtract/divide for the NDVI-change scenario
of §1, thresholding for desert classification, ...).  Domain-specific
analysis operators (NDVI, classification, PCA stages) are registered
separately by :func:`repro.gis.register_gis_operators`.
"""

from __future__ import annotations

import numpy as np

from ..errors import SignatureMismatchError
from .image import Image
from .matrix import Matrix
from .operators import OperatorRegistry
from .vector import Vector

__all__ = ["register_builtin_operators"]


def _require_same_size(img1: Image, img2: Image, op_name: str) -> None:
    if not img1.size_eq(img2):
        raise SignatureMismatchError(
            f"{op_name}: image sizes differ ({img1.shape} vs {img2.shape})"
        )


def _img_add(img1: Image, img2: Image) -> Image:
    _require_same_size(img1, img2, "img_add")
    return Image.from_array(
        img1.data.astype(np.float64) + img2.data.astype(np.float64), "float4"
    )


def _img_subtract(img1: Image, img2: Image) -> Image:
    _require_same_size(img1, img2, "img_subtract")
    return Image.from_array(
        img1.data.astype(np.float64) - img2.data.astype(np.float64), "float4"
    )


def _img_multiply(img1: Image, img2: Image) -> Image:
    _require_same_size(img1, img2, "img_multiply")
    return Image.from_array(
        img1.data.astype(np.float64) * img2.data.astype(np.float64), "float4"
    )


def _img_divide(img1: Image, img2: Image) -> Image:
    """Pixelwise ratio with zero-denominator pixels mapped to 0 — the
    'divide the NDVI of 1989 by that of 1988' scenario (paper §1)."""
    _require_same_size(img1, img2, "img_divide")
    num = img1.data.astype(np.float64)
    den = img2.data.astype(np.float64)
    out = np.zeros_like(num)
    np.divide(num, den, out=out, where=den != 0)
    return Image.from_array(out, "float4")


def _img_scale(img: Image, factor: float) -> Image:
    return Image.from_array(img.data.astype(np.float64) * factor, "float4")


def _img_offset(img: Image, delta: float) -> Image:
    return Image.from_array(img.data.astype(np.float64) + delta, "float4")


def _img_threshold(img: Image, cutoff: float) -> Image:
    """Binary mask: 1 where pixel < cutoff, else 0 (e.g. rainfall <
    250 mm/year for hot trade-wind deserts, paper §2.1.1)."""
    return Image.from_array((img.data.astype(np.float64) < cutoff), "char")


def _img_threshold_above(img: Image, cutoff: float) -> Image:
    """Binary mask: 1 where pixel >= cutoff, else 0."""
    return Image.from_array((img.data.astype(np.float64) >= cutoff), "char")


def _img_and(img1: Image, img2: Image) -> Image:
    _require_same_size(img1, img2, "img_and")
    return Image.from_array(
        (img1.data != 0) & (img2.data != 0), "char"
    )


def _img_or(img1: Image, img2: Image) -> Image:
    _require_same_size(img1, img2, "img_or")
    return Image.from_array(
        (img1.data != 0) | (img2.data != 0), "char"
    )


def _img_mean(img: Image) -> float:
    return float(np.mean(img.data.astype(np.float64)))


def _img_std(img: Image) -> float:
    return float(np.std(img.data.astype(np.float64)))


def _img_min(img: Image) -> float:
    return float(np.min(img.data.astype(np.float64)))


def _img_max(img: Image) -> float:
    return float(np.max(img.data.astype(np.float64)))


def _img_cast(img: Image, pixtype: str) -> Image:
    return Image.from_array(img.data, pixtype)


def _mat_transpose(mat: Matrix) -> Matrix:
    return Matrix.from_array(mat.data.T)


def _mat_multiply(mat1: Matrix, mat2: Matrix) -> Matrix:
    if mat1.ncol != mat2.nrow:
        raise SignatureMismatchError(
            f"mat_multiply: inner dimensions differ ({mat1.shape} x {mat2.shape})"
        )
    return Matrix.from_array(mat1.data @ mat2.data)


def _vec_dot(vec1: Vector, vec2: Vector) -> float:
    if len(vec1) != len(vec2):
        raise SignatureMismatchError(
            f"vec_dot: lengths differ ({len(vec1)} vs {len(vec2)})"
        )
    return float(np.dot(vec1.data, vec2.data))


def _vec_norm(vec: Vector) -> float:
    return float(np.linalg.norm(vec.data))


def register_builtin_operators(ops: OperatorRegistry) -> None:
    """Register all built-in operators into *ops*.

    Requires the scalar, image, matrix and vector primitive classes to be
    registered in ``ops.types`` already.
    """
    # -- the paper's §2.1.3 accessors ----------------------------------------
    ops.register("img_nrow", ["image"], "int4", lambda img: img.nrow,
                 doc="return # of rows")
    ops.register("img_ncol", ["image"], "int4", lambda img: img.ncol,
                 doc="return # of columns")
    ops.register("img_type", ["image"], "char16", lambda img: img.pixtype,
                 doc="return a pixel's data type")
    ops.register("img_filepath", ["image"], "text", lambda img: img.filepath,
                 doc="return the file name which stores the data")
    ops.register("img_size_eq", ["image", "image"], "bool",
                 lambda a, b: a.size_eq(b),
                 doc="check if 2 image sizes are equal")

    # -- raster algebra --------------------------------------------------------
    ops.register("img_add", ["image", "image"], "image", _img_add,
                 doc="pixelwise sum")
    ops.register("img_subtract", ["image", "image"], "image", _img_subtract,
                 doc="pixelwise difference (NDVI-change by subtraction, §1)")
    ops.register("img_multiply", ["image", "image"], "image", _img_multiply,
                 doc="pixelwise product")
    ops.register("img_divide", ["image", "image"], "image", _img_divide,
                 doc="pixelwise ratio (NDVI-change by division, §1)")
    ops.register("img_scale", ["image", "float8"], "image", _img_scale,
                 doc="multiply all pixels by a constant")
    ops.register("img_offset", ["image", "float8"], "image", _img_offset,
                 doc="add a constant to all pixels")
    ops.register("img_threshold", ["image", "float8"], "image", _img_threshold,
                 doc="binary mask of pixels below a cutoff")
    ops.register("img_threshold_above", ["image", "float8"], "image",
                 _img_threshold_above,
                 doc="binary mask of pixels at/above a cutoff")
    ops.register("img_and", ["image", "image"], "image", _img_and,
                 doc="pixelwise logical AND of masks")
    ops.register("img_or", ["image", "image"], "image", _img_or,
                 doc="pixelwise logical OR of masks")
    ops.register("img_cast", ["image", "char16"], "image", _img_cast,
                 doc="cast pixels to another pixtype")

    # -- image statistics --------------------------------------------------------
    ops.register("img_mean", ["image"], "float8", _img_mean,
                 doc="mean pixel value")
    ops.register("img_std", ["image"], "float8", _img_std,
                 doc="pixel standard deviation")
    ops.register("img_min", ["image"], "float8", _img_min,
                 doc="minimum pixel value")
    ops.register("img_max", ["image"], "float8", _img_max,
                 doc="maximum pixel value")

    # -- scalar comparisons (used by template assertions) ----------------------
    ops.register("str_eq", ["text", "text"], "bool",
                 lambda a, b: a == b,
                 doc="string equality (assertion helper)")
    ops.register("num_eq", ["float8", "float8"], "bool",
                 lambda a, b: a == b,
                 doc="numeric equality (assertion helper)")
    ops.register("num_le", ["float8", "float8"], "bool",
                 lambda a, b: a <= b,
                 doc="numeric <= (assertion helper)")
    ops.register("time_eq", ["abstime", "abstime"], "bool",
                 lambda a, b: a == b,
                 doc="timestamp equality (assertion helper)")
    ops.register("box_overlaps", ["box", "box"], "bool",
                 lambda a, b: a.overlaps(b),
                 doc="spatial overlap (assertion helper)")
    ops.register("area", ["box"], "float8",
                 lambda b: b.area,
                 doc="box area in squared reference units")

    # -- matrix / vector helpers ---------------------------------------------------
    ops.register("mat_transpose", ["matrix"], "matrix", _mat_transpose,
                 doc="matrix transpose")
    ops.register("mat_multiply", ["matrix", "matrix"], "matrix", _mat_multiply,
                 doc="matrix product")
    ops.register("vec_dot", ["vector", "vector"], "float8", _vec_dot,
                 doc="dot product")
    ops.register("vec_norm", ["vector"], "float8", _vec_norm,
                 doc="Euclidean norm")
