"""The ``image`` primitive class (paper §2.1.3).

The paper defines ``image`` with external representation
``"(nrows, ncols, pixtype, filepath)"`` and an internal struct of the same
fields, the pixels living in a file.  Here pixels live in a numpy array
(``data``); an optional ``filepath`` is kept for compatibility with the
file-based baseline and the external representation.

Supported ``pixtype`` values follow the paper: ``char``, ``int2``,
``int4``, ``float4``, ``float8``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..errors import ValueRepresentationError
from .values import value_key as _value_key

__all__ = ["Image", "PIXTYPE_DTYPES", "register_image_class"]

PIXTYPE_DTYPES: dict[str, np.dtype] = {
    "char": np.dtype(np.uint8),
    "int2": np.dtype(np.int16),
    "int4": np.dtype(np.int32),
    "float4": np.dtype(np.float32),
    "float8": np.dtype(np.float64),
}

_DTYPE_PIXTYPES = {dtype: name for name, dtype in PIXTYPE_DTYPES.items()}

_EXTERNAL_RE = re.compile(
    r"^\(\s*(\d+)\s*,\s*(\d+)\s*,\s*\"?(\w+)\"?\s*,\s*\"?([^\",)]*)\"?\s*\)$"
)


@dataclass(frozen=True)
class Image:
    """A raster image: the workhorse primitive class of Gaea.

    Immutable and value identified — operators return new images rather
    than mutating pixels in place, matching §2.1.3 ("changing the value of
    an object in a primitive class will always lead to another object").
    """

    data: np.ndarray
    filepath: str = ""
    _key: Any = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not isinstance(self.data, np.ndarray) or self.data.ndim != 2:
            raise ValueRepresentationError("image data must be a 2-D numpy array")
        if self.data.dtype not in _DTYPE_PIXTYPES:
            raise ValueRepresentationError(
                f"unsupported pixel dtype {self.data.dtype}; "
                f"expected one of {sorted(PIXTYPE_DTYPES)}"
            )
        # Freeze the pixel buffer so value identity cannot be violated.
        frozen = np.ascontiguousarray(self.data)
        frozen.setflags(write=False)
        object.__setattr__(self, "data", frozen)

    # -- paper's accessor operators are defined over these properties --------

    @property
    def nrow(self) -> int:
        """Number of rows (``img_nrow``)."""
        return int(self.data.shape[0])

    @property
    def ncol(self) -> int:
        """Number of columns (``img_ncol``)."""
        return int(self.data.shape[1])

    @property
    def pixtype(self) -> str:
        """Pixel data type name (``img_type``): char/int2/int4/float4/float8."""
        return _DTYPE_PIXTYPES[self.data.dtype]

    @property
    def shape(self) -> tuple[int, int]:
        """``(nrow, ncol)``."""
        return (self.nrow, self.ncol)

    def size_eq(self, other: "Image") -> bool:
        """The paper's ``img_size_eq`` operator."""
        return self.shape == other.shape

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def from_array(array: np.ndarray, pixtype: str | None = None,
                   filepath: str = "") -> "Image":
        """Build an image from *array*, optionally casting to *pixtype*."""
        if pixtype is not None:
            if pixtype not in PIXTYPE_DTYPES:
                raise ValueRepresentationError(f"unknown pixtype {pixtype!r}")
            array = np.asarray(array).astype(PIXTYPE_DTYPES[pixtype])
        else:
            array = np.asarray(array)
        return Image(data=array, filepath=filepath)

    @staticmethod
    def zeros(nrow: int, ncol: int, pixtype: str = "float4") -> "Image":
        """All-zero image of the given shape and pixel type."""
        if pixtype not in PIXTYPE_DTYPES:
            raise ValueRepresentationError(f"unknown pixtype {pixtype!r}")
        return Image(data=np.zeros((nrow, ncol), dtype=PIXTYPE_DTYPES[pixtype]))

    # -- representation -------------------------------------------------------

    @staticmethod
    def parse(text: str) -> "Image":
        """Parse the paper's external representation.

        Since pixels live in arrays here, parsing builds a zero-filled
        image of the declared shape; ``filepath`` is carried through.  The
        baseline package round-trips real pixels through files.
        """
        match = _EXTERNAL_RE.match(text.strip())
        if match is None:
            raise ValueRepresentationError(f"bad image literal {text!r}")
        nrow, ncol, pixtype, filepath = match.groups()
        if pixtype not in PIXTYPE_DTYPES:
            raise ValueRepresentationError(f"unknown pixtype {pixtype!r}")
        data = np.zeros((int(nrow), int(ncol)), dtype=PIXTYPE_DTYPES[pixtype])
        return Image(data=data, filepath=filepath)

    @staticmethod
    def validate(value: Any) -> "Image":
        """Validator used by the ``image`` primitive class."""
        if isinstance(value, Image):
            return value
        if isinstance(value, np.ndarray):
            return Image.from_array(value)
        if isinstance(value, str):
            return Image.parse(value)
        raise ValueRepresentationError(
            f"image: cannot build from {type(value).__name__}"
        )

    def __str__(self) -> str:
        return f'({self.nrow}, {self.ncol}, "{self.pixtype}", "{self.filepath}")'

    # -- value identity -------------------------------------------------------

    def value_key(self) -> Any:
        """Content-based identity key (see :func:`repro.adt.values.value_key`)."""
        if self._key is None:
            object.__setattr__(
                self, "_key", ("image", _value_key(self.data), self.filepath)
            )
        return self._key

    def __hash__(self) -> int:
        return hash(self.value_key())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Image):
            return NotImplemented
        return self.value_key() == other.value_key()


def register_image_class(registry) -> None:
    """Register ``image`` into a :class:`~repro.adt.registry.TypeRegistry`."""
    from .registry import PrimitiveClass
    from .values import Representation

    registry.register(
        PrimitiveClass(
            name="image",
            validate=Image.validate,
            representation=Representation(parse=Image.parse, format=str),
            doc="Raster image: (nrows, ncols, pixtype, filepath).",
        )
    )
