"""The ``vector`` primitive class.

Figure 4's ``get-eigen-vector`` operator produces a ``vector`` that feeds
``linear-combination``.  We generalize slightly: a Vector wraps a 1-D
float64 array (a single eigenvector, a set of weights, a spectral
signature, ...), with value identity like the other array primitives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..errors import ValueRepresentationError
from .values import value_key as _value_key

__all__ = ["Vector", "register_vector_class"]


@dataclass(frozen=True)
class Vector:
    """An immutable 1-D float64 vector with value identity."""

    data: np.ndarray
    _key: Any = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not isinstance(self.data, np.ndarray) or self.data.ndim != 1:
            raise ValueRepresentationError("vector data must be a 1-D numpy array")
        frozen = np.ascontiguousarray(self.data, dtype=np.float64)
        frozen.setflags(write=False)
        object.__setattr__(self, "data", frozen)

    def __len__(self) -> int:
        return int(self.data.shape[0])

    @staticmethod
    def from_array(array: Any) -> "Vector":
        """Build from any 1-D array-like (cast to float64)."""
        return Vector(data=np.asarray(array, dtype=np.float64))

    @staticmethod
    def validate(value: Any) -> "Vector":
        """Validator used by the ``vector`` primitive class."""
        if isinstance(value, Vector):
            return value
        if isinstance(value, np.ndarray):
            return Vector.from_array(value)
        if isinstance(value, (list, tuple)):
            return Vector.from_array(value)
        raise ValueRepresentationError(
            f"vector: cannot build from {type(value).__name__}"
        )

    @staticmethod
    def parse(text: str) -> "Vector":
        """Parse an external representation like ``[1.0, 2.0, 3.0]``."""
        import ast

        try:
            items = ast.literal_eval(text.strip())
        except (ValueError, SyntaxError) as exc:
            raise ValueRepresentationError(f"bad vector literal {text!r}") from exc
        return Vector.from_array(items)

    def __str__(self) -> str:
        return "[" + ",".join(repr(float(x)) for x in self.data) + "]"

    def value_key(self) -> Any:
        """Content-based identity key."""
        if self._key is None:
            object.__setattr__(self, "_key", ("vector", _value_key(self.data)))
        return self._key

    def __hash__(self) -> int:
        return hash(self.value_key())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vector):
            return NotImplemented
        return self.value_key() == other.value_key()


def register_vector_class(registry) -> None:
    """Register ``vector`` into a :class:`~repro.adt.registry.TypeRegistry`."""
    from .registry import PrimitiveClass
    from .values import Representation

    registry.register(
        PrimitiveClass(
            name="vector",
            validate=Vector.validate,
            representation=Representation(parse=Vector.parse, format=str),
            doc="1-D float64 vector (eigenvectors, weights, signatures).",
        )
    )
