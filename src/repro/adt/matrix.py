"""The ``matrix`` primitive class.

Figure 4's PCA dataflow network passes ``SET OF matrix`` between operators
(convert-image-matrix → compute-covariance → ...).  A matrix is a 2-D
float64 array wrapped with value identity, mirroring :class:`Image` but
without pixel-type bookkeeping — matrices are analysis intermediates, not
stored rasters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..errors import ValueRepresentationError
from .values import value_key as _value_key

__all__ = ["Matrix", "register_matrix_class"]


@dataclass(frozen=True)
class Matrix:
    """An immutable 2-D float64 matrix with value identity."""

    data: np.ndarray
    _key: Any = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not isinstance(self.data, np.ndarray) or self.data.ndim != 2:
            raise ValueRepresentationError("matrix data must be a 2-D numpy array")
        frozen = np.ascontiguousarray(self.data, dtype=np.float64)
        frozen.setflags(write=False)
        object.__setattr__(self, "data", frozen)

    @property
    def nrow(self) -> int:
        """Number of rows."""
        return int(self.data.shape[0])

    @property
    def ncol(self) -> int:
        """Number of columns."""
        return int(self.data.shape[1])

    @property
    def shape(self) -> tuple[int, int]:
        """``(nrow, ncol)``."""
        return (self.nrow, self.ncol)

    @staticmethod
    def from_array(array: Any) -> "Matrix":
        """Build from any array-like (cast to float64)."""
        return Matrix(data=np.asarray(array, dtype=np.float64))

    @staticmethod
    def validate(value: Any) -> "Matrix":
        """Validator used by the ``matrix`` primitive class."""
        if isinstance(value, Matrix):
            return value
        if isinstance(value, np.ndarray):
            return Matrix.from_array(value)
        if isinstance(value, (list, tuple)):
            return Matrix.from_array(value)
        raise ValueRepresentationError(
            f"matrix: cannot build from {type(value).__name__}"
        )

    @staticmethod
    def parse(text: str) -> "Matrix":
        """Parse a row-major external representation like
        ``[[1,2],[3,4]]``."""
        import ast

        try:
            rows = ast.literal_eval(text.strip())
        except (ValueError, SyntaxError) as exc:
            raise ValueRepresentationError(f"bad matrix literal {text!r}") from exc
        return Matrix.from_array(rows)

    def __str__(self) -> str:
        return "[" + ",".join(
            "[" + ",".join(repr(float(x)) for x in row) + "]" for row in self.data
        ) + "]"

    def value_key(self) -> Any:
        """Content-based identity key."""
        if self._key is None:
            object.__setattr__(self, "_key", ("matrix", _value_key(self.data)))
        return self._key

    def __hash__(self) -> int:
        return hash(self.value_key())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Matrix):
            return NotImplemented
        return self.value_key() == other.value_key()


def register_matrix_class(registry) -> None:
    """Register ``matrix`` into a :class:`~repro.adt.registry.TypeRegistry`."""
    from .registry import PrimitiveClass
    from .values import Representation

    registry.register(
        PrimitiveClass(
            name="matrix",
            validate=Matrix.validate,
            representation=Representation(parse=Matrix.parse, format=str),
            doc="2-D float64 matrix (PCA intermediates, Figure 4).",
        )
    )
