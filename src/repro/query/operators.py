"""Physical operators: one iterator-tree representation for every query.

The Volcano-style layer between the logical plan (:mod:`.optimizer`
nodes, which the plan cache stores) and the storage substrate.  Every
statement — retrieval, ``DERIVE``, ``RUN``, concept queries — compiles
to a tree of these operators (see :mod:`.physical`); execution drives
the root's :meth:`~PhysicalOperator.run` iterator and EXPLAIN renders
the same tree with per-operator cost estimates via :func:`render_tree`.

The operators:

* :class:`HeapScan` / :class:`IndexScan` / :class:`IndexOnlyScan` —
  the stored-data scans, wrapping :meth:`ClassStore.iter_scan` (or the
  covering key-only stream) down one cost-chosen
  :class:`~repro.storage.access.AccessPath`;
* :class:`Filter` — extent and attribute predicate re-checks, with
  row counters the fallback decision reads;
* :class:`Project` — attribute projection (plain dict rows);
* :class:`Interpolate` / :class:`Derive` — the §2.1.5 fallbacks as
  operators, driving the retrieval planner's public entry points;
* :class:`FallbackSwitch` — threads "the stored retrieval was empty"
  from the already-executed scan child into the fallback children, so
  falling back never re-scans the stored relation;
* :class:`ConceptUnion` — one plan for a concept query: member
  subtrees ordered by estimated cost, sharing one execution context
  (and so one derivation-marking probe cache);
* :class:`Run` — process execution (``RUN``) as a leaf operator.

Operator instances are built fresh per execution and are stateful:
after a drain, counters (``rows_out``) and outcomes (``path_taken``,
``plan_steps``, ``tasks``) describe what actually happened.

Vectorized execution: operators whose ``vectorized`` flag is set also
implement :meth:`~PhysicalOperator.run_batches`, streaming columnar
:class:`~repro.query.batch.Batch` slabs instead of rows; their ``run()``
falls back to lazily flattening those batches, so scalar consumers (and
the client fetch path, which needs row-at-a-time DB-API semantics) work
unchanged while all storage and predicate work happens per batch.  The
explicit :class:`ScalarAdapter` marks the vectorized→scalar boundary
inside mixed trees, and :func:`render_tree` annotates every operator
``[vectorized batch=N]`` or ``[scalar]``.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field, replace as dc_replace
from typing import Any, Callable, Iterator

import numpy as np

from ..core.classes import SciObject, matches_extents, matches_predicates
from ..core.interpolation import InterpolationError
from ..core.metadata_manager import MetadataManager
from ..core.planner import MarkingCache, RetrievalResult
from ..errors import (
    AssertionViolatedError,
    UnderivableError,
    UnknownClassError,
)
from ..spatial.box import Box
from ..storage.access import AccessPath, INDEX_PROBE_COST, INDEX_ROW_COST
from ..temporal.abstime import AbsTime
from .ast import AggCall, ColumnRef, SelectItem
from .batch import (
    DEFAULT_BATCH_SIZE,
    Batch,
    group_rows,
    object_column,
    order_by_keys,
)
from .expressions import (
    Accumulator,
    JoinedRow,
    evaluate,
    make_accumulator,
    resolve_column,
    sort_key_fn,
)

__all__ = [
    "ExecutionContext",
    "PhysicalOperator",
    "HeapScan",
    "IndexScan",
    "IndexOnlyScan",
    "Filter",
    "VectorFilter",
    "Project",
    "ExprProject",
    "ScalarAdapter",
    "Sort",
    "Limit",
    "HashAggregate",
    "HashJoin",
    "IndexNestedLoopJoin",
    "Interpolate",
    "Derive",
    "FallbackSwitch",
    "ConceptUnion",
    "Run",
    "render_tree",
    "INTERPOLATE_COST",
    "DERIVE_COST",
    "FILTER_ROW_COST",
    "SORT_ROW_COST",
    "HASH_ROW_COST",
    "VECTOR_ROW_DISCOUNT",
]

#: Cost guesses for the fallback operators.  Interpolation prices two
#: bracketing index probes plus the blend; derivation is dominated by
#: process execution, far above any scan — the constants only need to
#: order alternatives sensibly in plan dumps.
INTERPOLATE_COST = 40.0
DERIVE_COST = 400.0
#: Per-row cost of re-checking residual predicates in Python.
FILTER_ROW_COST = 0.05
#: Per-comparison cost of explicit sorting (multiplied by n·log n, or
#: n·log k for a bounded top-K heap).
SORT_ROW_COST = 0.02
#: Per-row cost of hashing into / probing a hash table (joins,
#: aggregation groups).
HASH_ROW_COST = 0.05
#: Vectorized operators amortize the per-row interpreter overhead across
#: a whole batch; their per-row costs shrink by this factor so the
#: optimizer's plan comparisons (e.g. explicit Sort vs index order)
#: price batch execution honestly.
VECTOR_ROW_DISCOUNT = 0.125


@dataclass
class ExecutionContext:
    """Shared state of one query execution (one tree drain).

    The marking cache lets several :class:`Derive` operators under one
    tree (a concept union whose members all fall back) share the
    backward-planning supply probes; any firing clears it.
    """

    kernel: MetadataManager
    marking_cache: MarkingCache = field(default_factory=dict)


class PhysicalOperator:
    """Base of all physical operators.

    Subclasses set ``estimated_rows`` / ``estimated_cost`` at build
    time and stream rows from :meth:`run`.  ``rows_out`` counts what
    was actually produced once the iterator is drained.

    Vectorized operators set ``vectorized`` and implement
    :meth:`run_batches`; their default ``run()`` lazily flattens the
    batch stream (``rows_out`` is counted once, in ``run_batches``).
    """

    estimated_rows: float = 0.0
    estimated_cost: float = 0.0
    rows_out: int = 0
    #: True when this operator streams columnar batches natively.
    vectorized: bool = False
    #: Target batch row count (vectorized operators only).
    batch_size: int | None = None

    @property
    def children(self) -> tuple["PhysicalOperator", ...]:
        return ()

    def label(self) -> str:
        """One-line rendering for plan dumps (no cost suffix)."""
        raise NotImplementedError

    def run_batches(self) -> Iterator[Batch]:
        """Stream columnar batches (vectorized operators only)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not execute vectorized"
        )

    def run(self) -> Iterator[Any]:
        """Stream this operator's rows (stateful; drive once)."""
        if self.vectorized:
            yield from self._flatten()
            return
        raise NotImplementedError

    def _flatten(self) -> Iterator[Any]:
        """Rows off the batch stream — the lazy scalar view of a
        vectorized operator (row accounting stays in run_batches)."""
        for batch in self.run_batches():
            yield from batch.to_rows()

    def mode_note(self) -> str:
        """The EXPLAIN execution-mode annotation for this operator."""
        if self.vectorized:
            return f"vectorized batch={self.batch_size or DEFAULT_BATCH_SIZE}"
        return "scalar"


def render_tree(op: PhysicalOperator, prefix: str = "",
                is_last: bool = True, is_root: bool = True) -> list[str]:
    """Pretty-print an operator tree with per-operator estimates."""
    line = (f"{op.label()} "
            f"[rows~{op.estimated_rows:.0f} cost~{op.estimated_cost:.1f}]"
            f" [{op.mode_note()}]")
    if is_root:
        lines = [line]
        child_prefix = ""
    else:
        connector = "└─ " if is_last else "├─ "
        lines = [prefix + connector + line]
        child_prefix = prefix + ("   " if is_last else "│  ")
    kids = op.children
    for index, child in enumerate(kids):
        lines.extend(render_tree(child, child_prefix,
                                 is_last=index == len(kids) - 1,
                                 is_root=False))
    return lines


# -- stored-data scans --------------------------------------------------------


class _StoreScan(PhysicalOperator):
    """Common base of the stored-row scans: one recorded scan event.

    With ``batch_mode`` the scan emits columnar batches straight off the
    storage layer (:meth:`ClassStore.iter_scan_batches`) — per-row
    ``SciObject`` materialization is deferred to the scalar boundary.
    """

    def __init__(self, ctx: ExecutionContext, class_name: str,
                 path: AccessPath,
                 spatial: Box | None = None,
                 temporal: AbsTime | None = None,
                 filters: tuple[tuple[str, Any], ...] = (),
                 ranges: tuple[tuple[str, str, Any], ...] = (),
                 batch_mode: bool = False,
                 batch_size: int | None = None):
        self.ctx = ctx
        self.class_name = class_name
        self.path = path
        self.spatial = spatial
        self.temporal = temporal
        self.filters = filters
        self.ranges = ranges
        self.vectorized = batch_mode
        self.batch_size = batch_size
        self.estimated_rows = path.estimated_rows
        self.estimated_cost = path.cost

    @property
    def relation(self) -> str:
        return self.ctx.kernel.store.relation_for(self.class_name)

    def run_batches(self) -> Iterator[Batch]:
        for batch in self.ctx.kernel.store.iter_scan_batches(
            self.class_name, spatial=self.spatial, temporal=self.temporal,
            filters=self.filters, ranges=self.ranges, access_path=self.path,
            batch_size=self.batch_size,
        ):
            self.rows_out += batch.length
            yield batch

    def run(self) -> Iterator[SciObject]:
        if self.vectorized:
            yield from self._flatten()
            return
        for obj in self.ctx.kernel.store.iter_scan(
            self.class_name, spatial=self.spatial, temporal=self.temporal,
            filters=self.filters, ranges=self.ranges, access_path=self.path,
        ):
            self.rows_out += 1
            yield obj


class HeapScan(_StoreScan):
    """Full heap scan of one class relation."""

    def label(self) -> str:
        return f"HeapScan({self.relation}) {self.path.describe()}"


class IndexScan(_StoreScan):
    """Index-driven scan: B-tree probe/range, grid cell or timeline."""

    def label(self) -> str:
        return (f"IndexScan({self.relation}.{self.path.column}) "
                f"{self.path.describe()}")


class IndexOnlyScan(PhysicalOperator):
    """Covering scan: rows come straight off the B-tree keys.

    Yields ``{column: key}`` dicts; the heap values are never fetched
    (only version headers, for visibility).  Only planned when the key
    supplies every projected attribute and every predicate.
    """

    def __init__(self, ctx: ExecutionContext, class_name: str,
                 path: AccessPath, batch_mode: bool = False,
                 batch_size: int | None = None):
        self.ctx = ctx
        self.class_name = class_name
        self.path = path
        self.vectorized = batch_mode
        self.batch_size = batch_size
        self.estimated_rows = path.estimated_rows
        self.estimated_cost = path.cost

    def label(self) -> str:
        relation = self.ctx.kernel.store.relation_for(self.class_name)
        return (f"IndexOnlyScan({relation}.{self.path.column}) "
                f"{self.path.describe()}")

    def run_batches(self) -> Iterator[Batch]:
        for batch in self.ctx.kernel.store.iter_index_only_batches(
            self.class_name, self.path, batch_size=self.batch_size,
        ):
            self.rows_out += batch.length
            yield batch

    def run(self) -> Iterator[dict[str, Any]]:
        if self.vectorized:
            yield from self._flatten()
            return
        for row in self.ctx.kernel.store.iter_index_only(self.class_name,
                                                         self.path):
            self.rows_out += 1
            yield row


# -- row transforms -----------------------------------------------------------


class Filter(PhysicalOperator):
    """Predicate re-check over a child stream, with row accounting."""

    def __init__(self, child: PhysicalOperator,
                 predicate: Callable[[Any], bool],
                 description: str, selectivity: float = 1.0):
        self.child = child
        self.predicate = predicate
        self.description = description
        self.estimated_rows = max(1.0, child.estimated_rows * selectivity)
        self.estimated_cost = child.estimated_cost \
            + child.estimated_rows * FILTER_ROW_COST

    @property
    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Filter({self.description})"

    def run(self) -> Iterator[Any]:
        for row in self.child.run():
            if self.predicate(row):
                self.rows_out += 1
                yield row


class VectorFilter(PhysicalOperator):
    """Vectorized predicate: one boolean-mask evaluation per batch.

    ``mask_fn`` is a compiled batch-level predicate (see
    :func:`~repro.query.expressions.compile_predicate_mask` /
    ``compile_extent_mask``) with exactly the scalar re-check semantics.
    Labelled ``Filter(...)`` in plan dumps — the mode annotation is what
    distinguishes it.
    """

    def __init__(self, child: PhysicalOperator,
                 mask_fn: Callable[[Batch], np.ndarray],
                 description: str, selectivity: float = 1.0):
        self.child = child
        self.mask_fn = mask_fn
        self.description = description
        self.vectorized = True
        self.batch_size = child.batch_size
        self.estimated_rows = max(1.0, child.estimated_rows * selectivity)
        self.estimated_cost = child.estimated_cost \
            + child.estimated_rows * FILTER_ROW_COST * VECTOR_ROW_DISCOUNT

    @property
    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Filter({self.description})"

    def run_batches(self) -> Iterator[Batch]:
        for batch in self.child.run_batches():
            mask = self.mask_fn(batch)
            out = batch if bool(mask.all()) else batch.take(mask)
            if out.length == 0:
                continue
            self.rows_out += out.length
            yield out


class ScalarAdapter(PhysicalOperator):
    """The explicit vectorized→scalar boundary.

    Flattens a vectorized child's batches into rows for a parent that
    must run tuple-at-a-time (joins, non-vectorizable expressions, ADT
    operators with Python bodies).  Exists as a visible operator so
    EXPLAIN shows exactly where a plan leaves columnar execution.
    """

    def __init__(self, child: PhysicalOperator):
        self.child = child
        self.estimated_rows = child.estimated_rows
        self.estimated_cost = child.estimated_cost

    @property
    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    @property
    def step(self) -> str:
        return getattr(self.child, "step", "scan")

    def label(self) -> str:
        return "ScalarAdapter"

    def run(self) -> Iterator[Any]:
        for batch in self.child.run_batches():
            for row in batch.to_rows():
                self.rows_out += 1
                yield row


class Project(PhysicalOperator):
    """Projection: keep only the requested attributes, as plain dicts.

    Index-only children already stream dicts restricted to the key
    column; everything else is cut down from full objects here.
    """

    def __init__(self, child: PhysicalOperator, attrs: tuple[str, ...]):
        self.child = child
        self.attrs = attrs
        self.vectorized = child.vectorized
        self.batch_size = child.batch_size
        self.estimated_rows = child.estimated_rows
        self.estimated_cost = child.estimated_cost

    @property
    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Project({', '.join(self.attrs)})"

    def run_batches(self) -> Iterator[Batch]:
        for batch in self.child.run_batches():
            out = batch.project(self.attrs)
            self.rows_out += out.length
            yield out

    def run(self) -> Iterator[dict[str, Any]]:
        if self.vectorized:
            yield from self._flatten()
            return
        for row in self.child.run():
            self.rows_out += 1
            if isinstance(row, dict):
                yield {attr: row.get(attr) for attr in self.attrs}
            else:
                yield {attr: row[attr] for attr in self.attrs}


class ExprProject(PhysicalOperator):
    """Expression projection: evaluate each select item per row.

    Column references, and registered ADT operator calls resolved
    through the kernel's :class:`~repro.adt.operators.OperatorRegistry`
    (``SELECT area(extent) FROM ...``); rows come out as plain dicts
    keyed by the item aliases.
    """

    def __init__(self, child: PhysicalOperator,
                 items: tuple[SelectItem, ...], operators: Any,
                 vector_items: tuple[tuple[str, Any], ...] | None = None):
        self.child = child
        self.items = items
        self.operators = operators
        self.vector_items = vector_items
        self.vectorized = vector_items is not None and child.vectorized
        self.batch_size = child.batch_size
        row_cost = FILTER_ROW_COST * VECTOR_ROW_DISCOUNT \
            if self.vectorized else FILTER_ROW_COST
        self.estimated_rows = child.estimated_rows
        self.estimated_cost = child.estimated_cost \
            + child.estimated_rows * row_cost

    @property
    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"ExprProject({', '.join(i.alias for i in self.items)})"

    def run_batches(self) -> Iterator[Batch]:
        aliases = tuple(alias for alias, _ in self.vector_items)
        for batch in self.child.run_batches():
            columns: dict[str, np.ndarray] = {}
            masks: dict[str, np.ndarray] = {}
            for alias, fn in self.vector_items:
                values, null = fn(batch)
                columns[alias] = values
                if null is not None and null.any():
                    masks[alias] = null
            out = Batch(length=batch.length, columns=columns, masks=masks,
                        order=aliases)
            self.rows_out += out.length
            yield out

    def run(self) -> Iterator[dict[str, Any]]:
        if self.vectorized:
            yield from self._flatten()
            return
        for row in self.child.run():
            self.rows_out += 1
            yield {
                item.alias: evaluate(item.expr, row, self.operators)
                for item in self.items
            }


class Sort(PhysicalOperator):
    """Explicit sort; a bounded top-K heap when a Limit sits above.

    ``keys`` pairs each key expression with its direction.  With
    ``top_k`` set (pushed down from ``LIMIT k [OFFSET m]`` as ``k+m``),
    the operator keeps a k-sized heap (``heapq.nsmallest``) instead of
    materializing and sorting the whole input — O(n·log k).
    """

    def __init__(self, child: PhysicalOperator,
                 keys: tuple[tuple[Any, bool], ...], operators: Any,
                 top_k: int | None = None,
                 vector_keys: tuple[Any, ...] | None = None):
        self.child = child
        self.keys = keys
        self.top_k = top_k
        self.key_fn = sort_key_fn(keys, operators)
        self.vector_keys = vector_keys
        self.vectorized = vector_keys is not None and child.vectorized
        self.batch_size = child.batch_size
        n = max(1.0, child.estimated_rows)
        held = n if top_k is None else min(n, float(max(1, top_k)))
        row_cost = SORT_ROW_COST * VECTOR_ROW_DISCOUNT \
            if self.vectorized else SORT_ROW_COST
        self.estimated_rows = child.estimated_rows if top_k is None \
            else min(child.estimated_rows, float(top_k))
        self.estimated_cost = child.estimated_cost \
            + n * math.log2(max(2.0, held)) * row_cost

    @property
    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    @property
    def step(self) -> str:
        """Delegate to the child so a Sort-wrapped fallback (sort
        avoidance ordering the derive path) stays a legal fallback."""
        return getattr(self.child, "step", "sort")

    def label(self) -> str:
        rendered = []
        for expr, descending in self.keys:
            head = expr.describe() if hasattr(expr, "describe") else str(expr)
            rendered.append(f"{head} DESC" if descending else head)
        suffix = f" top-{self.top_k}" if self.top_k is not None else ""
        return f"Sort({', '.join(rendered)}{suffix})"

    def run_batches(self) -> Iterator[Batch]:
        # Sorting is a pipeline breaker either way; vectorized, the whole
        # input concatenates into one slab and `np.argsort` (stable, with
        # the scalar NULLs-last / tie-order contract — see
        # ``batch.order_by_keys``) replaces the per-row key objects.
        batches = list(self.child.run_batches())
        if not batches:
            return
        big = Batch.concat(batches)
        key_specs = []
        for fn, (_, descending) in zip(self.vector_keys, self.keys):
            values, null = fn(big)
            if null is None:
                null = np.zeros(big.length, dtype=bool)
            key_specs.append((values, null, descending))
        order = order_by_keys(key_specs, big.length)
        if self.top_k is not None:
            order = order[:self.top_k]
        out = big.take(order)
        self.rows_out += out.length
        if out.length:
            yield out

    def run(self) -> Iterator[Any]:
        if self.vectorized:
            yield from self._flatten()
            return
        if self.top_k is not None:
            ordered = heapq.nsmallest(self.top_k, self.child.run(),
                                      key=self.key_fn)
        else:
            ordered = sorted(self.child.run(), key=self.key_fn)
        for row in ordered:
            self.rows_out += 1
            yield row


class Limit(PhysicalOperator):
    """``LIMIT n [OFFSET m]``: stop the child stream after n rows."""

    def __init__(self, child: PhysicalOperator,
                 limit: int | None = None, offset: int = 0):
        self.child = child
        self.limit = limit
        self.offset = offset
        self.vectorized = child.vectorized
        self.batch_size = child.batch_size
        remaining = max(0.0, child.estimated_rows - offset)
        self.estimated_rows = remaining if limit is None \
            else min(remaining, float(limit))
        self.estimated_cost = child.estimated_cost

    @property
    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def label(self) -> str:
        parts = []
        if self.limit is not None:
            parts.append(str(self.limit))
        if self.offset:
            parts.append(f"OFFSET {self.offset}")
        return f"Limit({' '.join(parts)})"

    def run_batches(self) -> Iterator[Batch]:
        # Batch slicing: offset rows are dropped and the final batch is
        # cut at the limit boundary; the child stops being driven as
        # soon as the quota is filled.
        if self.limit == 0:
            return
        to_skip = self.offset
        for batch in self.child.run_batches():
            if to_skip:
                if batch.length <= to_skip:
                    to_skip -= batch.length
                    continue
                batch = batch.slice_rows(to_skip)
                to_skip = 0
            if self.limit is not None:
                remaining = self.limit - self.rows_out
                if batch.length > remaining:
                    batch = batch.slice_rows(0, remaining)
            if batch.length == 0:
                continue
            self.rows_out += batch.length
            yield batch
            if self.limit is not None and self.rows_out >= self.limit:
                return

    def run(self) -> Iterator[Any]:
        if self.vectorized:
            yield from self._flatten()
            return
        if self.limit == 0:
            return
        skipped = 0
        for row in self.child.run():
            if skipped < self.offset:
                skipped += 1
                continue
            self.rows_out += 1
            yield row
            if self.limit is not None and self.rows_out >= self.limit:
                return


class HashAggregate(PhysicalOperator):
    """Hash grouping + aggregate accumulation in one pass.

    Output rows are dicts keyed by the select-item aliases, in
    first-seen group order.  A scalar aggregate (no GROUP BY) over an
    empty input still yields its one row — ``count`` 0, other
    aggregates None.
    """

    def __init__(self, child: PhysicalOperator,
                 group_refs: tuple[ColumnRef, ...],
                 items: tuple[SelectItem, ...], operators: Any,
                 vector_plan: tuple | None = None):
        self.child = child
        self.group_refs = group_refs
        self.items = items
        self.operators = operators
        self.vector_plan = vector_plan
        self.vectorized = vector_plan is not None and child.vectorized
        self.batch_size = child.batch_size
        n = child.estimated_rows
        row_cost = HASH_ROW_COST * VECTOR_ROW_DISCOUNT \
            if self.vectorized else HASH_ROW_COST
        self.estimated_rows = max(1.0, math.sqrt(n)) if group_refs else 1.0
        self.estimated_cost = child.estimated_cost + n * row_cost

    @property
    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def label(self) -> str:
        groups = ", ".join(ref.describe() for ref in self.group_refs)
        aggs = ", ".join(item.alias for item in self.items
                         if isinstance(item.expr, AggCall))
        if groups:
            return f"HashAggregate({groups}; {aggs})"
        return f"HashAggregate({aggs})"

    def _fresh_accumulators(self) -> dict[str, Any]:
        return {
            item.alias: make_accumulator(item.expr)
            for item in self.items if isinstance(item.expr, AggCall)
        }

    @staticmethod
    def _segment_reduce(kind: str, values: np.ndarray, null: np.ndarray,
                        order: np.ndarray, starts: np.ndarray,
                        counts_all: np.ndarray) -> list:
        """One aggregate column over the grouped slab, as a Python list.

        Typed numeric columns reduce with ``np.add.reduceat`` /
        ``minimum.reduceat`` over NULL-filled copies; object-dtype (and
        bool) columns fall back to the scalar accumulator per segment,
        preserving exact Python arithmetic semantics either way.
        """
        sorted_vals = values[order]
        sorted_null = null[order]
        counts = np.add.reduceat((~sorted_null).astype(np.int64), starts)
        if kind == "count":
            return counts.tolist()
        numeric = sorted_vals.dtype != object \
            and sorted_vals.dtype != np.bool_
        if not numeric:
            ends = np.append(starts[1:], order.shape[0])
            out = []
            for lo, hi in zip(starts.tolist(), ends.tolist()):
                accumulator = Accumulator(kind)
                vals = sorted_vals[lo:hi].tolist()
                nulls = sorted_null[lo:hi].tolist()
                for v, is_null in zip(vals, nulls):
                    accumulator.add(None if is_null else v)
                out.append(accumulator.result())
            return out
        is_int = np.issubdtype(sorted_vals.dtype, np.integer)
        counts_list = counts.tolist()
        if kind in ("sum", "avg"):
            filled = np.where(sorted_null, 0, sorted_vals)
            totals = np.add.reduceat(filled, starts)
            if kind == "sum":
                raw = totals.tolist()
                return [None if c == 0 else v
                        for v, c in zip(raw, counts_list)]
            raw = totals.tolist()
            return [None if c == 0 else v / c
                    for v, c in zip(raw, counts_list)]
        if kind == "min":
            sentinel = np.iinfo(np.int64).max if is_int else np.inf
            filled = np.where(sorted_null, sentinel, sorted_vals)
            raw = np.minimum.reduceat(filled, starts).tolist()
        else:  # max
            sentinel = np.iinfo(np.int64).min if is_int else -np.inf
            filled = np.where(sorted_null, sentinel, sorted_vals)
            raw = np.maximum.reduceat(filled, starts).tolist()
        return [None if c == 0 else v for v, c in zip(raw, counts_list)]

    def run_batches(self) -> Iterator[Batch]:
        group_fns, item_specs = self.vector_plan
        batches = list(self.child.run_batches())
        big = Batch.concat(batches) if batches else Batch(0, {})
        n = big.length
        if n == 0:
            if self.group_refs:
                return
            # Scalar aggregate over nothing: one row of empty results.
            names = tuple(alias for alias, _, _ in item_specs)
            columns = {
                alias: object_column([0 if kind.startswith("count") else None])
                for alias, kind, _ in item_specs
            }
            self.rows_out += 1
            yield Batch(length=1, columns=columns, order=names)
            return
        keys = []
        for fn in group_fns:
            values, null = fn(big)
            if null is None:
                null = np.zeros(n, dtype=bool)
            keys.append((values, null))
        order, starts, first_seen = group_rows(keys, n)
        # Emit groups in first-encountered order, like the scalar hash.
        emit = np.argsort(first_seen, kind="stable")
        ends = np.append(starts[1:], n)
        counts_all = (ends - starts)
        names = tuple(alias for alias, _, _ in item_specs)
        columns: dict[str, np.ndarray] = {}
        for alias, kind, fn in item_specs:
            if kind == "count_star":
                columns[alias] = object_column(
                    counts_all[emit].tolist()
                )
                continue
            if kind == "expr":
                values, null = fn(big)
                if null is None:
                    null = np.zeros(n, dtype=bool)
                sample = first_seen[emit]
                picked = values[sample].tolist()
                picked_null = null[sample].tolist()
                columns[alias] = object_column(
                    [None if m else v for v, m in zip(picked, picked_null)]
                )
                continue
            values, null = fn(big)
            if null is None:
                null = np.zeros(n, dtype=bool)
            reduced = self._segment_reduce(kind, values, null, order,
                                           starts, counts_all)
            columns[alias] = object_column([reduced[i] for i in emit.tolist()])
        out = Batch(length=int(starts.shape[0]), columns=columns, order=names)
        self.rows_out += out.length
        yield out

    def run(self) -> Iterator[dict[str, Any]]:
        if self.vectorized:
            yield from self._flatten()
            return
        groups: dict[tuple, tuple[Any, dict[str, Any]]] = {}
        for row in self.child.run():
            key = tuple(
                evaluate(ref, row, self.operators)
                for ref in self.group_refs
            )
            entry = groups.get(key)
            if entry is None:
                entry = (row, self._fresh_accumulators())
                groups[key] = entry
            _, accumulators = entry
            for item in self.items:
                if not isinstance(item.expr, AggCall):
                    continue
                accumulator = accumulators[item.alias]
                if item.expr.arg is None:  # count(*): count the row
                    accumulator.add(1)
                else:
                    accumulator.add(
                        evaluate(item.expr.arg, row, self.operators)
                    )
        if not groups and not self.group_refs:
            # Scalar aggregate over nothing: one row of empty results.
            groups[()] = ({}, self._fresh_accumulators())
        for sample_row, accumulators in groups.values():
            out: dict[str, Any] = {}
            for item in self.items:
                if isinstance(item.expr, AggCall):
                    out[item.alias] = accumulators[item.alias].result()
                else:
                    out[item.alias] = evaluate(item.expr, sample_row,
                                               self.operators)
            self.rows_out += 1
            yield out


class HashJoin(PhysicalOperator):
    """Two-source equi-join: hash the smaller input, probe the other.

    Output rows are :class:`~repro.query.expressions.JoinedRow` with one
    named side per source.  Rows whose join key is None never match
    (SQL NULL semantics).
    """

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator,
                 left_ref: ColumnRef, right_ref: ColumnRef,
                 left_name: str, right_name: str):
        self.left = left
        self.right = right
        self.left_ref = left_ref
        self.right_ref = right_ref
        self.left_name = left_name
        self.right_name = right_name
        l_rows = left.estimated_rows
        r_rows = right.estimated_rows
        # Equi-join heuristic without key statistics: FK-shaped joins
        # return about as many rows as the bigger side.
        self.estimated_rows = max(l_rows, r_rows)
        self.estimated_cost = left.estimated_cost + right.estimated_cost \
            + (l_rows + r_rows) * HASH_ROW_COST

    @property
    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return (f"HashJoin({self.left_name}.{self.left_ref.attr} = "
                f"{self.right_name}.{self.right_ref.attr})")

    def run(self) -> Iterator[JoinedRow]:
        build_left = self.left.estimated_rows < self.right.estimated_rows
        if build_left:
            build, probe = self.left, self.right
            build_ref, probe_ref = self.left_ref, self.right_ref
        else:
            build, probe = self.right, self.left
            build_ref, probe_ref = self.right_ref, self.left_ref
        table: dict[Any, list[Any]] = {}
        for row in build.run():
            key = resolve_column(row, build_ref)
            if key is None:
                continue
            table.setdefault(key, []).append(row)
        for row in probe.run():
            key = resolve_column(row, probe_ref)
            if key is None:
                continue
            for match in table.get(key, ()):
                left_row, right_row = (row, match) if not build_left \
                    else (match, row)
                self.rows_out += 1
                yield JoinedRow({self.left_name: left_row,
                                 self.right_name: right_row})


class IndexNestedLoopJoin(PhysicalOperator):
    """Equi-join driven by per-left-row index probes on the right class.

    Each left row probes the right class through the storage layer's
    cost-chosen access path (:meth:`ClassStore.iter_find` — B-tree probe
    when the join attribute is indexed) with the right side's own
    predicates pushed into the probe.  A join on the ``oid``
    pseudo-attribute (imagery → derivation provenance) short-circuits
    to the O(1) object fetch.  Chosen over :class:`HashJoin` when the
    left side is small and the right side probes cheaply.
    """

    def __init__(self, ctx: ExecutionContext, left: PhysicalOperator,
                 left_ref: ColumnRef, right_class: str,
                 right_ref: ColumnRef, left_name: str, right_name: str,
                 spatial: Box | None = None,
                 temporal: AbsTime | None = None,
                 filters: tuple[tuple[str, Any], ...] = (),
                 ranges: tuple[tuple[str, str, Any], ...] = (),
                 per_probe_rows: float = 1.0):
        self.ctx = ctx
        self.left = left
        self.left_ref = left_ref
        self.right_class = right_class
        self.right_ref = right_ref
        self.left_name = left_name
        self.right_name = right_name
        self.spatial = spatial
        self.temporal = temporal
        self.filters = filters
        self.ranges = ranges
        self.per_probe_rows = per_probe_rows
        # §2.1.5 on the probe side: the first probe miss triggers one
        # interpolate/derive attempt for the right class at the join's
        # extents; produced objects answer this and later misses.
        self.probe_fallback: str | None = None
        self._fallback_tried = False
        self._fallback_objects: list[SciObject] = []
        l_rows = left.estimated_rows
        self.estimated_rows = max(1.0, l_rows * per_probe_rows)
        self.estimated_cost = left.estimated_cost + l_rows * (
            INDEX_PROBE_COST + per_probe_rows * INDEX_ROW_COST
        )
        # The probe access path varies only in its key: fix the shape
        # once, so per-row probes skip normalization + path selection.
        self._probe_template: AccessPath | None = None
        if self.right_ref.attr != "oid":
            engine = ctx.kernel.store.engine
            self._probe_template = AccessPath(
                kind="index-eq", column=self.right_ref.attr,
                estimated_rows=per_probe_rows,
                cost=INDEX_PROBE_COST + per_probe_rows * INDEX_ROW_COST,
                index_version=engine.catalog.index_version,
            )

    @property
    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.left,)

    def label(self) -> str:
        return (f"IndexNestedLoopJoin({self.left_name}.{self.left_ref.attr}"
                f" = {self.right_name}.{self.right_ref.attr})"
                f" probe={self.right_class}.{self.right_ref.attr}")

    def _probe(self, key: Any) -> Iterator[SciObject]:
        store = self.ctx.kernel.store
        if self.right_ref.attr == "oid":
            try:
                obj = store.get(key)
            except UnknownClassError:
                return
            if obj.class_name != self.right_class:
                return
            cls = self.ctx.kernel.classes.get(self.right_class)
            if not matches_extents(obj, cls, self.spatial, self.temporal):
                return
            if not matches_predicates(obj, self.filters, self.ranges):
                return
            yield obj
            return
        path = None
        if self._probe_template is not None:
            path = dc_replace(self._probe_template, argument=key)
        yield from store.iter_find(
            self.right_class, spatial=self.spatial, temporal=self.temporal,
            filters=self.filters + ((self.right_ref.attr, key),),
            ranges=self.ranges, access_path=path,
        )

    def _attempt_probe_fallback(self) -> None:
        """One-shot §2.1.5 fallback for probe misses: interpolate, then
        derive, the right class at the join's extents.  Result objects
        are kept aside (the statement snapshot predates them, so a
        re-probe through storage would not see them) and matched
        directly on later misses."""
        self._fallback_tried = True
        planner = self.ctx.kernel.planner
        cls = self.ctx.kernel.classes.get(self.right_class)
        result = None
        if self.temporal is not None and cls.temporal_attr is not None:
            try:
                result = planner.interpolate(
                    self.right_class, spatial=self.spatial,
                    temporal=self.temporal,
                )
                self.probe_fallback = "interpolate"
            except (InterpolationError, AssertionViolatedError):
                result = None
        if result is None:
            try:
                result = planner.derive(
                    self.right_class, spatial=self.spatial,
                    temporal=self.temporal,
                    marking_cache=self.ctx.marking_cache,
                )
                self.probe_fallback = "derive"
            except (UnderivableError, InterpolationError,
                    AssertionViolatedError):
                return
        self._fallback_objects = list(result.objects)

    def _fallback_matches(self, key: Any) -> list[SciObject]:
        """Fallback-produced right rows matching *key* under the probe's
        own extent + attribute predicates."""
        cls = self.ctx.kernel.classes.get(self.right_class)
        out = []
        for obj in self._fallback_objects:
            value = obj.oid if self.right_ref.attr == "oid" \
                else obj.get(self.right_ref.attr)
            if value != key:
                continue
            if not matches_extents(obj, cls, self.spatial, self.temporal):
                continue
            if not matches_predicates(obj, self.filters, self.ranges):
                continue
            out.append(obj)
        return out

    def run(self) -> Iterator[JoinedRow]:
        for left_row in self.left.run():
            key = resolve_column(left_row, self.left_ref)
            if key is None:
                continue
            matches = list(self._probe(key))
            if not matches:
                if not self._fallback_tried:
                    self._attempt_probe_fallback()
                matches = self._fallback_matches(key)
            for right_row in matches:
                self.rows_out += 1
                yield JoinedRow({self.left_name: left_row,
                                 self.right_name: right_row})


# -- fallback operators -------------------------------------------------------


class Interpolate(PhysicalOperator):
    """§2.1.5 step 2 as an operator: temporal interpolation."""

    step = "interpolate"

    def __init__(self, ctx: ExecutionContext, class_name: str,
                 spatial: Box | None, temporal: AbsTime | None):
        self.ctx = ctx
        self.class_name = class_name
        self.spatial = spatial
        self.temporal = temporal
        self.result: RetrievalResult | None = None
        self.estimated_rows = 1.0
        self.estimated_cost = INTERPOLATE_COST

    def label(self) -> str:
        return f"Interpolate({self.class_name} at {self.temporal})"

    def run(self) -> Iterator[SciObject]:
        self.result = self.ctx.kernel.planner.interpolate(
            self.class_name, spatial=self.spatial, temporal=self.temporal
        )
        for obj in self.result.objects:
            self.rows_out += 1
            yield obj


class Derive(PhysicalOperator):
    """§2.1.5 step 3 as an operator: Petri-net backward derivation.

    With ``known_empty`` the operator consumes the fact that the
    already-executed scan child found nothing at the query extents, so
    the planner skips every re-scan of the target relation; the shared
    execution context additionally dedupes the marking probes across
    sibling Derive operators (concept unions).
    """

    step = "derive"

    def __init__(self, ctx: ExecutionContext, class_name: str,
                 spatial: Box | None, temporal: AbsTime | None,
                 known_empty: bool = False):
        self.ctx = ctx
        self.class_name = class_name
        self.spatial = spatial
        self.temporal = temporal
        self.known_empty = known_empty
        self.result: RetrievalResult | None = None
        self.estimated_rows = 1.0
        self.estimated_cost = DERIVE_COST

    @property
    def plan_steps(self) -> tuple[str, ...]:
        return self.result.plan_steps if self.result is not None else ()

    def label(self) -> str:
        return f"Derive({self.class_name})"

    def run(self) -> Iterator[SciObject]:
        self.result = self.ctx.kernel.planner.derive(
            self.class_name, spatial=self.spatial, temporal=self.temporal,
            known_empty=self.known_empty,
            marking_cache=self.ctx.marking_cache,
        )
        for obj in self.result.objects:
            self.rows_out += 1
            yield obj


class FallbackSwitch(PhysicalOperator):
    """Stored retrieval with §2.1.5 fallbacks, scan-once semantics.

    Streams the stored child; only when it is exhausted *empty* does
    the switch consult the child's own row counters (or, for scans
    whose probe consumed the attribute predicates, one short-circuiting
    existence probe) to decide between "predicates rejected everything"
    (empty result) and "nothing stored at these extents" (run the
    fallback children, which inherit the emptiness fact instead of
    re-scanning).  ``path_taken`` records the §2.1.5 path after a
    drain.
    """

    def __init__(self, class_name: str,
                 stored: PhysicalOperator,
                 extent_counter: PhysicalOperator,
                 fallbacks: tuple[PhysicalOperator, ...],
                 has_attr_predicates: bool,
                 observes_extents: bool,
                 exists_probe: Callable[[], bool],
                 residual: Callable[[SciObject], bool] | None = None,
                 batch_builder: Callable[[list], Batch] | None = None):
        self.class_name = class_name
        self.stored = stored
        self.extent_counter = extent_counter
        self.fallbacks = fallbacks
        self.has_attr_predicates = has_attr_predicates
        self.observes_extents = observes_extents
        self.exists_probe = exists_probe
        self.residual = residual
        self.batch_builder = batch_builder
        self.vectorized = stored.vectorized and batch_builder is not None
        self.batch_size = stored.batch_size
        self.path_taken: str | None = None
        self.estimated_rows = stored.estimated_rows
        self.estimated_cost = stored.estimated_cost

    @property
    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.stored, *self.fallbacks)

    @property
    def plan_steps(self) -> tuple[str, ...]:
        for fallback in self.fallbacks:
            if isinstance(fallback, Sort):  # sort-avoidance order wrapper
                fallback = fallback.child
            if isinstance(fallback, Derive):
                return fallback.plan_steps
        return ()

    def label(self) -> str:
        return f"FallbackSwitch({self.class_name})"

    def _fallback_rows(self) -> list[Any] | None:
        """Run the §2.1.5 fallback children, residual-filtered; sets
        ``path_taken``.  Raises when every fallback fails."""
        errors: list[str] = []
        for fallback in self.fallbacks:
            try:
                rows = list(fallback.run())
            except (InterpolationError, UnderivableError,
                    AssertionViolatedError) as exc:
                errors.append(f"{fallback.step}: {exc}")
                continue
            self.path_taken = fallback.step
            if self.residual is not None:
                rows = [obj for obj in rows if self.residual(obj)]
            return rows
        raise UnderivableError(
            f"cannot satisfy query on {self.class_name!r}"
            + (f" ({'; '.join(errors)})" if errors else "")
        )

    def _should_fall_back(self) -> bool:
        """After an empty stored drain: missing data, or predicates?"""
        if self.has_attr_predicates:
            covered = self.extent_counter.rows_out > 0 \
                if self.observes_extents else self.exists_probe()
            if covered:
                # Stored data covers the extents; the predicates
                # rejected it all.  Fallbacks are for missing data.
                return False
        return True

    def run_batches(self) -> Iterator[Batch]:
        produced = False
        for batch in self.stored.run_batches():
            if batch.length == 0:
                continue
            produced = True
            self.rows_out += batch.length
            yield batch
        if produced or not self._should_fall_back():
            self.path_taken = "retrieve"
            return
        rows = self._fallback_rows()
        self.rows_out += len(rows)
        if rows:
            yield self.batch_builder(rows)

    def run(self) -> Iterator[Any]:
        if self.vectorized:
            yield from self._flatten()
            return
        produced = False
        for row in self.stored.run():
            produced = True
            self.rows_out += 1
            yield row
        if produced:
            self.path_taken = "retrieve"
            return
        if not self._should_fall_back():
            self.path_taken = "retrieve"
            return
        rows = self._fallback_rows()
        for obj in rows:
            self.rows_out += 1
            yield obj


class ConceptUnion(PhysicalOperator):
    """Union of a concept's member subtrees, cheapest first.

    One shared :class:`ExecutionContext` means the members' fallback
    derivations share supply probes; the cost ordering means cheap
    (indexed, small) members stream before expensive ones.
    """

    def __init__(self, concept: str,
                 members: tuple[PhysicalOperator, ...]):
        self.concept = concept
        self.members = tuple(sorted(members,
                                    key=lambda op: op.estimated_cost))
        self.vectorized = bool(self.members) \
            and all(m.vectorized for m in self.members)
        self.batch_size = self.members[0].batch_size if self.members else None
        self.estimated_rows = sum(m.estimated_rows for m in self.members)
        self.estimated_cost = sum(m.estimated_cost for m in self.members)

    @property
    def children(self) -> tuple[PhysicalOperator, ...]:
        return self.members

    def label(self) -> str:
        return (f"ConceptUnion({self.concept}: "
                f"{len(self.members)} members)")

    def run_batches(self) -> Iterator[Batch]:
        for member in self.members:
            for batch in member.run_batches():
                self.rows_out += batch.length
                yield batch

    def run(self) -> Iterator[Any]:
        if self.vectorized:
            yield from self._flatten()
            return
        for member in self.members:
            for row in member.run():
                self.rows_out += 1
                yield row


# -- process execution --------------------------------------------------------


class Run(PhysicalOperator):
    """``RUN process WITH arg = (oids)`` as a leaf operator."""

    def __init__(self, ctx: ExecutionContext, process: str,
                 bindings: tuple[tuple[str, tuple[int, ...]], ...]):
        self.ctx = ctx
        self.process = process
        self.bindings = bindings
        self.task_id: str | None = None
        self.reused = False
        oid_count = sum(len(oids) for _, oids in bindings)
        self.estimated_rows = 1.0
        # Bound-object fetches plus one firing (dominated by the
        # process body, like Derive).
        self.estimated_cost = DERIVE_COST / 4 + oid_count

    def label(self) -> str:
        bound = ", ".join(
            f"{arg}=({', '.join(map(str, oids))})"
            for arg, oids in self.bindings
        )
        return f"Run({self.process}{' WITH ' + bound if bound else ''})"

    def run(self) -> Iterator[SciObject]:
        kernel = self.ctx.kernel
        derivations = kernel.derivations
        if self.process in derivations.compounds:
            spec_args = derivations.compounds.get(self.process).arguments
        else:
            spec_args = derivations.processes.get(self.process).arguments
        given = dict(self.bindings)
        bindings: dict[str, Any] = {}
        for arg in spec_args:
            if arg.name not in given:
                raise UnderivableError(
                    f"RUN {self.process}: argument {arg.name!r} unbound"
                )
            objects = [kernel.store.get(oid) for oid in given[arg.name]]
            bindings[arg.name] = objects if arg.is_set else objects[0]
        if self.process in derivations.compounds:
            result = derivations.execute_compound(self.process, bindings)
        else:
            result = derivations.execute_process(self.process, bindings)
        self.task_id = result.task.task_id
        self.reused = result.reused
        self.rows_out += 1
        yield result.output
