"""Physical operators: one iterator-tree representation for every query.

The Volcano-style layer between the logical plan (:mod:`.optimizer`
nodes, which the plan cache stores) and the storage substrate.  Every
statement — retrieval, ``DERIVE``, ``RUN``, concept queries — compiles
to a tree of these operators (see :mod:`.physical`); execution drives
the root's :meth:`~PhysicalOperator.run` iterator and EXPLAIN renders
the same tree with per-operator cost estimates via :func:`render_tree`.

The operators:

* :class:`HeapScan` / :class:`IndexScan` / :class:`IndexOnlyScan` —
  the stored-data scans, wrapping :meth:`ClassStore.iter_scan` (or the
  covering key-only stream) down one cost-chosen
  :class:`~repro.storage.access.AccessPath`;
* :class:`Filter` — extent and attribute predicate re-checks, with
  row counters the fallback decision reads;
* :class:`Project` — attribute projection (plain dict rows);
* :class:`Interpolate` / :class:`Derive` — the §2.1.5 fallbacks as
  operators, driving the retrieval planner's public entry points;
* :class:`FallbackSwitch` — threads "the stored retrieval was empty"
  from the already-executed scan child into the fallback children, so
  falling back never re-scans the stored relation;
* :class:`ConceptUnion` — one plan for a concept query: member
  subtrees ordered by estimated cost, sharing one execution context
  (and so one derivation-marking probe cache);
* :class:`Run` — process execution (``RUN``) as a leaf operator.

Operator instances are built fresh per execution and are stateful:
after a drain, counters (``rows_out``) and outcomes (``path_taken``,
``plan_steps``, ``tasks``) describe what actually happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..core.classes import SciObject
from ..core.interpolation import InterpolationError
from ..core.metadata_manager import MetadataManager
from ..core.planner import MarkingCache, RetrievalResult
from ..errors import AssertionViolatedError, UnderivableError
from ..spatial.box import Box
from ..storage.access import AccessPath
from ..temporal.abstime import AbsTime

__all__ = [
    "ExecutionContext",
    "PhysicalOperator",
    "HeapScan",
    "IndexScan",
    "IndexOnlyScan",
    "Filter",
    "Project",
    "Interpolate",
    "Derive",
    "FallbackSwitch",
    "ConceptUnion",
    "Run",
    "render_tree",
    "INTERPOLATE_COST",
    "DERIVE_COST",
    "FILTER_ROW_COST",
]

#: Cost guesses for the fallback operators.  Interpolation prices two
#: bracketing index probes plus the blend; derivation is dominated by
#: process execution, far above any scan — the constants only need to
#: order alternatives sensibly in plan dumps.
INTERPOLATE_COST = 40.0
DERIVE_COST = 400.0
#: Per-row cost of re-checking residual predicates in Python.
FILTER_ROW_COST = 0.05


@dataclass
class ExecutionContext:
    """Shared state of one query execution (one tree drain).

    The marking cache lets several :class:`Derive` operators under one
    tree (a concept union whose members all fall back) share the
    backward-planning supply probes; any firing clears it.
    """

    kernel: MetadataManager
    marking_cache: MarkingCache = field(default_factory=dict)


class PhysicalOperator:
    """Base of all physical operators.

    Subclasses set ``estimated_rows`` / ``estimated_cost`` at build
    time and stream rows from :meth:`run`.  ``rows_out`` counts what
    was actually produced once the iterator is drained.
    """

    estimated_rows: float = 0.0
    estimated_cost: float = 0.0
    rows_out: int = 0

    @property
    def children(self) -> tuple["PhysicalOperator", ...]:
        return ()

    def label(self) -> str:
        """One-line rendering for plan dumps (no cost suffix)."""
        raise NotImplementedError

    def run(self) -> Iterator[Any]:
        """Stream this operator's rows (stateful; drive once)."""
        raise NotImplementedError


def render_tree(op: PhysicalOperator, prefix: str = "",
                is_last: bool = True, is_root: bool = True) -> list[str]:
    """Pretty-print an operator tree with per-operator estimates."""
    line = (f"{op.label()} "
            f"[rows~{op.estimated_rows:.0f} cost~{op.estimated_cost:.1f}]")
    if is_root:
        lines = [line]
        child_prefix = ""
    else:
        connector = "└─ " if is_last else "├─ "
        lines = [prefix + connector + line]
        child_prefix = prefix + ("   " if is_last else "│  ")
    kids = op.children
    for index, child in enumerate(kids):
        lines.extend(render_tree(child, child_prefix,
                                 is_last=index == len(kids) - 1,
                                 is_root=False))
    return lines


# -- stored-data scans --------------------------------------------------------


class _StoreScan(PhysicalOperator):
    """Common base of the stored-row scans: one recorded scan event."""

    def __init__(self, ctx: ExecutionContext, class_name: str,
                 path: AccessPath,
                 spatial: Box | None = None,
                 temporal: AbsTime | None = None,
                 filters: tuple[tuple[str, Any], ...] = (),
                 ranges: tuple[tuple[str, str, Any], ...] = ()):
        self.ctx = ctx
        self.class_name = class_name
        self.path = path
        self.spatial = spatial
        self.temporal = temporal
        self.filters = filters
        self.ranges = ranges
        self.estimated_rows = path.estimated_rows
        self.estimated_cost = path.cost

    @property
    def relation(self) -> str:
        return self.ctx.kernel.store.relation_for(self.class_name)

    def run(self) -> Iterator[SciObject]:
        for obj in self.ctx.kernel.store.iter_scan(
            self.class_name, spatial=self.spatial, temporal=self.temporal,
            filters=self.filters, ranges=self.ranges, access_path=self.path,
        ):
            self.rows_out += 1
            yield obj


class HeapScan(_StoreScan):
    """Full heap scan of one class relation."""

    def label(self) -> str:
        return f"HeapScan({self.relation}) {self.path.describe()}"


class IndexScan(_StoreScan):
    """Index-driven scan: B-tree probe/range, grid cell or timeline."""

    def label(self) -> str:
        return (f"IndexScan({self.relation}.{self.path.column}) "
                f"{self.path.describe()}")


class IndexOnlyScan(PhysicalOperator):
    """Covering scan: rows come straight off the B-tree keys.

    Yields ``{column: key}`` dicts; the heap values are never fetched
    (only version headers, for visibility).  Only planned when the key
    supplies every projected attribute and every predicate.
    """

    def __init__(self, ctx: ExecutionContext, class_name: str,
                 path: AccessPath):
        self.ctx = ctx
        self.class_name = class_name
        self.path = path
        self.estimated_rows = path.estimated_rows
        self.estimated_cost = path.cost

    def label(self) -> str:
        relation = self.ctx.kernel.store.relation_for(self.class_name)
        return (f"IndexOnlyScan({relation}.{self.path.column}) "
                f"{self.path.describe()}")

    def run(self) -> Iterator[dict[str, Any]]:
        for row in self.ctx.kernel.store.iter_index_only(self.class_name,
                                                         self.path):
            self.rows_out += 1
            yield row


# -- row transforms -----------------------------------------------------------


class Filter(PhysicalOperator):
    """Predicate re-check over a child stream, with row accounting."""

    def __init__(self, child: PhysicalOperator,
                 predicate: Callable[[Any], bool],
                 description: str, selectivity: float = 1.0):
        self.child = child
        self.predicate = predicate
        self.description = description
        self.estimated_rows = max(1.0, child.estimated_rows * selectivity)
        self.estimated_cost = child.estimated_cost \
            + child.estimated_rows * FILTER_ROW_COST

    @property
    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Filter({self.description})"

    def run(self) -> Iterator[Any]:
        for row in self.child.run():
            if self.predicate(row):
                self.rows_out += 1
                yield row


class Project(PhysicalOperator):
    """Projection: keep only the requested attributes, as plain dicts.

    Index-only children already stream dicts restricted to the key
    column; everything else is cut down from full objects here.
    """

    def __init__(self, child: PhysicalOperator, attrs: tuple[str, ...]):
        self.child = child
        self.attrs = attrs
        self.estimated_rows = child.estimated_rows
        self.estimated_cost = child.estimated_cost

    @property
    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Project({', '.join(self.attrs)})"

    def run(self) -> Iterator[dict[str, Any]]:
        for row in self.child.run():
            self.rows_out += 1
            if isinstance(row, dict):
                yield {attr: row.get(attr) for attr in self.attrs}
            else:
                yield {attr: row[attr] for attr in self.attrs}


# -- fallback operators -------------------------------------------------------


class Interpolate(PhysicalOperator):
    """§2.1.5 step 2 as an operator: temporal interpolation."""

    step = "interpolate"

    def __init__(self, ctx: ExecutionContext, class_name: str,
                 spatial: Box | None, temporal: AbsTime | None):
        self.ctx = ctx
        self.class_name = class_name
        self.spatial = spatial
        self.temporal = temporal
        self.result: RetrievalResult | None = None
        self.estimated_rows = 1.0
        self.estimated_cost = INTERPOLATE_COST

    def label(self) -> str:
        return f"Interpolate({self.class_name} at {self.temporal})"

    def run(self) -> Iterator[SciObject]:
        self.result = self.ctx.kernel.planner.interpolate(
            self.class_name, spatial=self.spatial, temporal=self.temporal
        )
        for obj in self.result.objects:
            self.rows_out += 1
            yield obj


class Derive(PhysicalOperator):
    """§2.1.5 step 3 as an operator: Petri-net backward derivation.

    With ``known_empty`` the operator consumes the fact that the
    already-executed scan child found nothing at the query extents, so
    the planner skips every re-scan of the target relation; the shared
    execution context additionally dedupes the marking probes across
    sibling Derive operators (concept unions).
    """

    step = "derive"

    def __init__(self, ctx: ExecutionContext, class_name: str,
                 spatial: Box | None, temporal: AbsTime | None,
                 known_empty: bool = False):
        self.ctx = ctx
        self.class_name = class_name
        self.spatial = spatial
        self.temporal = temporal
        self.known_empty = known_empty
        self.result: RetrievalResult | None = None
        self.estimated_rows = 1.0
        self.estimated_cost = DERIVE_COST

    @property
    def plan_steps(self) -> tuple[str, ...]:
        return self.result.plan_steps if self.result is not None else ()

    def label(self) -> str:
        return f"Derive({self.class_name})"

    def run(self) -> Iterator[SciObject]:
        self.result = self.ctx.kernel.planner.derive(
            self.class_name, spatial=self.spatial, temporal=self.temporal,
            known_empty=self.known_empty,
            marking_cache=self.ctx.marking_cache,
        )
        for obj in self.result.objects:
            self.rows_out += 1
            yield obj


class FallbackSwitch(PhysicalOperator):
    """Stored retrieval with §2.1.5 fallbacks, scan-once semantics.

    Streams the stored child; only when it is exhausted *empty* does
    the switch consult the child's own row counters (or, for scans
    whose probe consumed the attribute predicates, one short-circuiting
    existence probe) to decide between "predicates rejected everything"
    (empty result) and "nothing stored at these extents" (run the
    fallback children, which inherit the emptiness fact instead of
    re-scanning).  ``path_taken`` records the §2.1.5 path after a
    drain.
    """

    def __init__(self, class_name: str,
                 stored: PhysicalOperator,
                 extent_counter: PhysicalOperator,
                 fallbacks: tuple[PhysicalOperator, ...],
                 has_attr_predicates: bool,
                 observes_extents: bool,
                 exists_probe: Callable[[], bool],
                 residual: Callable[[SciObject], bool] | None = None):
        self.class_name = class_name
        self.stored = stored
        self.extent_counter = extent_counter
        self.fallbacks = fallbacks
        self.has_attr_predicates = has_attr_predicates
        self.observes_extents = observes_extents
        self.exists_probe = exists_probe
        self.residual = residual
        self.path_taken: str | None = None
        self.estimated_rows = stored.estimated_rows
        self.estimated_cost = stored.estimated_cost

    @property
    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.stored, *self.fallbacks)

    @property
    def plan_steps(self) -> tuple[str, ...]:
        for fallback in self.fallbacks:
            if isinstance(fallback, Derive):
                return fallback.plan_steps
        return ()

    def label(self) -> str:
        return f"FallbackSwitch({self.class_name})"

    def run(self) -> Iterator[Any]:
        produced = False
        for row in self.stored.run():
            produced = True
            self.rows_out += 1
            yield row
        if produced:
            self.path_taken = "retrieve"
            return
        if self.has_attr_predicates:
            covered = self.extent_counter.rows_out > 0 \
                if self.observes_extents else self.exists_probe()
            if covered:
                # Stored data covers the extents; the predicates
                # rejected it all.  Fallbacks are for missing data.
                self.path_taken = "retrieve"
                return
        errors: list[str] = []
        for fallback in self.fallbacks:
            try:
                rows = list(fallback.run())
            except (InterpolationError, UnderivableError,
                    AssertionViolatedError) as exc:
                errors.append(f"{fallback.step}: {exc}")
                continue
            self.path_taken = fallback.step
            for obj in rows:
                if self.residual is not None and not self.residual(obj):
                    continue
                self.rows_out += 1
                yield obj
            return
        raise UnderivableError(
            f"cannot satisfy query on {self.class_name!r}"
            + (f" ({'; '.join(errors)})" if errors else "")
        )


class ConceptUnion(PhysicalOperator):
    """Union of a concept's member subtrees, cheapest first.

    One shared :class:`ExecutionContext` means the members' fallback
    derivations share supply probes; the cost ordering means cheap
    (indexed, small) members stream before expensive ones.
    """

    def __init__(self, concept: str,
                 members: tuple[PhysicalOperator, ...]):
        self.concept = concept
        self.members = tuple(sorted(members,
                                    key=lambda op: op.estimated_cost))
        self.estimated_rows = sum(m.estimated_rows for m in self.members)
        self.estimated_cost = sum(m.estimated_cost for m in self.members)

    @property
    def children(self) -> tuple[PhysicalOperator, ...]:
        return self.members

    def label(self) -> str:
        return (f"ConceptUnion({self.concept}: "
                f"{len(self.members)} members)")

    def run(self) -> Iterator[Any]:
        for member in self.members:
            for row in member.run():
                self.rows_out += 1
                yield row


# -- process execution --------------------------------------------------------


class Run(PhysicalOperator):
    """``RUN process WITH arg = (oids)`` as a leaf operator."""

    def __init__(self, ctx: ExecutionContext, process: str,
                 bindings: tuple[tuple[str, tuple[int, ...]], ...]):
        self.ctx = ctx
        self.process = process
        self.bindings = bindings
        self.task_id: str | None = None
        self.reused = False
        oid_count = sum(len(oids) for _, oids in bindings)
        self.estimated_rows = 1.0
        # Bound-object fetches plus one firing (dominated by the
        # process body, like Derive).
        self.estimated_cost = DERIVE_COST / 4 + oid_count

    def label(self) -> str:
        bound = ", ".join(
            f"{arg}=({', '.join(map(str, oids))})"
            for arg, oids in self.bindings
        )
        return f"Run({self.process}{' WITH ' + bound if bound else ''})"

    def run(self) -> Iterator[SciObject]:
        kernel = self.ctx.kernel
        derivations = kernel.derivations
        if self.process in derivations.compounds:
            spec_args = derivations.compounds.get(self.process).arguments
        else:
            spec_args = derivations.processes.get(self.process).arguments
        given = dict(self.bindings)
        bindings: dict[str, Any] = {}
        for arg in spec_args:
            if arg.name not in given:
                raise UnderivableError(
                    f"RUN {self.process}: argument {arg.name!r} unbound"
                )
            objects = [kernel.store.get(oid) for oid in given[arg.name]]
            bindings[arg.name] = objects if arg.is_set else objects[0]
        if self.process in derivations.compounds:
            result = derivations.execute_compound(self.process, bindings)
        else:
            result = derivations.execute_process(self.process, bindings)
        self.task_id = result.task.task_id
        self.reused = result.reused
        self.rows_out += 1
        yield result.output
