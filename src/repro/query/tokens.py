"""Token definitions for GaeaQL.

GaeaQL is the small query/DDL language of the interpreter box in
Figure 1.  Its DEFINE PROCESS statement follows the paper's Figure-3
syntax closely; retrieval statements follow the §2.1.5 description.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["TokenType", "Token", "KEYWORDS"]


class TokenType(Enum):
    """Lexical token categories."""

    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    KEYWORD = "keyword"
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    COMMA = ","
    SEMICOLON = ";"
    COLON = ":"
    DOT = "."
    EQUALS = "="
    STAR = "*"
    GE = ">="
    LE = "<="
    GT = ">"
    LT = "<"
    DOLLAR = "$"
    QMARK = "?"
    EOF = "eof"


#: Reserved words (case-insensitive in source, stored upper-case).
KEYWORDS = frozenset({
    "DEFINE", "CLASS", "PROCESS", "COMPOUND", "CONCEPT", "ISA", "MEMBERS",
    "ATTRIBUTES", "SPATIAL", "TEMPORAL", "EXTENT", "DERIVED", "BY",
    "OUTPUT", "ARGUMENT", "SETOF", "TEMPLATE", "ASSERTIONS", "MAPPINGS",
    "PARAMETERS", "ANYOF", "CARD", "COMMON", "STEPS", "RESULT",
    "SELECT", "FROM", "WHERE", "AND", "AT", "IN", "OVERLAPS",
    "DERIVE", "EXPLAIN", "SHOW", "CLASSES", "PROCESSES", "CONCEPTS",
    "TASKS", "LINEAGE", "RUN", "WITH", "EXPERIMENTS", "OPERATORS",
    "TYPES", "CREATE", "DROP", "INDEX", "ON", "INDEXES",
    "JOIN", "GROUP", "ORDER", "LIMIT", "OFFSET", "ASC", "DESC",
})


@dataclass(frozen=True)
class Token:
    """One lexical token with source position (1-based).

    For keywords, ``text`` is the canonical upper-case spelling and
    ``raw`` the source spelling — expression positions that accept
    soft keywords as names (e.g. an attribute called ``extent``) read
    ``raw`` to keep the user's case.
    """

    type: TokenType
    text: str
    line: int
    column: int
    raw: str = ""

    def is_keyword(self, word: str) -> bool:
        """True for the keyword *word* (upper-case)."""
        return self.type is TokenType.KEYWORD and self.text == word
