"""The GaeaQL executor: plan nodes → results against the kernel.

Retrievals come in two shapes: :meth:`Executor.execute` materializes a
full :class:`QueryResult`, while :meth:`Executor.iter_objects` yields
matching objects one at a time, applying post-filters lazily — the
streaming path behind :meth:`repro.query.client.Cursor.fetchone`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from ..core.classes import (
    NonPrimitiveClass,
    SciObject,
    matches_predicates,
)
from ..core.compound import CompoundProcess, Step
from ..core.derivation import Argument, Process
from ..core.planner import RetrievalResult
from ..errors import BindError, ExecutionError, UnderivableError
from ..core.metadata_manager import MetadataManager
from .ast import (
    BoxTemplate,
    CreateIndex,
    DefineClass,
    DefineCompound,
    DefineConcept,
    DefineProcess,
    DropIndex,
    LineageQuery,
    Param,
    RunProcess,
    Show,
    Statement,
)
from .optimizer import (
    DEFERRED_PATH,
    ExplainNode,
    PlanNode,
    RetrieveNode,
    StatementNode,
)

__all__ = ["QueryResult", "Executor"]


@dataclass(frozen=True)
class QueryResult:
    """Result of one plan node.

    ``kind`` is one of ``objects`` (retrievals), ``message`` (DDL and
    browsing), ``explanation`` (EXPLAIN).
    """

    kind: str
    objects: tuple[SciObject, ...] = ()
    message: str = ""
    path: str = ""
    details: dict[str, Any] = field(default_factory=dict)


@dataclass
class Executor:
    """Executes plan nodes produced by the optimizer."""

    kernel: MetadataManager

    def execute(self, node: PlanNode) -> QueryResult:
        """Run one plan node."""
        if isinstance(node, RetrieveNode):
            return self._retrieve(node)
        if isinstance(node, ExplainNode):
            paths: dict[str, str] = {}
            access: dict[str, str] = {}
            lines = []
            for inner in node.inner:
                path, access_dump = self.explain_node(inner)
                paths[inner.class_name] = path
                line = f"{inner.class_name}: path={path}"
                if access_dump is not None:
                    access[inner.class_name] = access_dump
                    line += f" access={access_dump}"
                lines.append(line)
            return QueryResult(
                kind="explanation",
                message="\n".join(lines),
                details={"paths": paths, "access": access},
            )
        if isinstance(node, StatementNode):
            return self._statement(node.statement)
        raise ExecutionError(f"unknown plan node {type(node).__name__}")

    def explain_node(self, node: RetrieveNode) -> tuple[str, str | None]:
        """``(path, access-path dump)``, recomputed when planning
        deferred it.

        Plans compiled from parameterized statements carry
        ``DEFERRED_PATH`` hints and no recorded access path; once bind
        values are in place both can be explained against the current
        store.  A recorded access path that is stale (indexes created or
        dropped since planning) is re-priced rather than reported.
        """
        path = node.path_hint
        access = node.access_path
        store = self.kernel.store
        stale = (access is None or access.index_version
                 != store.engine.catalog.index_version)
        if path == DEFERRED_PATH or stale:
            self._require_bound(node)
            explanation = self.kernel.planner.explain(
                node.class_name, spatial=node.spatial,
                temporal=node.temporal, filters=node.filters,
                ranges=node.ranges,
            )
            if path == DEFERRED_PATH:
                path = str(explanation["path"])
            return path, str(explanation.get("access"))
        return path, access.describe()

    # -- retrieval ------------------------------------------------------------

    @staticmethod
    def _require_bound(node: RetrieveNode) -> None:
        """Reject nodes still holding bind placeholders."""
        unbound = (
            isinstance(node.spatial, (Param, BoxTemplate))
            or isinstance(node.temporal, Param)
            or any(isinstance(v, Param) for _, v in node.filters)
            or any(isinstance(v, Param) for _, _, v in node.ranges)
        )
        if unbound:
            raise BindError(
                f"retrieval of {node.class_name!r} has unbound parameters — "
                "supply bind values (cursor.execute(source, params))"
            )

    def _fetch(self, node: RetrieveNode) -> RetrievalResult:
        """Run the §2.1.5 retrieval sequence for one plan node."""
        self._require_bound(node)
        planner = self.kernel.planner
        if node.force_derivation:
            return planner.derive(node.class_name, node.spatial, node.temporal)
        return planner.retrieve(
            node.class_name, spatial=node.spatial, temporal=node.temporal,
            filters=node.filters, ranges=node.ranges,
        )

    def _filter_derived(self, node: RetrieveNode,
                        objects: tuple[SciObject, ...]
                        ) -> Iterator[SciObject]:
        """Predicate re-check for DERIVE-forced results.

        ``planner.derive`` bypasses retrieval-time pushdown, so apply
        the node's predicates here — normalized first, so string dates
        compare as :class:`AbsTime` exactly like on the retrieval paths
        (``planner.retrieve`` already returns filtered objects).
        """
        cls = self.kernel.classes.get(node.class_name)
        filters, ranges = self.kernel.store.normalize_predicates(
            cls, node.filters, node.ranges
        )
        return (obj for obj in objects
                if matches_predicates(obj, filters, ranges))

    def iter_objects(self, node: RetrieveNode) -> Iterator[SciObject]:
        """Stream the objects of a retrieval node lazily.

        Direct retrievals ride the plan's recorded access path (index
        probe or full scan — re-priced by the store when indexes changed
        since planning) and stream row by row, so ``fetchone`` on a
        selective indexed retrieval touches only the rows the index
        yields.  Only when nothing is stored for the extents does this
        fall back to the §2.1.5 interpolate/derive sequence, which is
        all-or-nothing per class and materializes on the first pull.
        """
        self._require_bound(node)
        planner = self.kernel.planner
        store = self.kernel.store
        if node.force_derivation:
            result = planner.derive(node.class_name, node.spatial,
                                    node.temporal)
            yield from self._filter_derived(node, result.objects)
            return
        produced = False
        for obj in store.iter_find(
            node.class_name, spatial=node.spatial, temporal=node.temporal,
            filters=node.filters, ranges=node.ranges,
            access_path=node.access_path,
        ):
            produced = True
            yield obj
        if produced:
            return
        if (node.filters or node.ranges) and store.exists(
                node.class_name, spatial=node.spatial,
                temporal=node.temporal):
            # Stored data covers the extents; the predicates rejected it
            # all.  Fallbacks are for missing data, not empty results.
            return
        # planner.retrieve has already applied the (normalized)
        # predicates to whatever the fallbacks produced.
        result = self._fetch(node)
        yield from result.objects

    def _retrieve(self, node: RetrieveNode) -> QueryResult:
        result = self._fetch(node)
        objects = (tuple(self._filter_derived(node, result.objects))
                   if node.force_derivation else result.objects)
        details = {
            "class": node.class_name,
            "concept": node.concept,
            "plan_steps": list(result.plan_steps),
            "filters": list(node.filters),
            "ranges": list(node.ranges),
        }
        if node.access_path is not None:
            details["access"] = node.access_path.describe()
        return QueryResult(
            kind="objects",
            objects=objects,
            path=result.path,
            details=details,
        )

    # -- DDL / browsing ------------------------------------------------------------

    def _statement(self, statement: Statement) -> QueryResult:
        if isinstance(statement, DefineClass):
            cls = NonPrimitiveClass(
                name=statement.name,
                attributes=statement.attributes,
                spatial_attr=statement.spatial_attr,
                temporal_attr=statement.temporal_attr,
                derived_by=statement.derived_by,
            )
            self.kernel.derivations.define_class(cls)
            return QueryResult(kind="message",
                               message=f"class {statement.name} defined")
        if isinstance(statement, DefineProcess):
            process = Process(
                name=statement.name,
                output_class=statement.output_class,
                arguments=tuple(
                    Argument(name=a.name, class_name=a.class_name,
                             is_set=a.is_set,
                             min_cardinality=a.min_cardinality)
                    for a in statement.arguments
                ),
                assertions=statement.assertions,
                mappings=dict(statement.mappings),
                parameters=dict(statement.parameters),
            )
            self.kernel.derivations.define_process(process)
            return QueryResult(kind="message",
                               message=f"process {statement.name} defined")
        if isinstance(statement, DefineCompound):
            compound = CompoundProcess(
                name=statement.name,
                output_class=statement.output_class,
                arguments=tuple(
                    Argument(name=a.name, class_name=a.class_name,
                             is_set=a.is_set,
                             min_cardinality=a.min_cardinality)
                    for a in statement.arguments
                ),
                steps=tuple(
                    Step(name=s.name, process=s.process,
                         bindings=dict(s.bindings))
                    for s in statement.steps
                ),
                output_step=statement.output_step,
            )
            self.kernel.derivations.define_compound(compound)
            return QueryResult(
                kind="message",
                message=f"compound process {statement.name} defined",
            )
        if isinstance(statement, DefineConcept):
            self.kernel.concepts.define(statement.name)
            for parent in statement.isa:
                self.kernel.concepts.add_isa(statement.name, parent)
            for member in statement.members:
                self.kernel.classes.get(member)
                self.kernel.concepts.attach_class(statement.name, member)
            return QueryResult(kind="message",
                               message=f"concept {statement.name} defined")
        if isinstance(statement, CreateIndex):
            index = self.kernel.store.create_attribute_index(
                statement.class_name, statement.attr, name=statement.name
            )
            return QueryResult(
                kind="message",
                message=f"index {index.name} created on "
                        f"{statement.class_name}({statement.attr})",
                details={"index": index.name},
            )
        if isinstance(statement, DropIndex):
            if statement.name is not None:
                index = self.kernel.store.drop_index_named(statement.name)
            else:
                self.kernel.store.drop_attribute_index(
                    statement.class_name, statement.attr
                )
                index = None
            name = index.name if index is not None else (
                f"on {statement.class_name}({statement.attr})"
            )
            return QueryResult(kind="message",
                               message=f"index {name} dropped")
        if isinstance(statement, RunProcess):
            return self._run_process(statement)
        if isinstance(statement, Show):
            return self._show(statement)
        if isinstance(statement, LineageQuery):
            lineage = self.kernel.provenance.lineage(statement.oid)
            return QueryResult(
                kind="message",
                message=lineage.describe(),
                details={
                    "steps": [t.task_id for t in lineage.steps],
                    "base_oids": sorted(lineage.base_oids),
                    "depth": lineage.depth,
                },
            )
        raise ExecutionError(
            f"no execution rule for {type(statement).__name__}"
        )

    def _run_process(self, statement: RunProcess) -> QueryResult:
        derivations = self.kernel.derivations
        if statement.process in derivations.compounds:
            spec_args = derivations.compounds.get(statement.process).arguments
        else:
            spec_args = derivations.processes.get(statement.process).arguments
        bindings = {}
        given = dict(statement.bindings)
        for arg in spec_args:
            if arg.name not in given:
                raise UnderivableError(
                    f"RUN {statement.process}: argument {arg.name!r} unbound"
                )
            objects = [self.kernel.store.get(oid) for oid in given[arg.name]]
            bindings[arg.name] = objects if arg.is_set else objects[0]
        if statement.process in derivations.compounds:
            result = derivations.execute_compound(statement.process, bindings)
        else:
            result = derivations.execute_process(statement.process, bindings)
        return QueryResult(
            kind="objects",
            objects=(result.output,),
            path="run",
            details={"task_id": result.task.task_id, "reused": result.reused},
        )

    def _show(self, statement: Show) -> QueryResult:
        kernel = self.kernel
        if statement.what == "classes":
            lines = [
                kernel.classes.get(name).describe()
                for name in kernel.classes.names()
            ]
        elif statement.what == "processes":
            lines = [
                kernel.derivations.processes.get(name).describe()
                for name in kernel.derivations.processes.names()
            ] + [
                kernel.derivations.compounds.get(name).describe()
                for name in kernel.derivations.compounds.names()
            ]
        elif statement.what == "concepts":
            lines = []
            for name in kernel.concepts.names():
                concept = kernel.concepts.get(name)
                parents = sorted(kernel.concepts.parents(name))
                isa = f" ISA {', '.join(parents)}" if parents else ""
                members = sorted(concept.member_classes)
                lines.append(f"CONCEPT {name}{isa} -> {members}")
        elif statement.what == "tasks":
            lines = [task.describe() for task in kernel.derivations.tasks]
        elif statement.what == "experiments":
            lines = [
                e.describe() for e in kernel.experiments.all_experiments()
            ]
        elif statement.what == "operators":
            # §4.2 browsing: "look up appropriate operators for specific
            # primitive classes".
            lines = []
            for name in sorted(kernel.operators.names()):
                for op in kernel.operators.overloads(name):
                    doc = f"  // {op.doc}" if op.doc else ""
                    lines.append(f"{op}{doc}")
        elif statement.what == "indexes":
            # Physical browsing: which secondary structures back which
            # class attributes (extent indexes included).
            lines = [
                f"INDEX {ix.name} ON {ix.relation}({ix.column}) "
                f"[{ix.kind}]"
                for ix in kernel.store.engine.catalog.all_indexes()
            ]
        elif statement.what == "types":
            lines = []
            for type_name in kernel.types.names():
                cls = kernel.types.get(type_name)
                parent = f" ISA {cls.parent}" if cls.parent else ""
                doc = f"  // {cls.doc}" if cls.doc else ""
                lines.append(f"TYPE {cls.name}{parent}{doc}")
        else:
            raise ExecutionError(f"unknown SHOW target {statement.what!r}")
        return QueryResult(kind="message", message="\n".join(lines))
