"""The GaeaQL executor: plan nodes → operator trees → results.

Retrievals come in two shapes: :meth:`Executor.execute` materializes a
full :class:`QueryResult`, while :meth:`Executor.iter_group` yields
matching rows one at a time — the streaming path behind
:meth:`repro.query.client.Cursor.fetchone`.

Both shapes drive the same physical operator tree
(:mod:`repro.query.operators`), compiled per execution from the cached
logical plan by :class:`repro.query.physical.PhysicalPlanner`: a
stored-data scan under a ``FallbackSwitch`` whose interpolate/derive
children consume the scan's "nothing stored here" outcome instead of
re-scanning, concept queries as one cost-ordered ``ConceptUnion``, and
``RUN`` as a ``Run`` leaf.  EXPLAIN renders the very same trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from ..core.classes import NonPrimitiveClass, SciObject
from ..core.compound import CompoundProcess, Step
from ..core.derivation import Argument, Process
from ..errors import BindError, ExecutionError
from ..core.metadata_manager import MetadataManager
from .ast import (
    BoxTemplate,
    CreateIndex,
    DefineClass,
    DefineCompound,
    DefineConcept,
    DefineProcess,
    DropIndex,
    LineageQuery,
    Param,
    RunProcess,
    Show,
    Statement,
)
from .operators import (
    Derive,
    FallbackSwitch,
    HeapScan,
    IndexOnlyScan,
    IndexScan,
    PhysicalOperator,
    Run,
    render_tree,
)
from .optimizer import (
    ExplainNode,
    PlanNode,
    QueryNode,
    RetrieveNode,
    StatementNode,
)
from .physical import ConceptGroup, PhysicalPlanner, group_nodes

__all__ = ["QueryResult", "Executor"]


@dataclass(frozen=True)
class QueryResult:
    """Result of one plan node.

    ``kind`` is one of ``objects`` (retrievals), ``message`` (DDL and
    browsing), ``explanation`` (EXPLAIN).
    """

    kind: str
    objects: tuple[SciObject, ...] = ()
    message: str = ""
    path: str = ""
    details: dict[str, Any] = field(default_factory=dict)


def _tree_walk(op: PhysicalOperator) -> Iterator[PhysicalOperator]:
    yield op
    for child in op.children:
        yield from _tree_walk(child)


def _tree_outcome(tree: PhysicalOperator) -> tuple[str, tuple[str, ...],
                                                   str | None]:
    """``(path, plan_steps, access)`` of a drained retrieval tree."""
    path = ""
    plan_steps: tuple[str, ...] = ()
    access: str | None = None
    for op in _tree_walk(tree):
        if isinstance(op, FallbackSwitch):
            path = op.path_taken or path
            plan_steps = plan_steps or op.plan_steps
        elif isinstance(op, Derive) and not op.known_empty:
            path = path or "derive"
            if op.result is not None:
                plan_steps = plan_steps or op.result.plan_steps
        if isinstance(op, (HeapScan, IndexScan, IndexOnlyScan)) \
                and access is None:
            access = op.path.describe()
    return path, plan_steps, access


@dataclass
class Executor:
    """Executes plan nodes produced by the optimizer."""

    kernel: MetadataManager
    physical: PhysicalPlanner = field(init=False)

    def __post_init__(self) -> None:
        self.physical = PhysicalPlanner(kernel=self.kernel)

    def execute(self, node: PlanNode) -> QueryResult:
        """Run one plan node."""
        if isinstance(node, RetrieveNode):
            return self._retrieve(node)
        if isinstance(node, QueryNode):
            return self._query(node)
        if isinstance(node, ExplainNode):
            return self._explain(node)
        if isinstance(node, StatementNode):
            return self._statement(node.statement)
        raise ExecutionError(f"unknown plan node {type(node).__name__}")

    # -- EXPLAIN ---------------------------------------------------------------

    def explain_node(self, node: RetrieveNode) -> tuple[str, str | None]:
        """``(logical path, access-path dump)`` for one retrieval node,
        resolved against the current store.

        The logical §2.1.5 path is a run-time property of the operator
        tree (the FallbackSwitch decides it), so EXPLAIN peeks at the
        store through the planner's side-effect-free ``explain``.
        """
        self._require_bound(node)
        if node.force_derivation:
            return "derive", None
        explanation = self.kernel.planner.explain(
            node.class_name, spatial=node.spatial,
            temporal=node.temporal, filters=node.filters,
            ranges=node.ranges, projection=node.projection,
        )
        return str(explanation["path"]), str(explanation.get("access"))

    def _explain(self, node: ExplainNode) -> QueryResult:
        """EXPLAIN: the §2.1.5 path summary plus the full operator tree."""
        paths: dict[str, str] = {}
        access: dict[str, str] = {}
        lines: list[str] = []
        for inner in node.inner:
            if isinstance(inner, (RetrieveNode, QueryNode)):
                members = [inner] if isinstance(inner, RetrieveNode) \
                    else self._query_members(inner)
                for member in members:
                    path, access_dump = self.explain_node(member)
                    paths[member.class_name] = path
                    line = f"{member.class_name}: path={path}"
                    if access_dump is not None:
                        access[member.class_name] = access_dump
                        line += f" access={access_dump}"
                    lines.append(line)
            elif isinstance(inner, StatementNode) \
                    and isinstance(inner.statement, RunProcess):
                lines.append(f"run {inner.statement.process}")
        tree_lines: list[str] = []
        for item in group_nodes(node.inner):
            tree = self._build_item(item)
            if tree is not None:
                tree_lines.extend(render_tree(tree))
        return QueryResult(
            kind="explanation",
            message="\n".join(lines + tree_lines),
            details={"paths": paths, "access": access,
                     "tree": "\n".join(tree_lines)},
        )

    def _build_item(self, item: PlanNode | ConceptGroup
                    ) -> PhysicalOperator | None:
        if isinstance(item, RetrieveNode):
            self._require_bound(item)
        elif isinstance(item, ConceptGroup):
            for member in item.members:
                self._require_bound(member)
        elif isinstance(item, QueryNode):
            for member in self._query_members(item):
                self._require_bound(member)
        return self.physical.build(item)

    @staticmethod
    def _query_members(node: QueryNode) -> list[RetrieveNode]:
        members = list(node.inputs)
        if node.join is not None:
            members.extend(node.join.inputs)
        return members

    def render_plan(self, nodes: list[PlanNode]) -> list[str]:
        """Cursor-level plan dump: summary lines plus operator trees.

        One ``retrieve <class>: path=... access=...`` line per
        retrieval (the contract of ``Cursor.explain``), each statement's
        operator tree beneath it.
        """
        lines: list[str] = []
        for item in group_nodes(nodes):
            if isinstance(item, ExplainNode):
                lines.extend(self.render_plan(list(item.inner)))
                continue
            if isinstance(item, ConceptGroup):
                for member in item.members:
                    lines.append(self._summary_line(member))
            elif isinstance(item, RetrieveNode):
                lines.append(self._summary_line(item))
            elif isinstance(item, QueryNode):
                for member in self._query_members(item):
                    lines.append(self._summary_line(member))
            elif isinstance(item, StatementNode):
                if not isinstance(item.statement, RunProcess):
                    lines.append(
                        f"statement {type(item.statement).__name__}"
                    )
                    continue
                lines.append(f"run {item.statement.process}")
            tree = self._build_item(item)
            if tree is not None:
                lines.extend(render_tree(tree))
        return lines

    def _summary_line(self, node: RetrieveNode) -> str:
        path, access = self.explain_node(node)
        line = f"retrieve {node.class_name}: path={path}"
        if node.concept:
            line += f" via concept {node.concept}"
        if access is not None:
            line += f" access={access}"
        return line

    # -- retrieval ------------------------------------------------------------

    @staticmethod
    def _require_bound(node: RetrieveNode) -> None:
        """Reject nodes still holding bind placeholders."""
        unbound = (
            isinstance(node.spatial, (Param, BoxTemplate))
            or isinstance(node.temporal, Param)
            or any(isinstance(v, Param) for _, v in node.filters)
            or any(isinstance(v, Param) for _, _, v in node.ranges)
        )
        if unbound:
            raise BindError(
                f"retrieval of {node.class_name!r} has unbound parameters — "
                "supply bind values (cursor.execute(source, params))"
            )

    def iter_group(self, item: RetrieveNode | ConceptGroup | QueryNode
                   ) -> Iterator[Any]:
        """Stream one grouped plan item's rows lazily.

        Direct retrievals ride the plan's recorded access path (re-priced
        by the store when indexes changed since planning) and stream row
        by row, so ``fetchone`` on a selective indexed retrieval touches
        only the rows the index yields.  Only when nothing is stored for
        the extents does the tree's FallbackSwitch run the §2.1.5
        interpolate/derive sequence — consuming the already-executed
        scan's emptiness instead of re-scanning.  Concept groups stream
        as one cost-ordered union; extended queries stream through
        their full algebra tree (a LIMIT stops the scans early, a
        blocking Sort/HashAggregate materializes only its own input).
        """
        if isinstance(item, QueryNode):
            members: tuple[RetrieveNode, ...] = \
                tuple(self._query_members(item))
        elif isinstance(item, ConceptGroup):
            members = item.members
        else:
            members = (item,)
        for member in members:
            self._require_bound(member)
        tree = self.physical.build(item)
        yield from tree.run()

    def iter_objects(self, node: RetrieveNode) -> Iterator[Any]:
        """Stream the rows of a single retrieval node lazily."""
        yield from self.iter_group(node)

    def _retrieve(self, node: RetrieveNode) -> QueryResult:
        self._require_bound(node)
        tree = self.physical.build_retrieve(node)
        objects = tuple(tree.run())
        path, plan_steps, access = _tree_outcome(tree)
        details: dict[str, Any] = {
            "class": node.class_name,
            "concept": node.concept,
            "plan_steps": list(plan_steps),
            "filters": list(node.filters),
            "ranges": list(node.ranges),
        }
        if access is not None:
            details["access"] = access
        if node.projection:
            details["projection"] = list(node.projection)
        return QueryResult(
            kind="objects",
            objects=objects,
            path=path or ("derive" if node.force_derivation else "retrieve"),
            details=details,
        )

    def _query(self, node: QueryNode) -> QueryResult:
        """Run one extended SELECT (join / aggregate / order / limit)."""
        for member in self._query_members(node):
            self._require_bound(member)
        tree = self.physical.build_query(node)
        objects = tuple(tree.run())
        path, plan_steps, access = _tree_outcome(tree)
        details: dict[str, Any] = {
            "class": node.inputs[0].class_name,
            "concept": node.inputs[0].concept,
            "source": node.source,
            "plan_steps": list(plan_steps),
            "filters": list(node.inputs[0].filters),
            "ranges": list(node.inputs[0].ranges),
        }
        if node.items:
            details["columns"] = [item.alias for item in node.items]
        if node.join is not None:
            details["join"] = node.join.source
        if access is not None:
            details["access"] = access
        return QueryResult(
            kind="objects",
            objects=objects,
            path=path or "retrieve",
            details=details,
        )

    # -- DDL / browsing ------------------------------------------------------------

    def _statement(self, statement: Statement) -> QueryResult:
        if isinstance(statement, DefineClass):
            cls = NonPrimitiveClass(
                name=statement.name,
                attributes=statement.attributes,
                spatial_attr=statement.spatial_attr,
                temporal_attr=statement.temporal_attr,
                derived_by=statement.derived_by,
            )
            self.kernel.derivations.define_class(cls)
            return QueryResult(kind="message",
                               message=f"class {statement.name} defined")
        if isinstance(statement, DefineProcess):
            process = Process(
                name=statement.name,
                output_class=statement.output_class,
                arguments=tuple(
                    Argument(name=a.name, class_name=a.class_name,
                             is_set=a.is_set,
                             min_cardinality=a.min_cardinality)
                    for a in statement.arguments
                ),
                assertions=statement.assertions,
                mappings=dict(statement.mappings),
                parameters=dict(statement.parameters),
            )
            self.kernel.derivations.define_process(process)
            return QueryResult(kind="message",
                               message=f"process {statement.name} defined")
        if isinstance(statement, DefineCompound):
            compound = CompoundProcess(
                name=statement.name,
                output_class=statement.output_class,
                arguments=tuple(
                    Argument(name=a.name, class_name=a.class_name,
                             is_set=a.is_set,
                             min_cardinality=a.min_cardinality)
                    for a in statement.arguments
                ),
                steps=tuple(
                    Step(name=s.name, process=s.process,
                         bindings=dict(s.bindings))
                    for s in statement.steps
                ),
                output_step=statement.output_step,
            )
            self.kernel.derivations.define_compound(compound)
            return QueryResult(
                kind="message",
                message=f"compound process {statement.name} defined",
            )
        if isinstance(statement, DefineConcept):
            self.kernel.concepts.define(statement.name)
            for parent in statement.isa:
                self.kernel.concepts.add_isa(statement.name, parent)
            for member in statement.members:
                self.kernel.classes.get(member)
                self.kernel.concepts.attach_class(statement.name, member)
            return QueryResult(kind="message",
                               message=f"concept {statement.name} defined")
        if isinstance(statement, CreateIndex):
            index = self.kernel.store.create_attribute_index(
                statement.class_name, statement.attr, name=statement.name
            )
            return QueryResult(
                kind="message",
                message=f"index {index.name} created on "
                        f"{statement.class_name}({statement.attr})",
                details={"index": index.name},
            )
        if isinstance(statement, DropIndex):
            if statement.name is not None:
                index = self.kernel.store.drop_index_named(statement.name)
            else:
                self.kernel.store.drop_attribute_index(
                    statement.class_name, statement.attr
                )
                index = None
            name = index.name if index is not None else (
                f"on {statement.class_name}({statement.attr})"
            )
            return QueryResult(kind="message",
                               message=f"index {name} dropped")
        if isinstance(statement, RunProcess):
            return self._run_process(statement)
        if isinstance(statement, Show):
            return self._show(statement)
        if isinstance(statement, LineageQuery):
            lineage = self.kernel.provenance.lineage(statement.oid)
            return QueryResult(
                kind="message",
                message=lineage.describe(),
                details={
                    "steps": [t.task_id for t in lineage.steps],
                    "base_oids": sorted(lineage.base_oids),
                    "depth": lineage.depth,
                },
            )
        raise ExecutionError(
            f"no execution rule for {type(statement).__name__}"
        )

    def _run_process(self, statement: RunProcess) -> QueryResult:
        operator: Run = self.physical.build_run(statement)
        objects = tuple(operator.run())
        return QueryResult(
            kind="objects",
            objects=objects,
            path="run",
            details={"task_id": operator.task_id,
                     "reused": operator.reused},
        )

    def _show(self, statement: Show) -> QueryResult:
        kernel = self.kernel
        if statement.what == "classes":
            lines = [
                kernel.classes.get(name).describe()
                for name in kernel.classes.names()
            ]
        elif statement.what == "processes":
            lines = [
                kernel.derivations.processes.get(name).describe()
                for name in kernel.derivations.processes.names()
            ] + [
                kernel.derivations.compounds.get(name).describe()
                for name in kernel.derivations.compounds.names()
            ]
        elif statement.what == "concepts":
            lines = []
            for name in kernel.concepts.names():
                concept = kernel.concepts.get(name)
                parents = sorted(kernel.concepts.parents(name))
                isa = f" ISA {', '.join(parents)}" if parents else ""
                members = sorted(concept.member_classes)
                lines.append(f"CONCEPT {name}{isa} -> {members}")
        elif statement.what == "tasks":
            lines = [task.describe() for task in kernel.derivations.tasks]
        elif statement.what == "experiments":
            lines = [
                e.describe() for e in kernel.experiments.all_experiments()
            ]
        elif statement.what == "operators":
            # §4.2 browsing: "look up appropriate operators for specific
            # primitive classes".
            lines = []
            for name in sorted(kernel.operators.names()):
                for op in kernel.operators.overloads(name):
                    doc = f"  // {op.doc}" if op.doc else ""
                    lines.append(f"{op}{doc}")
        elif statement.what == "indexes":
            # Physical browsing: which secondary structures back which
            # class attributes (extent indexes included), with the
            # statistics the cost model prices paths from.
            lines = []
            for ix in kernel.store.engine.catalog.all_indexes():
                line = (f"INDEX {ix.name} ON {ix.relation}({ix.column}) "
                        f"[{ix.kind}]")
                if ix.kind == "btree":
                    stats = kernel.store.engine.index_stats(
                        ix.relation, ix.column
                    )
                    line += (f" entries={stats['entries']}"
                             f" distinct_keys={stats['distinct_keys']}"
                             f" histogram_buckets="
                             f"{stats['histogram_buckets']}")
                lines.append(line)
        elif statement.what == "types":
            lines = []
            for type_name in kernel.types.names():
                cls = kernel.types.get(type_name)
                parent = f" ISA {cls.parent}" if cls.parent else ""
                doc = f"  // {cls.doc}" if cls.doc else ""
                lines.append(f"TYPE {cls.name}{parent}{doc}")
        else:
            raise ExecutionError(f"unknown SHOW target {statement.what!r}")
        return QueryResult(kind="message", message="\n".join(lines))
