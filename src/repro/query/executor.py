"""The GaeaQL executor: plan nodes → results against the kernel.

Retrievals come in two shapes: :meth:`Executor.execute` materializes a
full :class:`QueryResult`, while :meth:`Executor.iter_objects` yields
matching objects one at a time, applying post-filters lazily — the
streaming path behind :meth:`repro.query.client.Cursor.fetchone`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from ..core.classes import NonPrimitiveClass, SciObject
from ..core.compound import CompoundProcess, Step
from ..core.derivation import Argument, Process
from ..core.planner import RetrievalResult
from ..errors import BindError, ExecutionError, UnderivableError
from ..core.metadata_manager import MetadataManager
from .ast import (
    BoxTemplate,
    DefineClass,
    DefineCompound,
    DefineConcept,
    DefineProcess,
    LineageQuery,
    Param,
    RunProcess,
    Show,
    Statement,
)
from .optimizer import (
    DEFERRED_PATH,
    ExplainNode,
    PlanNode,
    RetrieveNode,
    StatementNode,
)

__all__ = ["QueryResult", "Executor"]


@dataclass(frozen=True)
class QueryResult:
    """Result of one plan node.

    ``kind`` is one of ``objects`` (retrievals), ``message`` (DDL and
    browsing), ``explanation`` (EXPLAIN).
    """

    kind: str
    objects: tuple[SciObject, ...] = ()
    message: str = ""
    path: str = ""
    details: dict[str, Any] = field(default_factory=dict)


@dataclass
class Executor:
    """Executes plan nodes produced by the optimizer."""

    kernel: MetadataManager

    def execute(self, node: PlanNode) -> QueryResult:
        """Run one plan node."""
        if isinstance(node, RetrieveNode):
            return self._retrieve(node)
        if isinstance(node, ExplainNode):
            paths = {
                inner.class_name: self._explain_path(inner)
                for inner in node.inner
            }
            lines = [
                f"{name}: path={path}" for name, path in paths.items()
            ]
            return QueryResult(
                kind="explanation",
                message="\n".join(lines),
                details={"paths": paths},
            )
        if isinstance(node, StatementNode):
            return self._statement(node.statement)
        raise ExecutionError(f"unknown plan node {type(node).__name__}")

    def _explain_path(self, node: RetrieveNode) -> str:
        """The node's path hint, recomputed when planning deferred it.

        Plans compiled from parameterized statements carry
        ``DEFERRED_PATH`` hints; once bind values are in place the path
        can be explained against the current store.
        """
        if node.path_hint != DEFERRED_PATH:
            return node.path_hint
        self._require_bound(node)
        explanation = self.kernel.planner.explain(
            node.class_name, spatial=node.spatial, temporal=node.temporal
        )
        return str(explanation["path"])

    # -- retrieval ------------------------------------------------------------

    @staticmethod
    def _require_bound(node: RetrieveNode) -> None:
        """Reject nodes still holding bind placeholders."""
        unbound = (
            isinstance(node.spatial, (Param, BoxTemplate))
            or isinstance(node.temporal, Param)
            or any(isinstance(v, Param) for _, v in node.filters)
        )
        if unbound:
            raise BindError(
                f"retrieval of {node.class_name!r} has unbound parameters — "
                "supply bind values (cursor.execute(source, params))"
            )

    def _fetch(self, node: RetrieveNode) -> RetrievalResult:
        """Run the §2.1.5 retrieval sequence for one plan node."""
        self._require_bound(node)
        planner = self.kernel.planner
        if node.force_derivation:
            return planner.derive(node.class_name, node.spatial, node.temporal)
        return planner.retrieve(
            node.class_name, spatial=node.spatial, temporal=node.temporal
        )

    @staticmethod
    def _passes(node: RetrieveNode, obj: SciObject) -> bool:
        return all(obj.get(attr) == value for attr, value in node.filters)

    def iter_objects(self, node: RetrieveNode) -> Iterator[SciObject]:
        """Stream the objects of a retrieval node, filtering lazily.

        The retrieval itself (including any derivation) runs in full on
        the first pull — the planner is all-or-nothing per class — so
        the laziness here is in deferring that work until a row is
        actually wanted and in applying post-filters per object.
        """
        result = self._fetch(node)
        for obj in result.objects:
            if self._passes(node, obj):
                yield obj

    def _retrieve(self, node: RetrieveNode) -> QueryResult:
        result = self._fetch(node)
        objects = tuple(
            obj for obj in result.objects if self._passes(node, obj)
        )
        return QueryResult(
            kind="objects",
            objects=objects,
            path=result.path,
            details={
                "class": node.class_name,
                "concept": node.concept,
                "plan_steps": list(result.plan_steps),
                "filters": list(node.filters),
            },
        )

    # -- DDL / browsing ------------------------------------------------------------

    def _statement(self, statement: Statement) -> QueryResult:
        if isinstance(statement, DefineClass):
            cls = NonPrimitiveClass(
                name=statement.name,
                attributes=statement.attributes,
                spatial_attr=statement.spatial_attr,
                temporal_attr=statement.temporal_attr,
                derived_by=statement.derived_by,
            )
            self.kernel.derivations.define_class(cls)
            return QueryResult(kind="message",
                               message=f"class {statement.name} defined")
        if isinstance(statement, DefineProcess):
            process = Process(
                name=statement.name,
                output_class=statement.output_class,
                arguments=tuple(
                    Argument(name=a.name, class_name=a.class_name,
                             is_set=a.is_set,
                             min_cardinality=a.min_cardinality)
                    for a in statement.arguments
                ),
                assertions=statement.assertions,
                mappings=dict(statement.mappings),
                parameters=dict(statement.parameters),
            )
            self.kernel.derivations.define_process(process)
            return QueryResult(kind="message",
                               message=f"process {statement.name} defined")
        if isinstance(statement, DefineCompound):
            compound = CompoundProcess(
                name=statement.name,
                output_class=statement.output_class,
                arguments=tuple(
                    Argument(name=a.name, class_name=a.class_name,
                             is_set=a.is_set,
                             min_cardinality=a.min_cardinality)
                    for a in statement.arguments
                ),
                steps=tuple(
                    Step(name=s.name, process=s.process,
                         bindings=dict(s.bindings))
                    for s in statement.steps
                ),
                output_step=statement.output_step,
            )
            self.kernel.derivations.define_compound(compound)
            return QueryResult(
                kind="message",
                message=f"compound process {statement.name} defined",
            )
        if isinstance(statement, DefineConcept):
            self.kernel.concepts.define(statement.name)
            for parent in statement.isa:
                self.kernel.concepts.add_isa(statement.name, parent)
            for member in statement.members:
                self.kernel.classes.get(member)
                self.kernel.concepts.attach_class(statement.name, member)
            return QueryResult(kind="message",
                               message=f"concept {statement.name} defined")
        if isinstance(statement, RunProcess):
            return self._run_process(statement)
        if isinstance(statement, Show):
            return self._show(statement)
        if isinstance(statement, LineageQuery):
            lineage = self.kernel.provenance.lineage(statement.oid)
            return QueryResult(
                kind="message",
                message=lineage.describe(),
                details={
                    "steps": [t.task_id for t in lineage.steps],
                    "base_oids": sorted(lineage.base_oids),
                    "depth": lineage.depth,
                },
            )
        raise ExecutionError(
            f"no execution rule for {type(statement).__name__}"
        )

    def _run_process(self, statement: RunProcess) -> QueryResult:
        derivations = self.kernel.derivations
        if statement.process in derivations.compounds:
            spec_args = derivations.compounds.get(statement.process).arguments
        else:
            spec_args = derivations.processes.get(statement.process).arguments
        bindings = {}
        given = dict(statement.bindings)
        for arg in spec_args:
            if arg.name not in given:
                raise UnderivableError(
                    f"RUN {statement.process}: argument {arg.name!r} unbound"
                )
            objects = [self.kernel.store.get(oid) for oid in given[arg.name]]
            bindings[arg.name] = objects if arg.is_set else objects[0]
        if statement.process in derivations.compounds:
            result = derivations.execute_compound(statement.process, bindings)
        else:
            result = derivations.execute_process(statement.process, bindings)
        return QueryResult(
            kind="objects",
            objects=(result.output,),
            path="run",
            details={"task_id": result.task.task_id, "reused": result.reused},
        )

    def _show(self, statement: Show) -> QueryResult:
        kernel = self.kernel
        if statement.what == "classes":
            lines = [
                kernel.classes.get(name).describe()
                for name in kernel.classes.names()
            ]
        elif statement.what == "processes":
            lines = [
                kernel.derivations.processes.get(name).describe()
                for name in kernel.derivations.processes.names()
            ] + [
                kernel.derivations.compounds.get(name).describe()
                for name in kernel.derivations.compounds.names()
            ]
        elif statement.what == "concepts":
            lines = []
            for name in kernel.concepts.names():
                concept = kernel.concepts.get(name)
                parents = sorted(kernel.concepts.parents(name))
                isa = f" ISA {', '.join(parents)}" if parents else ""
                members = sorted(concept.member_classes)
                lines.append(f"CONCEPT {name}{isa} -> {members}")
        elif statement.what == "tasks":
            lines = [task.describe() for task in kernel.derivations.tasks]
        elif statement.what == "experiments":
            lines = [
                e.describe() for e in kernel.experiments.all_experiments()
            ]
        elif statement.what == "operators":
            # §4.2 browsing: "look up appropriate operators for specific
            # primitive classes".
            lines = []
            for name in sorted(kernel.operators.names()):
                for op in kernel.operators.overloads(name):
                    doc = f"  // {op.doc}" if op.doc else ""
                    lines.append(f"{op}{doc}")
        elif statement.what == "types":
            lines = []
            for type_name in kernel.types.names():
                cls = kernel.types.get(type_name)
                parent = f" ISA {cls.parent}" if cls.parent else ""
                doc = f"  // {cls.doc}" if cls.doc else ""
                lines.append(f"TYPE {cls.name}{parent}{doc}")
        else:
            raise ExecutionError(f"unknown SHOW target {statement.what!r}")
        return QueryResult(kind="message", message="\n".join(lines))
