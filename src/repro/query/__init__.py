"""The GaeaQL interpreter: parser, optimizer, executor (Figure 1)."""

from .ast import (
    ArgumentSpec,
    DefineClass,
    DefineCompound,
    DefineConcept,
    DefineProcess,
    Derive,
    Explain,
    LineageQuery,
    RunProcess,
    Select,
    Show,
    Statement,
    StepSpec,
)
from .executor import Executor, QueryResult
from .lexer import tokenize
from .optimizer import ExplainNode, Optimizer, PlanNode, RetrieveNode, StatementNode
from .parser import parse, parse_statement
from .session import GaeaSession, open_session
from .tokens import Token, TokenType

__all__ = [
    "ArgumentSpec",
    "DefineClass",
    "DefineCompound",
    "DefineConcept",
    "DefineProcess",
    "Derive",
    "Explain",
    "ExplainNode",
    "Executor",
    "GaeaSession",
    "LineageQuery",
    "Optimizer",
    "PlanNode",
    "QueryResult",
    "RetrieveNode",
    "RunProcess",
    "Select",
    "Show",
    "Statement",
    "StatementNode",
    "StepSpec",
    "Token",
    "TokenType",
    "open_session",
    "parse",
    "parse_statement",
    "tokenize",
]
