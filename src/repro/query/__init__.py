"""The GaeaQL interpreter: parser, optimizer, executor (Figure 1), plus
the v2 client layer (connections, cursors, prepared statements)."""

from .ast import (
    ArgumentSpec,
    BoxTemplate,
    CreateIndex,
    DefineClass,
    DefineCompound,
    DefineConcept,
    DefineProcess,
    Derive,
    DropIndex,
    Explain,
    LineageQuery,
    Param,
    RunProcess,
    Select,
    Show,
    Statement,
    StepSpec,
)
from .binding import ParamSignature, bind_nodes, collect_signature
from .client import Connection, Cursor, PreparedStatement, connect
from .executor import Executor, QueryResult
from .lexer import tokenize
from .optimizer import (
    CompiledPlan,
    ExplainNode,
    Optimizer,
    PlanCache,
    PlanNode,
    RetrieveNode,
    StatementNode,
    fingerprint,
)
from .parser import parse, parse_statement
from .session import GaeaSession, open_session
from .tokens import Token, TokenType

__all__ = [
    "ArgumentSpec",
    "BoxTemplate",
    "CompiledPlan",
    "Connection",
    "Cursor",
    "Param",
    "ParamSignature",
    "PlanCache",
    "PreparedStatement",
    "bind_nodes",
    "collect_signature",
    "connect",
    "fingerprint",
    "CreateIndex",
    "DefineClass",
    "DefineCompound",
    "DefineConcept",
    "DefineProcess",
    "Derive",
    "DropIndex",
    "Explain",
    "ExplainNode",
    "Executor",
    "GaeaSession",
    "LineageQuery",
    "Optimizer",
    "PlanNode",
    "QueryResult",
    "RetrieveNode",
    "RunProcess",
    "Select",
    "Show",
    "Statement",
    "StatementNode",
    "StepSpec",
    "Token",
    "TokenType",
    "open_session",
    "parse",
    "parse_statement",
    "tokenize",
]
