"""Bind-parameter resolution for prepared GaeaQL plans.

A parsed statement may carry :class:`~repro.query.ast.Param`
placeholders in its value positions.  Planning keeps the placeholders in
the plan nodes, so one compiled plan can be executed many times with
different bind values: :func:`collect_signature` reports what a plan
expects, and :func:`bind_nodes` produces concrete plan nodes from bind
values — validating that nothing is missing, extra, or mis-typed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterable, Mapping, Sequence

from ..errors import BindError
from ..spatial.box import Box
from ..temporal.abstime import AbsTime
from .ast import BoxTemplate, Param
from .optimizer import ExplainNode, PlanNode, QueryNode, RetrieveNode

__all__ = ["ParamSignature", "collect_signature", "bind_nodes"]


@dataclass(frozen=True)
class ParamSignature:
    """What a compiled plan expects from a bind call."""

    positional: int = 0
    names: frozenset[str] = frozenset()

    @property
    def is_empty(self) -> bool:
        return not self.positional and not self.names

    def describe(self) -> str:
        if self.positional:
            return f"{self.positional} positional parameter(s)"
        if self.names:
            return f"named parameter(s) {sorted(self.names)}"
        return "no parameters"


def _params_of(node: PlanNode) -> Iterable[Param]:
    if isinstance(node, ExplainNode):
        for inner in node.inner:
            yield from _params_of(inner)
        return
    if isinstance(node, QueryNode):
        for inner in node.inputs:
            yield from _params_of(inner)
        if node.join is not None:
            for inner in node.join.inputs:
                yield from _params_of(inner)
        if isinstance(node.limit, Param):
            yield node.limit
        if isinstance(node.offset, Param):
            yield node.offset
        return
    if not isinstance(node, RetrieveNode):
        return
    if isinstance(node.spatial, Param):
        yield node.spatial
    elif isinstance(node.spatial, BoxTemplate):
        for coord in node.spatial.coords:
            if isinstance(coord, Param):
                yield coord
    if isinstance(node.temporal, Param):
        yield node.temporal
    for _, value in node.filters:
        if isinstance(value, Param):
            yield value
    for _, _, value in node.ranges:
        if isinstance(value, Param):
            yield value


def collect_signature(nodes: Iterable[PlanNode]) -> ParamSignature:
    """The bind signature of a compiled plan."""
    positional = 0
    names: set[str] = set()
    for node in nodes:
        for param in _params_of(node):
            if param.name is not None:
                names.add(param.name)
            else:
                positional = max(positional, param.index + 1)
    return ParamSignature(positional=positional, names=frozenset(names))


class _Binder:
    """Validated access to one bind call's values."""

    def __init__(self, signature: ParamSignature, params: Any):
        if params is None:
            params = ()
        if isinstance(params, Mapping):
            given = ParamSignature(names=frozenset(params))
            self._named = dict(params)
            self._positional: Sequence[Any] = ()
        elif isinstance(params, Sequence) and not isinstance(params, str):
            given = ParamSignature(positional=len(params))
            self._named = {}
            self._positional = list(params)
        else:
            raise BindError(
                f"bind parameters must be a sequence or a mapping, "
                f"not {type(params).__name__}"
            )
        if signature.positional != given.positional:
            raise BindError(
                f"statement expects {signature.describe()}, "
                f"got {given.positional} positional value(s)"
            )
        missing = signature.names - given.names
        extra = given.names - signature.names
        if missing or extra:
            detail = []
            if missing:
                detail.append(f"missing {sorted(missing)}")
            if extra:
                detail.append(f"unexpected {sorted(extra)}")
            raise BindError(
                f"statement expects {signature.describe()}: "
                + ", ".join(detail)
            )

    def value(self, param: Param) -> Any:
        if param.name is not None:
            return self._named[param.name]
        return self._positional[param.index]


def _bind_spatial(spatial: Any, binder: _Binder) -> Box | None:
    if isinstance(spatial, Param):
        value = binder.value(spatial)
        if not isinstance(value, Box):
            raise BindError(
                f"parameter {spatial.describe()} in OVERLAPS/IN must be a "
                f"Box, got {type(value).__name__}"
            )
        return value
    if isinstance(spatial, BoxTemplate):
        coords = []
        for coord in spatial.coords:
            if isinstance(coord, Param):
                coord = binder.value(coord)
                if not isinstance(coord, (int, float)) \
                        or isinstance(coord, bool):
                    raise BindError(
                        "box coordinate parameters must be numbers, got "
                        f"{type(coord).__name__}"
                    )
            coords.append(float(coord))
        return Box(*coords)
    return spatial


def _bind_temporal(temporal: Any, binder: _Binder) -> AbsTime | None:
    if not isinstance(temporal, Param):
        return temporal
    value = binder.value(temporal)
    if isinstance(value, AbsTime):
        return value
    if isinstance(value, str):
        return AbsTime.parse(value)
    raise BindError(
        f"parameter {temporal.describe()} for a timestamp must be an "
        f"AbsTime or a date string, got {type(value).__name__}"
    )


def _bind_count(count: Any, binder: _Binder, clause: str) -> Any:
    """A bound LIMIT/OFFSET count: a non-negative int."""
    if not isinstance(count, Param):
        return count
    value = binder.value(count)
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        raise BindError(
            f"parameter {count.describe()} in {clause} must be a "
            f"non-negative integer, got {value!r}"
        )
    return value


def _bind_node(node: PlanNode, binder: _Binder) -> PlanNode:
    if isinstance(node, ExplainNode):
        return ExplainNode(inner=tuple(
            _bind_node(inner, binder) for inner in node.inner
        ))
    if isinstance(node, QueryNode):
        join = node.join
        if join is not None:
            join = replace(join, inputs=tuple(
                _bind_node(inner, binder) for inner in join.inputs
            ))
        return replace(
            node, join=join,
            inputs=tuple(_bind_node(inner, binder) for inner in node.inputs),
            limit=_bind_count(node.limit, binder, "LIMIT"),
            offset=_bind_count(node.offset, binder, "OFFSET"),
        )
    if not isinstance(node, RetrieveNode):
        return node
    return replace(
        node,
        spatial=_bind_spatial(node.spatial, binder),
        temporal=_bind_temporal(node.temporal, binder),
        filters=tuple(
            (attr, binder.value(value) if isinstance(value, Param) else value)
            for attr, value in node.filters
        ),
        ranges=tuple(
            (attr, op,
             binder.value(value) if isinstance(value, Param) else value)
            for attr, op, value in node.ranges
        ),
    )


def bind_nodes(nodes: Sequence[PlanNode], signature: ParamSignature,
               params: Any = None) -> list[PlanNode]:
    """Concrete plan nodes with every placeholder replaced by its value."""
    binder = _Binder(signature, params)
    return [_bind_node(node, binder) for node in nodes]
