"""The physical planner: logical plan nodes → operator trees.

The logical plan (what the LRU plan cache stores, keyed on source
fingerprints) stays a flat sequence of
:class:`~repro.query.optimizer.RetrieveNode` /
:class:`~repro.query.optimizer.StatementNode`.  This module compiles
those nodes into :mod:`.operators` trees per execution:

* a plain retrieval becomes scan → extent filter → predicate filter
  under a :class:`~.operators.FallbackSwitch` whose fallback children
  (:class:`~.operators.Interpolate`, :class:`~.operators.Derive`)
  consume the switch's "stored scan was empty" fact;
* ``DERIVE`` becomes a :class:`~.operators.Derive` root (plus filters /
  projection);
* ``RUN`` becomes a :class:`~.operators.Run` leaf;
* a concept query's member nodes are grouped into one
  :class:`~.operators.ConceptUnion` ordered by estimated cost, sharing
  a single :class:`~.operators.ExecutionContext`.

Building a tree prices the access paths from O(1) statistics but never
scans data, so EXPLAIN can render any statement's tree without side
effects.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterable

from ..core.classes import (
    NonPrimitiveClass,
    matches_extents,
    matches_predicates,
)
from ..core.metadata_manager import MetadataManager
from .ast import AggCall, ColumnRef, RunProcess
from .operators import (
    ConceptUnion,
    Derive,
    ExecutionContext,
    ExprProject,
    Filter,
    FallbackSwitch,
    HashAggregate,
    HashJoin,
    HeapScan,
    IndexNestedLoopJoin,
    IndexOnlyScan,
    IndexScan,
    Interpolate,
    Limit,
    PhysicalOperator,
    Project,
    Run,
    Sort,
)
from .optimizer import (
    JoinSpec,
    PlanNode,
    QueryNode,
    RetrieveNode,
    StatementNode,
)

__all__ = ["PhysicalPlanner", "ConceptGroup", "group_nodes"]


@dataclass(frozen=True)
class ConceptGroup:
    """Adjacent retrieval nodes of one concept SELECT, to be unioned."""

    concept: str
    members: tuple[RetrieveNode, ...]


def group_nodes(nodes: Iterable[PlanNode]
                ) -> list[PlanNode | ConceptGroup]:
    """Group each concept SELECT's member nodes for union planning.

    Member nodes carry the statement ordinal they came from, so two
    back-to-back SELECTs over the same concept stay two groups.
    """
    grouped: list[PlanNode | ConceptGroup] = []
    pending: list[RetrieveNode] = []

    def flush() -> None:
        if not pending:
            return
        if len(pending) == 1:
            grouped.append(pending[0])
        else:
            grouped.append(ConceptGroup(concept=pending[0].concept,
                                        members=tuple(pending)))
        pending.clear()

    for node in nodes:
        if isinstance(node, RetrieveNode) and node.concept is not None:
            if pending and (pending[0].concept != node.concept
                            or pending[0].stmt != node.stmt):
                flush()
            pending.append(node)
            continue
        flush()
        grouped.append(node)
    flush()
    return grouped


@dataclass
class PhysicalPlanner:
    """Compiles logical plan nodes into physical operator trees."""

    kernel: MetadataManager

    def context(self) -> ExecutionContext:
        """A fresh execution context (per statement or union)."""
        return ExecutionContext(kernel=self.kernel)

    # -- retrievals ----------------------------------------------------------

    def build_retrieve(self, node: RetrieveNode,
                       ctx: ExecutionContext | None = None,
                       fallback_order: tuple[tuple[Any, bool], ...]
                       | None = None
                       ) -> PhysicalOperator:
        """The operator tree of one (bound) retrieval node.

        *fallback_order* is set when an ordered index scan replaced an
        explicit Sort (sort avoidance): the interpolate/derive fallback
        children — whose output order the index cannot guarantee — each
        get their own small Sort so the tree's order contract holds on
        every path.  These Sorts are never top-K-bounded: the
        FallbackSwitch applies residual predicates *after* a fallback
        runs, so truncating early could drop qualifying rows.
        """
        ctx = ctx or self.context()
        store = self.kernel.store
        cls = self.kernel.classes.get(node.class_name)
        filters, ranges = store.normalize_predicates(
            cls, node.filters, node.ranges
        )
        if node.force_derivation:
            tree: PhysicalOperator = Derive(
                ctx, node.class_name, node.spatial, node.temporal,
                known_empty=False,
            )
            tree = self._attr_filter(tree, filters, ranges)
            return self._project(tree, node)

        path = store.validated_path(
            node.class_name, spatial=node.spatial, temporal=node.temporal,
            filters=filters, ranges=ranges, access_path=node.access_path,
            projection=node.projection,
        )
        if path.index_only:
            scan: PhysicalOperator = IndexOnlyScan(ctx, node.class_name, path)
            extent_counter = scan
            stored = self._attr_filter(scan, filters, ranges)
            observes_extents = False  # probe consumed the predicates
        else:
            scan_cls = HeapScan if path.kind == "full-scan" else IndexScan
            scan = scan_cls(ctx, node.class_name, path,
                            spatial=node.spatial, temporal=node.temporal,
                            filters=filters, ranges=ranges)
            stored = extent_counter = self._extent_filter(scan, cls, node)
            stored = self._attr_filter(stored, filters, ranges)
            observes_extents = path.observes_extents

        fallbacks: list[PhysicalOperator] = []
        for step in self.kernel.planner.fallback_order:
            if step == "interpolate":
                if node.temporal is not None \
                        and cls.temporal_attr is not None:
                    fallbacks.append(Interpolate(
                        ctx, node.class_name, node.spatial, node.temporal
                    ))
            else:
                fallbacks.append(Derive(
                    ctx, node.class_name, node.spatial, node.temporal,
                    known_empty=True,
                ))
        if fallback_order is not None:
            fallbacks = [
                Sort(fallback, fallback_order, self.kernel.operators)
                for fallback in fallbacks
            ]

        residual = None
        if filters or ranges:
            residual = (lambda obj, f=filters, r=ranges:
                        matches_predicates(obj, f, r))
        tree = FallbackSwitch(
            class_name=node.class_name,
            stored=stored,
            extent_counter=extent_counter,
            fallbacks=tuple(fallbacks),
            has_attr_predicates=bool(filters or ranges),
            observes_extents=observes_extents,
            exists_probe=(lambda s=store, n=node: s.exists(
                n.class_name, spatial=n.spatial, temporal=n.temporal
            )),
            residual=residual,
        )
        return self._project(tree, node)

    def _extent_filter(self, child: PhysicalOperator,
                       cls: NonPrimitiveClass, node: RetrieveNode
                       ) -> PhysicalOperator:
        """Extent re-check over a raw scan (grid cells are approximate,
        full scans see everything); pass-through when the query has no
        extent predicates."""
        parts = []
        if node.spatial is not None and cls.spatial_attr is not None:
            parts.append(f"{cls.spatial_attr} overlaps {node.spatial}")
        if node.temporal is not None and cls.temporal_attr is not None:
            parts.append(f"{cls.temporal_attr}={node.temporal}")
        if not parts:
            return child
        return Filter(
            child,
            predicate=(lambda obj, c=cls, n=node: matches_extents(
                obj, c, n.spatial, n.temporal
            )),
            description=" AND ".join(parts),
        )

    @staticmethod
    def _attr_filter(child: PhysicalOperator,
                     filters: tuple[tuple[str, Any], ...],
                     ranges: tuple[tuple[str, str, Any], ...]
                     ) -> PhysicalOperator:
        """Attribute predicate re-check (works on objects and dicts —
        both expose ``.get``); pass-through without predicates."""
        if not (filters or ranges):
            return child
        parts = [f"{attr}={value!r}" for attr, value in filters]
        parts += [f"{attr}{op}{value!r}" for attr, op, value in ranges]
        selectivity = 0.5 ** (len(filters) + len(ranges))
        return Filter(
            child,
            predicate=(lambda row, f=filters, r=ranges:
                       matches_predicates(row, f, r)),
            description=" AND ".join(parts),
            selectivity=max(0.1, selectivity),
        )

    @staticmethod
    def _project(tree: PhysicalOperator, node: RetrieveNode
                 ) -> PhysicalOperator:
        if not node.projection:
            return tree
        return Project(tree, node.projection)

    # -- concept unions ------------------------------------------------------

    def build_group(self, group: ConceptGroup,
                    ctx: ExecutionContext | None = None) -> ConceptUnion:
        """One cost-ordered union over a concept's member subtrees."""
        ctx = ctx or self.context()
        members = tuple(
            self.build_retrieve(member, ctx) for member in group.members
        )
        return ConceptUnion(concept=group.concept, members=members)

    def build(self, item: PlanNode | ConceptGroup,
              ctx: ExecutionContext | None = None
              ) -> PhysicalOperator | None:
        """The tree for one grouped plan item (None for statements that
        have no operator form, e.g. DDL and SHOW)."""
        if isinstance(item, ConceptGroup):
            return self.build_group(item, ctx)
        if isinstance(item, QueryNode):
            return self.build_query(item, ctx)
        if isinstance(item, RetrieveNode):
            return self.build_retrieve(item, ctx)
        if isinstance(item, StatementNode) \
                and isinstance(item.statement, RunProcess):
            return self.build_run(item.statement, ctx)
        return None

    # -- extended queries (join / aggregate / order / limit) -----------------

    def build_query(self, node: QueryNode,
                    ctx: ExecutionContext | None = None
                    ) -> PhysicalOperator:
        """The operator tree of one extended SELECT.

        Composition order: inputs → join → aggregate → sort → limit →
        expression projection.  Sorting runs *before* projection, so an
        ORDER BY may reference projected-out attributes; after an
        aggregate, sort keys resolve against the aggregate's output
        aliases instead.  A Sort under a Limit becomes a bounded top-K
        heap, and when a single ORDER BY key rides a B-tree-indexed
        attribute the cost model may replace the Sort entirely with an
        ordered index scan (sort avoidance, visible in EXPLAIN).
        """
        ctx = ctx or self.context()
        operators = self.kernel.operators
        aggregate = bool(node.group_by) or any(
            isinstance(item.expr, AggCall) for item in node.items
        )
        top_k = None
        if node.limit is not None:
            top_k = node.limit + node.offset
        keys = self._order_keys(node)

        need_sort = bool(keys)
        if (not aggregate and node.join is None and len(node.inputs) == 1
                and len(keys) == 1 and isinstance(keys[0][0], ColumnRef)
                and keys[0][0].qualifier in (None, node.source)):
            # Single-key order over one class: the ordered tree already
            # carries whichever of {ordered index scan, explicit Sort}
            # priced cheaper.
            tree = self._order_tree(node.inputs[0], keys, top_k, ctx)
            need_sort = False
        else:
            tree = self._inputs_tree(node.source, node.inputs, ctx)
        if node.join is not None:
            tree = self._join_tree(node, tree, ctx)
        if aggregate:
            tree = HashAggregate(tree, node.group_by, node.items, operators)
        if need_sort:
            tree = Sort(tree, keys, operators, top_k=top_k)
        if node.limit is not None or node.offset:
            tree = Limit(tree, node.limit, node.offset)
        if node.items and not aggregate:
            tree = ExprProject(tree, node.items, operators)
        return tree

    def _order_keys(self, node: QueryNode
                    ) -> tuple[tuple[Any, bool], ...]:
        """ORDER BY keys as evaluable ``(expr, descending)`` pairs.

        Ordinals resolve to the select item's expression; evaluation
        against post-aggregate dict rows falls back to the rendered
        alias, so the same pair works on both row shapes.
        """
        keys: list[tuple[Any, bool]] = []
        for order in node.order_by:
            if isinstance(order.key, int):
                expr: Any = node.items[order.key - 1].expr
            else:
                expr = order.key
            keys.append((expr, order.descending))
        return tuple(keys)

    def _inputs_tree(self, source: str,
                     inputs: tuple[RetrieveNode, ...],
                     ctx: ExecutionContext) -> PhysicalOperator:
        """One side's tree: a retrieval, or a union of concept members."""
        if len(inputs) == 1:
            return self.build_retrieve(inputs[0], ctx)
        members = tuple(self.build_retrieve(member, ctx)
                        for member in inputs)
        return ConceptUnion(concept=source, members=members)

    def _order_tree(self, node: RetrieveNode,
                    keys: tuple[tuple[Any, bool], ...],
                    top_k: int | None,
                    ctx: ExecutionContext) -> PhysicalOperator:
        """The ordered tree for a single-key ORDER BY over one class.

        Prices an explicit Sort over the cost-chosen scan (bounded by
        ``top_k`` when a LIMIT sits above — the Sort operator's own
        estimate) against a key-order B-tree walk that needs no Sort at
        all (sort avoidance).  Whichever tree prices cheaper is
        returned.
        """
        base = self.build_retrieve(node, ctx)
        explicit = Sort(base, keys, self.kernel.operators, top_k=top_k)
        ref, descending = keys[0]
        if ref.attr == "oid":
            return explicit
        store = self.kernel.store
        try:
            ordered = store.ordered_path(
                node.class_name, ref.attr, descending=descending,
                filters=node.filters, ranges=node.ranges,
                limit_hint=top_k,
            )
        except Exception:
            return explicit
        if ordered is None:
            return explicit
        ordered_tree = self.build_retrieve(
            replace(node, access_path=ordered), ctx,
            fallback_order=keys,
        )
        if ordered_tree.estimated_cost < explicit.estimated_cost:
            return ordered_tree
        return explicit

    def _join_tree(self, node: QueryNode, left: PhysicalOperator,
                   ctx: ExecutionContext) -> PhysicalOperator:
        """The join operator over *left*: hash join vs. index
        nested-loop join, decided by estimated cost."""
        join = node.join
        store = self.kernel.store
        engine = self.kernel.engine
        inlj: IndexNestedLoopJoin | None = None
        if len(join.inputs) == 1:
            right_node = join.inputs[0]
            attr = join.right_ref.attr
            relation = store.relation_for(right_node.class_name)
            per_probe: float | None = None
            if attr == "oid":
                per_probe = 1.0  # surrogate fetch: at most one object
            elif engine.has_index(relation, attr):
                stats = engine.access_info(
                    relation, histogram_columns=()
                )["btrees"].get(attr)
                if stats is not None:
                    per_probe = (stats["entries"]
                                 / max(1, stats["distinct"]))
            if per_probe is not None:
                cls = self.kernel.classes.get(right_node.class_name)
                filters, ranges = store.normalize_predicates(
                    cls, right_node.filters, right_node.ranges
                )
                inlj = IndexNestedLoopJoin(
                    ctx, left, join.left_ref, right_node.class_name,
                    join.right_ref, node.source, join.source,
                    spatial=right_node.spatial,
                    temporal=right_node.temporal,
                    filters=filters, ranges=ranges,
                    per_probe_rows=per_probe,
                )
        right = self._inputs_tree(join.source, join.inputs, ctx)
        hash_join = HashJoin(left, right, join.left_ref, join.right_ref,
                             node.source, join.source)
        if inlj is not None and inlj.estimated_cost < hash_join.estimated_cost:
            return inlj
        return hash_join

    # -- process execution ---------------------------------------------------

    def build_run(self, statement: RunProcess,
                  ctx: ExecutionContext | None = None) -> Run:
        """The operator form of ``RUN process WITH ...``."""
        return Run(ctx or self.context(), statement.process,
                   statement.bindings)
