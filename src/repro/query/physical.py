"""The physical planner: logical plan nodes → operator trees.

The logical plan (what the LRU plan cache stores, keyed on source
fingerprints) stays a flat sequence of
:class:`~repro.query.optimizer.RetrieveNode` /
:class:`~repro.query.optimizer.StatementNode`.  This module compiles
those nodes into :mod:`.operators` trees per execution:

* a plain retrieval becomes scan → extent filter → predicate filter
  under a :class:`~.operators.FallbackSwitch` whose fallback children
  (:class:`~.operators.Interpolate`, :class:`~.operators.Derive`)
  consume the switch's "stored scan was empty" fact;
* ``DERIVE`` becomes a :class:`~.operators.Derive` root (plus filters /
  projection);
* ``RUN`` becomes a :class:`~.operators.Run` leaf;
* a concept query's member nodes are grouped into one
  :class:`~.operators.ConceptUnion` ordered by estimated cost, sharing
  a single :class:`~.operators.ExecutionContext`.

Building a tree prices the access paths from O(1) statistics but never
scans data, so EXPLAIN can render any statement's tree without side
effects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from ..core.classes import (
    NonPrimitiveClass,
    matches_extents,
    matches_predicates,
)
from ..core.metadata_manager import MetadataManager
from .ast import RunProcess
from .operators import (
    ConceptUnion,
    Derive,
    ExecutionContext,
    Filter,
    FallbackSwitch,
    HeapScan,
    IndexOnlyScan,
    IndexScan,
    Interpolate,
    PhysicalOperator,
    Project,
    Run,
)
from .optimizer import PlanNode, RetrieveNode, StatementNode

__all__ = ["PhysicalPlanner", "ConceptGroup", "group_nodes"]


@dataclass(frozen=True)
class ConceptGroup:
    """Adjacent retrieval nodes of one concept SELECT, to be unioned."""

    concept: str
    members: tuple[RetrieveNode, ...]


def group_nodes(nodes: Iterable[PlanNode]
                ) -> list[PlanNode | ConceptGroup]:
    """Group each concept SELECT's member nodes for union planning.

    Member nodes carry the statement ordinal they came from, so two
    back-to-back SELECTs over the same concept stay two groups.
    """
    grouped: list[PlanNode | ConceptGroup] = []
    pending: list[RetrieveNode] = []

    def flush() -> None:
        if not pending:
            return
        if len(pending) == 1:
            grouped.append(pending[0])
        else:
            grouped.append(ConceptGroup(concept=pending[0].concept,
                                        members=tuple(pending)))
        pending.clear()

    for node in nodes:
        if isinstance(node, RetrieveNode) and node.concept is not None:
            if pending and (pending[0].concept != node.concept
                            or pending[0].stmt != node.stmt):
                flush()
            pending.append(node)
            continue
        flush()
        grouped.append(node)
    flush()
    return grouped


@dataclass
class PhysicalPlanner:
    """Compiles logical plan nodes into physical operator trees."""

    kernel: MetadataManager

    def context(self) -> ExecutionContext:
        """A fresh execution context (per statement or union)."""
        return ExecutionContext(kernel=self.kernel)

    # -- retrievals ----------------------------------------------------------

    def build_retrieve(self, node: RetrieveNode,
                       ctx: ExecutionContext | None = None
                       ) -> PhysicalOperator:
        """The operator tree of one (bound) retrieval node."""
        ctx = ctx or self.context()
        store = self.kernel.store
        cls = self.kernel.classes.get(node.class_name)
        filters, ranges = store.normalize_predicates(
            cls, node.filters, node.ranges
        )
        if node.force_derivation:
            tree: PhysicalOperator = Derive(
                ctx, node.class_name, node.spatial, node.temporal,
                known_empty=False,
            )
            tree = self._attr_filter(tree, filters, ranges)
            return self._project(tree, node)

        path = store.validated_path(
            node.class_name, spatial=node.spatial, temporal=node.temporal,
            filters=filters, ranges=ranges, access_path=node.access_path,
            projection=node.projection,
        )
        if path.index_only:
            scan: PhysicalOperator = IndexOnlyScan(ctx, node.class_name, path)
            extent_counter = scan
            stored = self._attr_filter(scan, filters, ranges)
            observes_extents = False  # probe consumed the predicates
        else:
            scan_cls = HeapScan if path.kind == "full-scan" else IndexScan
            scan = scan_cls(ctx, node.class_name, path,
                            spatial=node.spatial, temporal=node.temporal,
                            filters=filters, ranges=ranges)
            stored = extent_counter = self._extent_filter(scan, cls, node)
            stored = self._attr_filter(stored, filters, ranges)
            observes_extents = path.observes_extents

        fallbacks: list[PhysicalOperator] = []
        for step in self.kernel.planner.fallback_order:
            if step == "interpolate":
                if node.temporal is not None \
                        and cls.temporal_attr is not None:
                    fallbacks.append(Interpolate(
                        ctx, node.class_name, node.spatial, node.temporal
                    ))
            else:
                fallbacks.append(Derive(
                    ctx, node.class_name, node.spatial, node.temporal,
                    known_empty=True,
                ))

        residual = None
        if filters or ranges:
            residual = (lambda obj, f=filters, r=ranges:
                        matches_predicates(obj, f, r))
        tree = FallbackSwitch(
            class_name=node.class_name,
            stored=stored,
            extent_counter=extent_counter,
            fallbacks=tuple(fallbacks),
            has_attr_predicates=bool(filters or ranges),
            observes_extents=observes_extents,
            exists_probe=(lambda s=store, n=node: s.exists(
                n.class_name, spatial=n.spatial, temporal=n.temporal
            )),
            residual=residual,
        )
        return self._project(tree, node)

    def _extent_filter(self, child: PhysicalOperator,
                       cls: NonPrimitiveClass, node: RetrieveNode
                       ) -> PhysicalOperator:
        """Extent re-check over a raw scan (grid cells are approximate,
        full scans see everything); pass-through when the query has no
        extent predicates."""
        parts = []
        if node.spatial is not None and cls.spatial_attr is not None:
            parts.append(f"{cls.spatial_attr} overlaps {node.spatial}")
        if node.temporal is not None and cls.temporal_attr is not None:
            parts.append(f"{cls.temporal_attr}={node.temporal}")
        if not parts:
            return child
        return Filter(
            child,
            predicate=(lambda obj, c=cls, n=node: matches_extents(
                obj, c, n.spatial, n.temporal
            )),
            description=" AND ".join(parts),
        )

    @staticmethod
    def _attr_filter(child: PhysicalOperator,
                     filters: tuple[tuple[str, Any], ...],
                     ranges: tuple[tuple[str, str, Any], ...]
                     ) -> PhysicalOperator:
        """Attribute predicate re-check (works on objects and dicts —
        both expose ``.get``); pass-through without predicates."""
        if not (filters or ranges):
            return child
        parts = [f"{attr}={value!r}" for attr, value in filters]
        parts += [f"{attr}{op}{value!r}" for attr, op, value in ranges]
        selectivity = 0.5 ** (len(filters) + len(ranges))
        return Filter(
            child,
            predicate=(lambda row, f=filters, r=ranges:
                       matches_predicates(row, f, r)),
            description=" AND ".join(parts),
            selectivity=max(0.1, selectivity),
        )

    @staticmethod
    def _project(tree: PhysicalOperator, node: RetrieveNode
                 ) -> PhysicalOperator:
        if not node.projection:
            return tree
        return Project(tree, node.projection)

    # -- concept unions ------------------------------------------------------

    def build_group(self, group: ConceptGroup,
                    ctx: ExecutionContext | None = None) -> ConceptUnion:
        """One cost-ordered union over a concept's member subtrees."""
        ctx = ctx or self.context()
        members = tuple(
            self.build_retrieve(member, ctx) for member in group.members
        )
        return ConceptUnion(concept=group.concept, members=members)

    def build(self, item: PlanNode | ConceptGroup,
              ctx: ExecutionContext | None = None
              ) -> PhysicalOperator | None:
        """The tree for one grouped plan item (None for statements that
        have no operator form, e.g. DDL and SHOW)."""
        if isinstance(item, ConceptGroup):
            return self.build_group(item, ctx)
        if isinstance(item, RetrieveNode):
            return self.build_retrieve(item, ctx)
        if isinstance(item, StatementNode) \
                and isinstance(item.statement, RunProcess):
            return self.build_run(item.statement, ctx)
        return None

    # -- process execution ---------------------------------------------------

    def build_run(self, statement: RunProcess,
                  ctx: ExecutionContext | None = None) -> Run:
        """The operator form of ``RUN process WITH ...``."""
        return Run(ctx or self.context(), statement.process,
                   statement.bindings)
