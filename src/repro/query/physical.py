"""The physical planner: logical plan nodes → operator trees.

The logical plan (what the LRU plan cache stores, keyed on source
fingerprints) stays a flat sequence of
:class:`~repro.query.optimizer.RetrieveNode` /
:class:`~repro.query.optimizer.StatementNode`.  This module compiles
those nodes into :mod:`.operators` trees per execution:

* a plain retrieval becomes scan → extent filter → predicate filter
  under a :class:`~.operators.FallbackSwitch` whose fallback children
  (:class:`~.operators.Interpolate`, :class:`~.operators.Derive`)
  consume the switch's "stored scan was empty" fact;
* ``DERIVE`` becomes a :class:`~.operators.Derive` root (plus filters /
  projection);
* ``RUN`` becomes a :class:`~.operators.Run` leaf;
* a concept query's member nodes are grouped into one
  :class:`~.operators.ConceptUnion` ordered by estimated cost, sharing
  a single :class:`~.operators.ExecutionContext`.

Building a tree prices the access paths from O(1) statistics but never
scans data, so EXPLAIN can render any statement's tree without side
effects.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterable

from ..core.classes import (
    NonPrimitiveClass,
    matches_extents,
    matches_predicates,
)
from ..core.metadata_manager import MetadataManager
from ..errors import BindError
from .ast import AggCall, ColumnRef, Param, RunProcess
from .batch import Batch, vectorized_default
from .expressions import (
    compile_extent_mask,
    compile_predicate_mask,
    compile_vector_expr,
)
from .operators import (
    ConceptUnion,
    Derive,
    ExecutionContext,
    ExprProject,
    Filter,
    FallbackSwitch,
    HashAggregate,
    HashJoin,
    HeapScan,
    IndexNestedLoopJoin,
    IndexOnlyScan,
    IndexScan,
    Interpolate,
    Limit,
    PhysicalOperator,
    Project,
    Run,
    ScalarAdapter,
    Sort,
    VectorFilter,
)
from .optimizer import (
    JoinSpec,
    PlanNode,
    QueryNode,
    RetrieveNode,
    StatementNode,
)

__all__ = ["PhysicalPlanner", "ConceptGroup", "group_nodes"]


@dataclass(frozen=True)
class ConceptGroup:
    """Adjacent retrieval nodes of one concept SELECT, to be unioned."""

    concept: str
    members: tuple[RetrieveNode, ...]


def group_nodes(nodes: Iterable[PlanNode]
                ) -> list[PlanNode | ConceptGroup]:
    """Group each concept SELECT's member nodes for union planning.

    Member nodes carry the statement ordinal they came from, so two
    back-to-back SELECTs over the same concept stay two groups.
    """
    grouped: list[PlanNode | ConceptGroup] = []
    pending: list[RetrieveNode] = []

    def flush() -> None:
        if not pending:
            return
        if len(pending) == 1:
            grouped.append(pending[0])
        else:
            grouped.append(ConceptGroup(concept=pending[0].concept,
                                        members=tuple(pending)))
        pending.clear()

    for node in nodes:
        if isinstance(node, RetrieveNode) and node.concept is not None:
            if pending and (pending[0].concept != node.concept
                            or pending[0].stmt != node.stmt):
                flush()
            pending.append(node)
            continue
        flush()
        grouped.append(node)
    flush()
    return grouped


@dataclass
class PhysicalPlanner:
    """Compiles logical plan nodes into physical operator trees.

    ``vectorize`` selects batch-at-a-time execution for the stored-data
    spine (scans, filters, projection, sort, aggregate, limit); ``None``
    follows the process-wide default (on, unless the equivalence tests
    or benchmarks force scalar mode).  Operators that cannot vectorize
    get an explicit :class:`~.operators.ScalarAdapter` below them.
    """

    kernel: MetadataManager
    vectorize: bool | None = None
    batch_size: int | None = None

    def _vectorizing(self) -> bool:
        if self.vectorize is not None:
            return self.vectorize
        return vectorized_default()

    def context(self) -> ExecutionContext:
        """A fresh execution context (per statement or union)."""
        return ExecutionContext(kernel=self.kernel)

    # -- retrievals ----------------------------------------------------------

    def build_retrieve(self, node: RetrieveNode,
                       ctx: ExecutionContext | None = None,
                       fallback_order: tuple[tuple[Any, bool], ...]
                       | None = None
                       ) -> PhysicalOperator:
        """The operator tree of one (bound) retrieval node.

        *fallback_order* is set when an ordered index scan replaced an
        explicit Sort (sort avoidance): the interpolate/derive fallback
        children — whose output order the index cannot guarantee — each
        get their own small Sort so the tree's order contract holds on
        every path.  These Sorts are never top-K-bounded: the
        FallbackSwitch applies residual predicates *after* a fallback
        runs, so truncating early could drop qualifying rows.
        """
        ctx = ctx or self.context()
        store = self.kernel.store
        cls = self.kernel.classes.get(node.class_name)
        filters, ranges = store.normalize_predicates(
            cls, node.filters, node.ranges
        )
        if node.force_derivation:
            tree: PhysicalOperator = Derive(
                ctx, node.class_name, node.spatial, node.temporal,
                known_empty=False,
            )
            tree = self._attr_filter(tree, filters, ranges)
            return self._project(tree, node)

        path = store.validated_path(
            node.class_name, spatial=node.spatial, temporal=node.temporal,
            filters=filters, ranges=ranges, access_path=node.access_path,
            projection=node.projection,
        )
        batch_mode = self._vectorizing()
        if path.index_only:
            scan: PhysicalOperator = IndexOnlyScan(
                ctx, node.class_name, path,
                batch_mode=batch_mode, batch_size=self.batch_size,
            )
            extent_counter = scan
            stored = self._attr_filter(scan, filters, ranges)
            observes_extents = False  # probe consumed the predicates
        else:
            scan_cls = HeapScan if path.kind == "full-scan" else IndexScan
            scan = scan_cls(ctx, node.class_name, path,
                            spatial=node.spatial, temporal=node.temporal,
                            filters=filters, ranges=ranges,
                            batch_mode=batch_mode,
                            batch_size=self.batch_size)
            stored = extent_counter = self._extent_filter(scan, cls, node)
            stored = self._attr_filter(stored, filters, ranges)
            observes_extents = path.observes_extents

        fallbacks: list[PhysicalOperator] = []
        for step in self.kernel.planner.fallback_order:
            if step == "interpolate":
                if node.temporal is not None \
                        and cls.temporal_attr is not None:
                    fallbacks.append(Interpolate(
                        ctx, node.class_name, node.spatial, node.temporal
                    ))
            else:
                fallbacks.append(Derive(
                    ctx, node.class_name, node.spatial, node.temporal,
                    known_empty=True,
                ))
        if fallback_order is not None:
            fallbacks = [
                Sort(fallback, fallback_order, self.kernel.operators)
                for fallback in fallbacks
            ]

        residual = None
        if filters or ranges:
            residual = (lambda obj, f=filters, r=ranges:
                        matches_predicates(obj, f, r))
        tree = FallbackSwitch(
            class_name=node.class_name,
            stored=stored,
            extent_counter=extent_counter,
            fallbacks=tuple(fallbacks),
            has_attr_predicates=bool(filters or ranges),
            observes_extents=observes_extents,
            exists_probe=(lambda s=store, n=node: s.exists(
                n.class_name, spatial=n.spatial, temporal=n.temporal
            )),
            residual=residual,
            batch_builder=(lambda rows, c=cls: Batch.from_objects(rows, c))
            if stored.vectorized else None,
        )
        return self._project(tree, node)

    def _extent_filter(self, child: PhysicalOperator,
                       cls: NonPrimitiveClass, node: RetrieveNode
                       ) -> PhysicalOperator:
        """Extent re-check over a raw scan (grid cells are approximate,
        full scans see everything); pass-through when the query has no
        extent predicates."""
        parts = []
        if node.spatial is not None and cls.spatial_attr is not None:
            parts.append(f"{cls.spatial_attr} overlaps {node.spatial}")
        if node.temporal is not None and cls.temporal_attr is not None:
            parts.append(f"{cls.temporal_attr}={node.temporal}")
        if not parts:
            return child
        description = " AND ".join(parts)
        if child.vectorized:
            return VectorFilter(
                child,
                mask_fn=compile_extent_mask(cls, node.spatial, node.temporal),
                description=description,
            )
        return Filter(
            child,
            predicate=(lambda obj, c=cls, n=node: matches_extents(
                obj, c, n.spatial, n.temporal
            )),
            description=description,
        )

    @staticmethod
    def _attr_filter(child: PhysicalOperator,
                     filters: tuple[tuple[str, Any], ...],
                     ranges: tuple[tuple[str, str, Any], ...]
                     ) -> PhysicalOperator:
        """Attribute predicate re-check (works on objects and dicts —
        both expose ``.get``); pass-through without predicates.  Over a
        vectorized child the predicates compile to one boolean-mask
        evaluation per batch."""
        if not (filters or ranges):
            return child
        parts = [f"{attr}={value!r}" for attr, value in filters]
        parts += [f"{attr}{op}{value!r}" for attr, op, value in ranges]
        selectivity = 0.5 ** (len(filters) + len(ranges))
        description = " AND ".join(parts)
        if child.vectorized:
            return VectorFilter(
                child,
                mask_fn=compile_predicate_mask(filters, ranges),
                description=description,
                selectivity=max(0.1, selectivity),
            )
        return Filter(
            child,
            predicate=(lambda row, f=filters, r=ranges:
                       matches_predicates(row, f, r)),
            description=description,
            selectivity=max(0.1, selectivity),
        )

    @staticmethod
    def _project(tree: PhysicalOperator, node: RetrieveNode
                 ) -> PhysicalOperator:
        if not node.projection:
            return tree
        return Project(tree, node.projection)

    # -- concept unions ------------------------------------------------------

    def build_group(self, group: ConceptGroup,
                    ctx: ExecutionContext | None = None) -> ConceptUnion:
        """One cost-ordered union over a concept's member subtrees."""
        ctx = ctx or self.context()
        members = tuple(
            self.build_retrieve(member, ctx) for member in group.members
        )
        return ConceptUnion(concept=group.concept, members=members)

    def build(self, item: PlanNode | ConceptGroup,
              ctx: ExecutionContext | None = None
              ) -> PhysicalOperator | None:
        """The tree for one grouped plan item (None for statements that
        have no operator form, e.g. DDL and SHOW)."""
        if isinstance(item, ConceptGroup):
            return self.build_group(item, ctx)
        if isinstance(item, QueryNode):
            return self.build_query(item, ctx)
        if isinstance(item, RetrieveNode):
            return self.build_retrieve(item, ctx)
        if isinstance(item, StatementNode) \
                and isinstance(item.statement, RunProcess):
            return self.build_run(item.statement, ctx)
        return None

    # -- extended queries (join / aggregate / order / limit) -----------------

    def build_query(self, node: QueryNode,
                    ctx: ExecutionContext | None = None
                    ) -> PhysicalOperator:
        """The operator tree of one extended SELECT.

        Composition order: inputs → join → aggregate → sort → limit →
        expression projection.  Sorting runs *before* projection, so an
        ORDER BY may reference projected-out attributes; after an
        aggregate, sort keys resolve against the aggregate's output
        aliases instead.  A Sort under a Limit becomes a bounded top-K
        heap, and when a single ORDER BY key rides a B-tree-indexed
        attribute the cost model may replace the Sort entirely with an
        ordered index scan (sort avoidance, visible in EXPLAIN).
        """
        if isinstance(node.limit, Param) or isinstance(node.offset, Param):
            raise BindError(
                "query has unbound LIMIT/OFFSET parameters — supply bind "
                "values (cursor.execute(source, params))"
            )
        ctx = ctx or self.context()
        operators = self.kernel.operators
        aggregate = bool(node.group_by) or any(
            isinstance(item.expr, AggCall) for item in node.items
        )
        top_k = None
        if node.limit is not None:
            top_k = node.limit + node.offset
        keys = self._order_keys(node)

        need_sort = bool(keys)
        if (not aggregate and node.join is None and len(node.inputs) == 1
                and len(keys) == 1 and isinstance(keys[0][0], ColumnRef)
                and keys[0][0].qualifier in (None, node.source)):
            # Single-key order over one class: the ordered tree already
            # carries whichever of {ordered index scan, explicit Sort}
            # priced cheaper.
            tree = self._order_tree(node.inputs[0], keys, top_k, ctx)
            need_sort = False
        else:
            tree = self._inputs_tree(node.source, node.inputs, ctx)
        if node.join is not None:
            tree = self._join_tree(node, tree, ctx)
        if aggregate:
            tree = self._make_aggregate(tree, node, operators)
        if need_sort:
            tree = self._make_sort(tree, keys, top_k)
        if node.limit is not None or node.offset:
            tree = Limit(tree, node.limit, node.offset)
        if node.items and not aggregate:
            tree = self._make_expr_project(tree, node.items, operators)
        return tree

    @staticmethod
    def _uniform_batches(tree: PhysicalOperator) -> bool:
        """Whether every batch off *tree* shares one column layout.

        Pipeline-breaking vectorized operators (Sort, HashAggregate)
        concatenate their input batches; a concept union over several
        classes streams per-class layouts, so those go through a
        ScalarAdapter instead.
        """
        if isinstance(tree, ConceptUnion):
            classes = {getattr(m, "class_name", None) for m in tree.members}
            return len(classes) == 1 and None not in classes
        if isinstance(tree, Limit):
            return PhysicalPlanner._uniform_batches(tree.child)
        return True

    def _make_aggregate(self, tree: PhysicalOperator, node: QueryNode,
                        operators: Any) -> PhysicalOperator:
        """HashAggregate over *tree*, vectorized when every group key and
        aggregate argument compiles to array ops; otherwise an explicit
        scalar boundary under the scalar aggregate."""
        vector_plan = None
        if tree.vectorized and self._uniform_batches(tree):
            vector_plan = self._vector_aggregate_plan(node, operators)
        if tree.vectorized and vector_plan is None:
            tree = ScalarAdapter(tree)
        return HashAggregate(tree, node.group_by, node.items, operators,
                             vector_plan=vector_plan)

    def _vector_aggregate_plan(self, node: QueryNode, operators: Any
                               ) -> tuple | None:
        group_fns = []
        for ref in node.group_by:
            fn = compile_vector_expr(ref, operators)
            if fn is None:
                return None
            group_fns.append(fn)
        item_specs = []
        for item in node.items:
            expr = item.expr
            if isinstance(expr, AggCall):
                if expr.arg is None:
                    item_specs.append((item.alias, "count_star", None))
                    continue
                fn = compile_vector_expr(expr.arg, operators)
                if fn is None:
                    return None
                item_specs.append((item.alias, expr.func, fn))
            else:
                fn = compile_vector_expr(expr, operators)
                if fn is None:
                    return None
                item_specs.append((item.alias, "expr", fn))
        return (tuple(group_fns), tuple(item_specs))

    def _make_sort(self, tree: PhysicalOperator,
                   keys: tuple[tuple[Any, bool], ...],
                   top_k: int | None) -> PhysicalOperator:
        """Sort over *tree*: vectorized (argsort on key columns) when the
        keys compile and the input batches are uniform."""
        operators = self.kernel.operators
        if tree.vectorized and self._uniform_batches(tree):
            vector_keys = tuple(
                compile_vector_expr(expr, operators) for expr, _ in keys
            )
            if all(fn is not None for fn in vector_keys):
                return Sort(tree, keys, operators, top_k=top_k,
                            vector_keys=vector_keys)
        if tree.vectorized:
            tree = ScalarAdapter(tree)
        return Sort(tree, keys, operators, top_k=top_k)

    def _make_expr_project(self, tree: PhysicalOperator,
                           items: tuple, operators: Any
                           ) -> PhysicalOperator:
        """Expression projection: column slices / ufunc dispatch when
        every item compiles, else a scalar boundary."""
        if tree.vectorized:
            vector_items = tuple(
                (item.alias, compile_vector_expr(item.expr, operators))
                for item in items
            )
            if all(fn is not None for _, fn in vector_items):
                return ExprProject(tree, items, operators,
                                   vector_items=vector_items)
            tree = ScalarAdapter(tree)
        return ExprProject(tree, items, operators)

    def _order_keys(self, node: QueryNode
                    ) -> tuple[tuple[Any, bool], ...]:
        """ORDER BY keys as evaluable ``(expr, descending)`` pairs.

        Ordinals resolve to the select item's expression; evaluation
        against post-aggregate dict rows falls back to the rendered
        alias, so the same pair works on both row shapes.
        """
        keys: list[tuple[Any, bool]] = []
        for order in node.order_by:
            if isinstance(order.key, int):
                expr: Any = node.items[order.key - 1].expr
            else:
                expr = order.key
            keys.append((expr, order.descending))
        return tuple(keys)

    def _inputs_tree(self, source: str,
                     inputs: tuple[RetrieveNode, ...],
                     ctx: ExecutionContext) -> PhysicalOperator:
        """One side's tree: a retrieval, or a union of concept members."""
        if len(inputs) == 1:
            return self.build_retrieve(inputs[0], ctx)
        members = tuple(self.build_retrieve(member, ctx)
                        for member in inputs)
        return ConceptUnion(concept=source, members=members)

    def _order_tree(self, node: RetrieveNode,
                    keys: tuple[tuple[Any, bool], ...],
                    top_k: int | None,
                    ctx: ExecutionContext) -> PhysicalOperator:
        """The ordered tree for a single-key ORDER BY over one class.

        Prices an explicit Sort over the cost-chosen scan (bounded by
        ``top_k`` when a LIMIT sits above — the Sort operator's own
        estimate) against a key-order B-tree walk that needs no Sort at
        all (sort avoidance).  Whichever tree prices cheaper is
        returned.
        """
        base = self.build_retrieve(node, ctx)
        explicit = self._make_sort(base, keys, top_k)
        ref, descending = keys[0]
        if ref.attr == "oid":
            return explicit
        store = self.kernel.store
        try:
            ordered = store.ordered_path(
                node.class_name, ref.attr, descending=descending,
                filters=node.filters, ranges=node.ranges,
                limit_hint=top_k,
            )
        except Exception:
            return explicit
        if ordered is None:
            return explicit
        ordered_tree = self.build_retrieve(
            replace(node, access_path=ordered), ctx,
            fallback_order=keys,
        )
        if ordered_tree.estimated_cost < explicit.estimated_cost:
            return ordered_tree
        return explicit

    def _join_tree(self, node: QueryNode, left: PhysicalOperator,
                   ctx: ExecutionContext) -> PhysicalOperator:
        """The join operator over *left*: hash join vs. index
        nested-loop join, decided by estimated cost."""
        join = node.join
        store = self.kernel.store
        engine = self.kernel.engine
        if left.vectorized:
            # Joins match per-row; the build/probe sides cross an
            # explicit scalar boundary.
            left = ScalarAdapter(left)
        inlj: IndexNestedLoopJoin | None = None
        if len(join.inputs) == 1:
            right_node = join.inputs[0]
            attr = join.right_ref.attr
            relation = store.relation_for(right_node.class_name)
            per_probe: float | None = None
            if attr == "oid":
                per_probe = 1.0  # surrogate fetch: at most one object
            elif engine.has_index(relation, attr):
                stats = engine.access_info(
                    relation, histogram_columns=()
                )["btrees"].get(attr)
                if stats is not None:
                    per_probe = (stats["entries"]
                                 / max(1, stats["distinct"]))
            if per_probe is not None:
                cls = self.kernel.classes.get(right_node.class_name)
                filters, ranges = store.normalize_predicates(
                    cls, right_node.filters, right_node.ranges
                )
                inlj = IndexNestedLoopJoin(
                    ctx, left, join.left_ref, right_node.class_name,
                    join.right_ref, node.source, join.source,
                    spatial=right_node.spatial,
                    temporal=right_node.temporal,
                    filters=filters, ranges=ranges,
                    per_probe_rows=per_probe,
                )
        right = self._inputs_tree(join.source, join.inputs, ctx)
        if right.vectorized:
            right = ScalarAdapter(right)
        hash_join = HashJoin(left, right, join.left_ref, join.right_ref,
                             node.source, join.source)
        if inlj is not None and inlj.estimated_cost < hash_join.estimated_cost:
            return inlj
        return hash_join

    # -- process execution ---------------------------------------------------

    def build_run(self, statement: RunProcess,
                  ctx: ExecutionContext | None = None) -> Run:
        """The operator form of ``RUN process WITH ...``."""
        return Run(ctx or self.context(), statement.process,
                   statement.bindings)
