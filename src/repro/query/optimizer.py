"""The GaeaQL optimizer: statement → execution plan.

The optimizer's decisions mirror §2.1.5:

* a ``SELECT`` over a *concept* expands to its member classes (querying
  the high-level layer), each planned independently;
* for each class, the retrieval path is chosen by the §2.1.5 priority —
  direct retrieval, then interpolation/derivation per the planner's
  fallback order — using :meth:`RetrievalPlanner.explain` without side
  effects;
* DDL and browsing statements pass through as singleton plans.

:meth:`Optimizer.compile` adds the prepared-statement fast path: whole
programs are lexed/parsed/planned once and kept in an LRU
:class:`PlanCache` keyed on the source fingerprint.  Entries carry the
kernel's schema version at plan time; DDL (new classes, processes,
concept edits) changes what a plan means, so stale entries are dropped
on lookup instead of being served.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from ..core.metadata_manager import MetadataManager
from ..errors import DerivationError, PlanningError
from ..spatial.box import Box
from ..storage.access import AccessPath
from ..temporal.abstime import AbsTime
from .ast import (
    BoxTemplate,
    CreateIndex,
    DefineClass,
    DefineCompound,
    DefineConcept,
    DefineProcess,
    Derive,
    DropIndex,
    Explain,
    LineageQuery,
    Param,
    RunProcess,
    Select,
    Show,
    Statement,
)
from .parser import parse

__all__ = ["PlanNode", "RetrieveNode", "StatementNode", "ExplainNode",
           "Optimizer", "PlanCache", "CompiledPlan", "fingerprint",
           "DEFERRED_PATH"]

#: Path hint of a retrieval whose extents are bind parameters: the
#: actual path can only be explained once values are bound.
DEFERRED_PATH = "deferred"


def fingerprint(source: str) -> str:
    """Stable fingerprint of a statement's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]


class PlanNode:
    """Base class of executable plan nodes."""


@dataclass(frozen=True)
class RetrieveNode(PlanNode):
    """Planned retrieval of one class with a chosen path hint.

    The extents and filter values may hold unresolved bind placeholders
    (:class:`Param` / :class:`BoxTemplate`) when the node comes from a
    prepared statement; they must be bound before execution.

    The node is the *logical* plan — what the plan cache stores.  The
    physical planner (:mod:`repro.query.physical`) compiles it into an
    operator tree per execution, so the §2.1.5 logical path (retrieve
    vs. interpolate vs. derive) is decided by the tree at run time, not
    pinned at plan time; ``path_hint`` stays :data:`DEFERRED_PATH` and
    EXPLAIN resolves it on demand.
    """

    class_name: str
    spatial: Box | BoxTemplate | Param | None
    temporal: AbsTime | Param | None
    path_hint: str
    concept: str | None = None  # set when the SELECT named a concept
    force_derivation: bool = False
    filters: tuple[tuple[str, Any], ...] = ()
    ranges: tuple[tuple[str, str, Any], ...] = ()
    #: Plan-time physical access path (None when any predicate value is
    #: still a bind placeholder — the store chooses at execution time).
    #: Carries the catalog index version it was priced under; a stale
    #: recorded path is re-chosen by the store rather than trusted.
    access_path: AccessPath | None = None
    #: Requested attributes (``SELECT a, b FROM ...``); empty means all.
    #: A projection an attribute index covers enables index-only scans.
    projection: tuple[str, ...] = ()
    #: Ordinal of the source statement this node came from, so the
    #: physical planner can group one concept SELECT's member nodes
    #: into a single union without merging adjacent statements.
    stmt: int = 0


@dataclass(frozen=True)
class StatementNode(PlanNode):
    """A pass-through plan for DDL / RUN / SHOW / LINEAGE statements."""

    statement: Statement


@dataclass(frozen=True)
class ExplainNode(PlanNode):
    """An EXPLAIN wrapper: report inner plans without executing them.

    Wraps the plan nodes of any explainable statement — SELECT and
    DERIVE produce :class:`RetrieveNode`\\ s, RUN a
    :class:`StatementNode` the executor renders as a ``Run`` operator.
    """

    inner: tuple[PlanNode, ...]


@dataclass(frozen=True)
class CompiledPlan:
    """A compiled program: the executable plan nodes of all statements.

    Nodes may still hold :class:`~repro.query.ast.Param` placeholders;
    :func:`repro.query.binding.bind_nodes` resolves them per execution.
    """

    fingerprint: str
    nodes: tuple[PlanNode, ...]
    cached: bool = False  # True when served from the plan cache


@dataclass
class PlanCache:
    """LRU cache of compiled retrieval plans, validated by schema version.

    A cached entry is only served while the kernel's schema version still
    matches the version it was planned under; DDL bumps the version, so
    stale plans are invalidated lazily on their next lookup.
    """

    maxsize: int = 128
    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    _entries: OrderedDict[str, tuple[tuple[Any, ...], tuple[PlanNode, ...]]] \
        = field(default_factory=OrderedDict)

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: str,
               schema_version: tuple[Any, ...]) -> tuple[PlanNode, ...] | None:
        """The cached nodes for *key*, or None on miss/stale entry.

        Only hits and invalidations are counted here; misses are
        recorded by the caller when it stores a freshly planned program,
        so uncacheable statements (DDL, SHOW, EXPLAIN) do not distort
        the miss rate.
        """
        entry = self._entries.get(key)
        if entry is not None and entry[0] != schema_version:
            del self._entries[key]
            self.invalidations += 1
            entry = None
        if entry is None:
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[1]

    def store(self, key: str, schema_version: tuple[Any, ...],
              nodes: tuple[PlanNode, ...]) -> None:
        """Insert *nodes* (counted as a miss), evicting the least
        recently used entry."""
        self.misses += 1
        self._entries[key] = (schema_version, nodes)
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()


@dataclass
class Optimizer:
    """Plans statements against the current kernel state."""

    kernel: MetadataManager
    statistics: dict[str, Any] = field(default_factory=dict)
    cache: PlanCache = field(default_factory=PlanCache)

    def compile(self, source: str) -> CompiledPlan:
        """Lex, parse and plan *source*, reusing the plan cache.

        Pure retrieval programs (SELECT/DERIVE statements only) are
        cached; DDL, RUN, SHOW and EXPLAIN always re-plan — their
        planning is trivial, and EXPLAIN output must reflect the current
        store contents.
        """
        key = fingerprint(source)
        version = self.kernel.schema_version()
        cached = self.cache.lookup(key, version)
        if cached is not None:
            return CompiledPlan(fingerprint=key, nodes=cached, cached=True)
        nodes = tuple(
            node
            for stmt, statement in enumerate(parse(source))
            for node in self.plan(statement, stmt=stmt)
        )
        if nodes and all(isinstance(n, RetrieveNode) for n in nodes):
            self.cache.store(key, version, nodes)
        return CompiledPlan(fingerprint=key, nodes=nodes)

    def plan(self, statement: Statement, stmt: int = 0) -> list[PlanNode]:
        """Produce the plan nodes for *statement* (usually one).

        *stmt* is the statement's ordinal within its source program;
        plan nodes carry it so concept-member nodes from different
        statements are never merged into one union.
        """
        if isinstance(statement, Select):
            return list(self._plan_select(statement, stmt))
        if isinstance(statement, Explain):
            return [ExplainNode(
                inner=tuple(self.plan(statement.inner, stmt=stmt))
            )]
        if isinstance(statement, Derive):
            return [RetrieveNode(
                class_name=statement.class_name,
                spatial=statement.spatial,
                temporal=statement.temporal,
                path_hint="derive",
                force_derivation=True,
                stmt=stmt,
            )]
        if isinstance(statement, (DefineClass, DefineProcess, DefineCompound,
                                  DefineConcept, RunProcess, Show,
                                  LineageQuery, CreateIndex, DropIndex)):
            return [StatementNode(statement=statement)]
        raise PlanningError(
            f"no planning rule for {type(statement).__name__}"
        )

    def _plan_select(self, select: Select, stmt: int = 0
                     ) -> list[RetrieveNode]:
        targets = self._resolve_source(select.source)
        parameterized = (
            isinstance(select.spatial, (Param, BoxTemplate))
            or isinstance(select.temporal, Param)
        )
        predicates_bound = not (
            any(isinstance(v, Param) for _, v in select.filters)
            or any(isinstance(v, Param) for _, _, v in select.ranges)
        )
        nodes = []
        for class_name in targets:
            cls = self.kernel.classes.get(class_name)
            for attr in select.projection:
                try:
                    cls.type_of(attr)
                except DerivationError:
                    raise PlanningError(
                        f"class {class_name!r} has no attribute {attr!r} "
                        "to project"
                    ) from None
            access_path = None
            if not parameterized and predicates_bound:
                # Cost-based physical access path, recorded in the
                # (cacheable) plan from O(1) statistics — planning never
                # scans data.  The schema version that guards cache
                # entries includes the catalog index version, so
                # CREATE/DROP INDEX invalidates this choice.
                access_path = self.kernel.store.choose_path(
                    class_name, spatial=select.spatial,
                    temporal=select.temporal,
                    filters=select.filters, ranges=select.ranges,
                    projection=select.projection,
                )
            nodes.append(RetrieveNode(
                class_name=class_name,
                spatial=select.spatial,
                temporal=select.temporal,
                # The §2.1.5 logical path is a run-time outcome of the
                # operator tree (the FallbackSwitch); EXPLAIN resolves
                # it on demand against the current store.
                path_hint=DEFERRED_PATH,
                concept=select.source if select.source != class_name else None,
                filters=select.filters,
                ranges=select.ranges,
                access_path=access_path,
                projection=select.projection,
                stmt=stmt,
            ))
        return nodes

    def _resolve_source(self, source: str) -> list[str]:
        """A SELECT source is a class name or a concept name.

        Concepts expand to their member classes, transitively through the
        ISA hierarchy — a query on DESERT covers every desert derivation.
        """
        if source in self.kernel.classes:
            return [source]
        if source in self.kernel.concepts:
            classes = sorted(
                self.kernel.concepts.classes_of(source, transitive=True)
            )
            if not classes:
                raise PlanningError(
                    f"concept {source!r} has no member classes"
                )
            return classes
        raise PlanningError(f"unknown class or concept {source!r}")
