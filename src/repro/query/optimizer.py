"""The GaeaQL optimizer: statement → execution plan.

The optimizer's decisions mirror §2.1.5:

* a ``SELECT`` over a *concept* expands to its member classes (querying
  the high-level layer), each planned independently;
* for each class, the retrieval path is chosen by the §2.1.5 priority —
  direct retrieval, then interpolation/derivation per the planner's
  fallback order — using :meth:`RetrievalPlanner.explain` without side
  effects;
* DDL and browsing statements pass through as singleton plans.

:meth:`Optimizer.compile` adds the prepared-statement fast path: whole
programs are lexed/parsed/planned once and kept in an LRU
:class:`PlanCache` keyed on the source fingerprint.  Entries carry the
kernel's schema version at plan time; DDL (new classes, processes,
concept edits) changes what a plan means, so stale entries are dropped
on lookup instead of being served.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from ..core.metadata_manager import MetadataManager
from ..errors import DerivationError, PlanningError
from ..spatial.box import Box
from ..storage.access import AccessPath
from ..temporal.abstime import AbsTime
from .ast import (
    AggCall,
    BoxTemplate,
    ColumnRef,
    CreateIndex,
    DefineClass,
    DefineCompound,
    DefineConcept,
    DefineProcess,
    Derive,
    DropIndex,
    Explain,
    JoinClause,
    LineageQuery,
    OpCall,
    OrderItem,
    Param,
    RunProcess,
    Select,
    SelectItem,
    Show,
    Statement,
)
from .parser import parse

__all__ = ["PlanNode", "RetrieveNode", "StatementNode", "ExplainNode",
           "QueryNode", "JoinSpec", "Optimizer", "PlanCache",
           "CompiledPlan", "fingerprint", "DEFERRED_PATH"]

#: Path hint of a retrieval whose extents are bind parameters: the
#: actual path can only be explained once values are bound.
DEFERRED_PATH = "deferred"


def fingerprint(source: str) -> str:
    """Stable fingerprint of a statement's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]


class PlanNode:
    """Base class of executable plan nodes."""


@dataclass(frozen=True)
class RetrieveNode(PlanNode):
    """Planned retrieval of one class with a chosen path hint.

    The extents and filter values may hold unresolved bind placeholders
    (:class:`Param` / :class:`BoxTemplate`) when the node comes from a
    prepared statement; they must be bound before execution.

    The node is the *logical* plan — what the plan cache stores.  The
    physical planner (:mod:`repro.query.physical`) compiles it into an
    operator tree per execution, so the §2.1.5 logical path (retrieve
    vs. interpolate vs. derive) is decided by the tree at run time, not
    pinned at plan time; ``path_hint`` stays :data:`DEFERRED_PATH` and
    EXPLAIN resolves it on demand.
    """

    class_name: str
    spatial: Box | BoxTemplate | Param | None
    temporal: AbsTime | Param | None
    path_hint: str
    concept: str | None = None  # set when the SELECT named a concept
    force_derivation: bool = False
    filters: tuple[tuple[str, Any], ...] = ()
    ranges: tuple[tuple[str, str, Any], ...] = ()
    #: Plan-time physical access path (None when any predicate value is
    #: still a bind placeholder — the store chooses at execution time).
    #: Carries the catalog index version it was priced under; a stale
    #: recorded path is re-chosen by the store rather than trusted.
    access_path: AccessPath | None = None
    #: Requested attributes (``SELECT a, b FROM ...``); empty means all.
    #: A projection an attribute index covers enables index-only scans.
    projection: tuple[str, ...] = ()
    #: Ordinal of the source statement this node came from, so the
    #: physical planner can group one concept SELECT's member nodes
    #: into a single union without merging adjacent statements.
    stmt: int = 0


@dataclass(frozen=True)
class JoinSpec(PlanNode):
    """The planned right side of a two-source equi-join.

    ``inputs`` holds one planned retrieval per right-side class (several
    when the join target is a concept, which unions its members).  The
    physical planner chooses hash join vs. index nested-loop join from
    current statistics at build time.
    """

    source: str
    inputs: tuple[RetrieveNode, ...]
    left_ref: ColumnRef
    right_ref: ColumnRef


@dataclass(frozen=True)
class QueryNode(PlanNode):
    """An extended-SELECT plan: retrieval inputs under the relational
    algebra clauses (join / aggregate / order / limit / expression
    projection).

    The retrieval legs are ordinary :class:`RetrieveNode`\\ s (several
    for a concept source), so binding, access-path recording and cache
    invalidation reuse the plain-SELECT machinery; the physical planner
    composes the algebra operators on top per execution.
    """

    source: str
    inputs: tuple[RetrieveNode, ...]
    join: JoinSpec | None = None
    items: tuple[SelectItem, ...] = ()
    group_by: tuple[ColumnRef, ...] = ()
    order_by: tuple[OrderItem, ...] = ()
    #: LIMIT/OFFSET counts; a :class:`~repro.query.ast.Param` placeholder
    #: survives planning so the cached plan binds per execution.
    limit: int | Param | None = None
    offset: int | Param = 0


@dataclass(frozen=True)
class StatementNode(PlanNode):
    """A pass-through plan for DDL / RUN / SHOW / LINEAGE statements."""

    statement: Statement


@dataclass(frozen=True)
class ExplainNode(PlanNode):
    """An EXPLAIN wrapper: report inner plans without executing them.

    Wraps the plan nodes of any explainable statement — SELECT and
    DERIVE produce :class:`RetrieveNode`\\ s, RUN a
    :class:`StatementNode` the executor renders as a ``Run`` operator.
    """

    inner: tuple[PlanNode, ...]


@dataclass(frozen=True)
class CompiledPlan:
    """A compiled program: the executable plan nodes of all statements.

    Nodes may still hold :class:`~repro.query.ast.Param` placeholders;
    :func:`repro.query.binding.bind_nodes` resolves them per execution.
    """

    fingerprint: str
    nodes: tuple[PlanNode, ...]
    cached: bool = False  # True when served from the plan cache


@dataclass
class PlanCache:
    """LRU cache of compiled retrieval plans, validated by schema version.

    A cached entry is only served while the kernel's schema version still
    matches the version it was planned under; DDL bumps the version, so
    stale plans are invalidated lazily on their next lookup.
    """

    maxsize: int = 128
    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    _entries: OrderedDict[str, tuple[tuple[Any, ...], tuple[PlanNode, ...]]] \
        = field(default_factory=OrderedDict)
    # `move_to_end` + eviction is a multi-step mutation of the shared
    # OrderedDict; two threads interleaving it corrupt the LRU order
    # (or KeyError on a concurrently evicted key), so every operation
    # — including the counter bumps — runs under this lock.
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: str,
               schema_version: tuple[Any, ...]) -> tuple[PlanNode, ...] | None:
        """The cached nodes for *key*, or None on miss/stale entry.

        Only hits and invalidations are counted here; misses are
        recorded by the caller when it stores a freshly planned program,
        so uncacheable statements (DDL, SHOW, EXPLAIN) do not distort
        the miss rate.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] != schema_version:
                del self._entries[key]
                self.invalidations += 1
                entry = None
            if entry is None:
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[1]

    def store(self, key: str, schema_version: tuple[Any, ...],
              nodes: tuple[PlanNode, ...]) -> None:
        """Insert *nodes* (counted as a miss), evicting the least
        recently used entry."""
        with self._lock:
            self.misses += 1
            self._entries[key] = (schema_version, nodes)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


@dataclass
class Optimizer:
    """Plans statements against the current kernel state."""

    kernel: MetadataManager
    statistics: dict[str, Any] = field(default_factory=dict)
    cache: PlanCache = field(default_factory=PlanCache)

    def compile(self, source: str) -> CompiledPlan:
        """Lex, parse and plan *source*, reusing the plan cache.

        Pure retrieval programs (SELECT/DERIVE statements only) are
        cached; DDL, RUN, SHOW and EXPLAIN always re-plan — their
        planning is trivial, and EXPLAIN output must reflect the current
        store contents.
        """
        key = fingerprint(source)
        version = self.kernel.schema_version()
        cached = self.cache.lookup(key, version)
        if cached is not None:
            return CompiledPlan(fingerprint=key, nodes=cached, cached=True)
        nodes = tuple(
            node
            for stmt, statement in enumerate(parse(source))
            for node in self.plan(statement, stmt=stmt)
        )
        if nodes and all(isinstance(n, (RetrieveNode, QueryNode))
                         for n in nodes):
            self.cache.store(key, version, nodes)
        return CompiledPlan(fingerprint=key, nodes=nodes)

    def plan(self, statement: Statement, stmt: int = 0) -> list[PlanNode]:
        """Produce the plan nodes for *statement* (usually one).

        *stmt* is the statement's ordinal within its source program;
        plan nodes carry it so concept-member nodes from different
        statements are never merged into one union.
        """
        if isinstance(statement, Select):
            return list(self._plan_select(statement, stmt))
        if isinstance(statement, Explain):
            return [ExplainNode(
                inner=tuple(self.plan(statement.inner, stmt=stmt))
            )]
        if isinstance(statement, Derive):
            return [RetrieveNode(
                class_name=statement.class_name,
                spatial=statement.spatial,
                temporal=statement.temporal,
                path_hint="derive",
                force_derivation=True,
                stmt=stmt,
            )]
        if isinstance(statement, (DefineClass, DefineProcess, DefineCompound,
                                  DefineConcept, RunProcess, Show,
                                  LineageQuery, CreateIndex, DropIndex)):
            return [StatementNode(statement=statement)]
        raise PlanningError(
            f"no planning rule for {type(statement).__name__}"
        )

    def _plan_select(self, select: Select, stmt: int = 0) -> list[PlanNode]:
        extended = (
            select.items or select.join is not None or select.group_by
            or select.order_by or select.limit is not None or select.offset
            or select.qualified_filters or select.qualified_ranges
        )
        if extended:
            return [self._plan_query(select, stmt)]
        return list(self._retrieve_nodes(
            select.source, select.spatial, select.temporal,
            select.filters, select.ranges, select.projection, stmt,
        ))

    def _retrieve_nodes(self, source: str, spatial: Any, temporal: Any,
                        filters: tuple[tuple[str, Any], ...],
                        ranges: tuple[tuple[str, str, Any], ...],
                        projection: tuple[str, ...], stmt: int
                        ) -> list[RetrieveNode]:
        """One planned retrieval per target class of *source*."""
        targets = self._resolve_source(source)
        parameterized = (
            isinstance(spatial, (Param, BoxTemplate))
            or isinstance(temporal, Param)
        )
        predicates_bound = not (
            any(isinstance(v, Param) for _, v in filters)
            or any(isinstance(v, Param) for _, _, v in ranges)
        )
        nodes = []
        for class_name in targets:
            cls = self.kernel.classes.get(class_name)
            for attr in projection:
                try:
                    cls.type_of(attr)
                except DerivationError:
                    raise PlanningError(
                        f"class {class_name!r} has no attribute {attr!r} "
                        "to project"
                    ) from None
            access_path = None
            if not parameterized and predicates_bound:
                # Cost-based physical access path, recorded in the
                # (cacheable) plan from O(1) statistics — planning never
                # scans data.  The schema version that guards cache
                # entries includes the catalog index version, so
                # CREATE/DROP INDEX invalidates this choice.
                access_path = self.kernel.store.choose_path(
                    class_name, spatial=spatial,
                    temporal=temporal,
                    filters=filters, ranges=ranges,
                    projection=projection,
                )
            nodes.append(RetrieveNode(
                class_name=class_name,
                spatial=spatial,
                temporal=temporal,
                # The §2.1.5 logical path is a run-time outcome of the
                # operator tree (the FallbackSwitch); EXPLAIN resolves
                # it on demand against the current store.
                path_hint=DEFERRED_PATH,
                concept=source if source != class_name else None,
                filters=filters,
                ranges=ranges,
                access_path=access_path,
                projection=projection,
                stmt=stmt,
            ))
        return nodes

    # -- extended SELECT (join / aggregate / order / limit) ------------------

    def _plan_query(self, select: Select, stmt: int) -> QueryNode:
        """Plan a SELECT using the algebra clauses into one QueryNode."""
        join = select.join
        if join is not None and join.source == select.source:
            raise PlanningError(
                "a join needs two distinct sources (self-joins are not "
                "supported)"
            )
        left_filters = list(select.filters)
        left_ranges = list(select.ranges)
        right_filters: list[tuple[str, Any]] = []
        right_ranges: list[tuple[str, str, Any]] = []

        def side_for(qualifier: str) -> tuple[list, list]:
            if qualifier == select.source:
                return left_filters, left_ranges
            if join is not None and qualifier == join.source:
                return right_filters, right_ranges
            raise PlanningError(
                f"predicate qualifier {qualifier!r} names neither "
                f"{select.source!r} nor the join source"
            )

        for qualifier, attr, value in select.qualified_filters:
            side_for(qualifier)[0].append((attr, value))
        for qualifier, attr, op, value in select.qualified_ranges:
            side_for(qualifier)[1].append((attr, op, value))

        inputs = tuple(self._retrieve_nodes(
            select.source, select.spatial, select.temporal,
            tuple(left_filters), tuple(left_ranges), (), stmt,
        ))
        join_spec = None
        if join is not None:
            left_ref, right_ref = self._orient_join(select.source, join)
            self._validate_ref(left_ref, select.source, join)
            self._validate_ref(right_ref, select.source, join)
            join_spec = JoinSpec(
                source=join.source,
                inputs=tuple(self._retrieve_nodes(
                    join.source, None, None,
                    tuple(right_filters), tuple(right_ranges), (), stmt,
                )),
                left_ref=left_ref,
                right_ref=right_ref,
            )
        self._validate_query_shape(select, join_spec)
        return QueryNode(
            source=select.source,
            inputs=inputs,
            join=join_spec,
            items=select.items,
            group_by=select.group_by,
            order_by=select.order_by,
            limit=select.limit,
            offset=select.offset,
        )

    def _orient_join(self, left_source: str, join: JoinClause
                     ) -> tuple[ColumnRef, ColumnRef]:
        """``(left_ref, right_ref)`` whichever way the ON was written."""
        quals = (join.on_left.qualifier, join.on_right.qualifier)
        if quals == (left_source, join.source):
            return join.on_left, join.on_right
        if quals == (join.source, left_source):
            return join.on_right, join.on_left
        raise PlanningError(
            f"JOIN ON must relate {left_source!r} to {join.source!r}, "
            f"got qualifiers {quals[0]!r} and {quals[1]!r}"
        )

    def _side_classes(self, source: str) -> list[str]:
        return self._resolve_source(source)

    def _validate_ref(self, ref: ColumnRef, left_source: str,
                      join: JoinSpec | JoinClause | None) -> None:
        """A column reference must name a real attribute of its side
        (``oid`` is the always-present surrogate)."""
        if ref.attr == "oid":
            if ref.qualifier is not None and join is not None \
                    and ref.qualifier not in (left_source, join.source):
                raise PlanningError(
                    f"unknown qualifier {ref.qualifier!r} in "
                    f"{ref.describe()!r}"
                )
            return
        if ref.qualifier is None:
            sources = [left_source] + ([join.source] if join else [])
        elif ref.qualifier == left_source:
            sources = [left_source]
        elif join is not None and ref.qualifier == join.source:
            sources = [join.source]
        else:
            raise PlanningError(
                f"unknown qualifier {ref.qualifier!r} in {ref.describe()!r}"
            )
        for source in sources:
            for class_name in self._side_classes(source):
                try:
                    self.kernel.classes.get(class_name).type_of(ref.attr)
                    return
                except DerivationError:
                    continue
        raise PlanningError(
            f"no source class has attribute {ref.attr!r} "
            f"(in {ref.describe()!r})"
        )

    def _validate_value_expr(self, expr: Any, left_source: str,
                             join: JoinSpec | None) -> None:
        if isinstance(expr, ColumnRef):
            self._validate_ref(expr, left_source, join)
        elif isinstance(expr, OpCall):
            if expr.operator not in self.kernel.operators:
                raise PlanningError(
                    f"unknown operator {expr.operator!r} in projection — "
                    "see SHOW OPERATORS"
                )
            for arg in expr.args:
                self._validate_value_expr(arg, left_source, join)
        elif isinstance(expr, AggCall) and expr.arg is not None:
            self._validate_value_expr(expr.arg, left_source, join)

    def _validate_query_shape(self, select: Select,
                              join: JoinSpec | None) -> None:
        items = select.items
        aggregate = bool(select.group_by) or any(
            isinstance(item.expr, AggCall) for item in items
        )
        if aggregate and not items:
            raise PlanningError("GROUP BY needs a select list")
        group_keys = {ref.describe() for ref in select.group_by}
        for ref in select.group_by:
            self._validate_ref(ref, select.source, join)
        for item in items:
            self._validate_value_expr(item.expr, select.source, join)
            if aggregate and not isinstance(item.expr, AggCall):
                if not (isinstance(item.expr, ColumnRef)
                        and item.expr.describe() in group_keys):
                    raise PlanningError(
                        f"select item {item.alias!r} must be an aggregate "
                        "or a GROUP BY key"
                    )
        aliases = {item.alias for item in items}
        for order in select.order_by:
            if isinstance(order.key, int):
                if not items or not 1 <= order.key <= len(items):
                    raise PlanningError(
                        f"ORDER BY ordinal {order.key} is out of range"
                    )
            elif aggregate:
                if order.key.describe() not in aliases \
                        and order.key.describe() not in group_keys:
                    raise PlanningError(
                        f"ORDER BY {order.key.describe()!r} is neither a "
                        "select item nor a GROUP BY key"
                    )
            else:
                self._validate_ref(order.key, select.source, join)

    def _resolve_source(self, source: str) -> list[str]:
        """A SELECT source is a class name or a concept name.

        Concepts expand to their member classes, transitively through the
        ISA hierarchy — a query on DESERT covers every desert derivation.
        """
        if source in self.kernel.classes:
            return [source]
        if source in self.kernel.concepts:
            classes = sorted(
                self.kernel.concepts.classes_of(source, transitive=True)
            )
            if not classes:
                raise PlanningError(
                    f"concept {source!r} has no member classes"
                )
            return classes
        raise PlanningError(f"unknown class or concept {source!r}")
