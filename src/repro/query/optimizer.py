"""The GaeaQL optimizer: statement → execution plan.

The optimizer's decisions mirror §2.1.5:

* a ``SELECT`` over a *concept* expands to its member classes (querying
  the high-level layer), each planned independently;
* for each class, the retrieval path is chosen by the §2.1.5 priority —
  direct retrieval, then interpolation/derivation per the planner's
  fallback order — using :meth:`RetrievalPlanner.explain` without side
  effects;
* DDL and browsing statements pass through as singleton plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.metadata_manager import MetadataManager
from ..errors import PlanningError
from ..spatial.box import Box
from ..temporal.abstime import AbsTime
from .ast import (
    DefineClass,
    DefineCompound,
    DefineConcept,
    DefineProcess,
    Derive,
    Explain,
    LineageQuery,
    RunProcess,
    Select,
    Show,
    Statement,
)

__all__ = ["PlanNode", "RetrieveNode", "StatementNode", "ExplainNode",
           "Optimizer"]


class PlanNode:
    """Base class of executable plan nodes."""


@dataclass(frozen=True)
class RetrieveNode(PlanNode):
    """Planned retrieval of one class with a chosen path hint."""

    class_name: str
    spatial: Box | None
    temporal: AbsTime | None
    path_hint: str
    concept: str | None = None  # set when the SELECT named a concept
    force_derivation: bool = False
    filters: tuple[tuple[str, Any], ...] = ()


@dataclass(frozen=True)
class StatementNode(PlanNode):
    """A pass-through plan for DDL / RUN / SHOW / LINEAGE statements."""

    statement: Statement


@dataclass(frozen=True)
class ExplainNode(PlanNode):
    """An EXPLAIN wrapper: report inner plans without executing them."""

    inner: tuple[RetrieveNode, ...]


@dataclass
class Optimizer:
    """Plans statements against the current kernel state."""

    kernel: MetadataManager
    statistics: dict[str, Any] = field(default_factory=dict)

    def plan(self, statement: Statement) -> list[PlanNode]:
        """Produce the plan nodes for *statement* (usually one)."""
        if isinstance(statement, Select):
            return list(self._plan_select(statement))
        if isinstance(statement, Explain):
            return [ExplainNode(inner=tuple(self._plan_select(statement.inner)))]
        if isinstance(statement, Derive):
            return [RetrieveNode(
                class_name=statement.class_name,
                spatial=statement.spatial,
                temporal=statement.temporal,
                path_hint="derive",
                force_derivation=True,
            )]
        if isinstance(statement, (DefineClass, DefineProcess, DefineCompound,
                                  DefineConcept, RunProcess, Show,
                                  LineageQuery)):
            return [StatementNode(statement=statement)]
        raise PlanningError(
            f"no planning rule for {type(statement).__name__}"
        )

    def _plan_select(self, select: Select) -> list[RetrieveNode]:
        targets = self._resolve_source(select.source)
        nodes = []
        for class_name in targets:
            explanation = self.kernel.planner.explain(
                class_name, spatial=select.spatial, temporal=select.temporal
            )
            nodes.append(RetrieveNode(
                class_name=class_name,
                spatial=select.spatial,
                temporal=select.temporal,
                path_hint=str(explanation["path"]),
                concept=select.source if select.source != class_name else None,
                filters=select.filters,
            ))
        return nodes

    def _resolve_source(self, source: str) -> list[str]:
        """A SELECT source is a class name or a concept name.

        Concepts expand to their member classes, transitively through the
        ISA hierarchy — a query on DESERT covers every desert derivation.
        """
        if source in self.kernel.classes:
            return [source]
        if source in self.kernel.concepts:
            classes = sorted(
                self.kernel.concepts.classes_of(source, transitive=True)
            )
            if not classes:
                raise PlanningError(
                    f"concept {source!r} has no member classes"
                )
            return classes
        raise PlanningError(f"unknown class or concept {source!r}")
