"""The Gaea client API: connections, cursors, prepared statements.

A DB-API-2.0-shaped layer over the GaeaQL interpreter, built for the
paper's interactive scientists who issue many near-identical retrievals
over the same classes::

    import repro

    with repro.connect() as conn:
        cur = conn.cursor()
        cur.execute(DDL)
        query = conn.prepare(
            "SELECT FROM land_cover WHERE timestamp = ?"
        )
        for stamp in epochs:
            cur.execute(query, [stamp])
            for obj in cur:          # objects stream lazily
                ...

Compared with the legacy ``open_session().execute(str)`` path:

* statements are lexed/parsed/planned once — re-executions hit the
  connection's LRU plan cache (``conn.cache_hits``), which DDL
  invalidates via the kernel's schema version;
* ``?`` positional and ``:name`` named placeholders separate the plan
  from its bind values;
* cursors defer retrieval execution until rows are pulled
  (``fetchone``/``fetchmany``/iteration): post-filters apply lazily and
  each retrieval node runs only as the stream reaches it — though a
  single node still materializes its matching objects at once, since
  the §2.1.5 planner is all-or-nothing per class;
* ``begin``/``commit``/``rollback`` scope object stores in storage-level
  transactions (single writer per kernel), and several connections can
  share one kernel (``connect(kernel=...)``).

Rows are :class:`~repro.core.classes.SciObject` instances, not tuples —
the scientific object is the natural row of this data model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from ..core.metadata_manager import MetadataManager, WORLD, open_kernel
from ..errors import InterfaceError
from ..gis import register_gis_operators
from ..spatial.box import Box
from ..storage.transactions import Transaction
from .binding import ParamSignature, bind_nodes, collect_signature
from .executor import Executor, QueryResult
from .optimizer import (
    Optimizer,
    PlanCache,
    PlanNode,
    QueryNode,
    RetrieveNode,
)
from .physical import ConceptGroup, group_nodes

__all__ = ["connect", "Connection", "Cursor", "PreparedStatement",
           "apilevel", "paramstyle", "threadsafety"]

#: PEP-249 module globals (informational).
apilevel = "2.0"
#: Connections may be shared across threads: readers pin immutable
#: snapshots (never blocking on the writer) and all shared state —
#: plan cache, indexes, transaction manager — is internally locked.
threadsafety = 2
paramstyle = "qmark"  # ':name' named parameters are also accepted


@dataclass(frozen=True)
class PreparedStatement:
    """A compiled statement: plan once, bind and execute many times.

    Obtained from :meth:`Connection.prepare`; pass it (with bind values)
    to :meth:`Cursor.execute`.  The plan template is immutable — binding
    produces fresh concrete plan nodes per execution.
    """

    source: str
    fingerprint: str
    nodes: tuple[PlanNode, ...]
    signature: ParamSignature

    def bind(self, params: Any = None) -> list[PlanNode]:
        """Concrete plan nodes for one execution."""
        return bind_nodes(self.nodes, self.signature, params)


class Connection:
    """A client connection over one Gaea kernel.

    Holds the interpreter pair (optimizer with plan cache, executor) and
    the transaction scope.  Several connections may share a kernel; each
    keeps its own plan cache and history, while transactions serialize at
    the storage layer (single writer per kernel).
    """

    def __init__(self, kernel: MetadataManager,
                 plan_cache_size: int = 128):
        self.kernel = kernel
        self.optimizer = Optimizer(
            kernel=kernel, cache=PlanCache(maxsize=plan_cache_size)
        )
        self.executor = Executor(kernel=kernel)
        self._tx: Transaction | None = None
        #: Pinned committed-set for an explicit read-only transaction
        #: (`begin(read_only=True)`); cleared by commit/rollback.
        self._read_snapshot: Any | None = None
        self._closed = False

    # -- plan-cache statistics -------------------------------------------------

    @property
    def plan_cache(self) -> PlanCache:
        """The connection's LRU plan cache (hit/miss/invalidation stats)."""
        return self.optimizer.cache

    @property
    def cache_hits(self) -> int:
        return self.optimizer.cache.hits

    @property
    def cache_misses(self) -> int:
        return self.optimizer.cache.misses

    # -- statement preparation -------------------------------------------------

    def prepare(self, source: str) -> PreparedStatement:
        """Compile *source* once (through the plan cache).

        Re-preparing the same text, or executing it as a plain string,
        skips re-lexing/re-parsing/re-planning entirely.
        """
        self._check_open()
        plan = self.optimizer.compile(source)
        return PreparedStatement(
            source=source,
            fingerprint=plan.fingerprint,
            nodes=plan.nodes,
            signature=collect_signature(plan.nodes),
        )

    def cursor(self) -> Cursor:
        """A new cursor over this connection."""
        self._check_open()
        return Cursor(self)

    def execute(self, source: str | PreparedStatement,
                params: Any = None) -> list[QueryResult]:
        """Eager convenience: run every statement, return all results.

        Drives a throwaway cursor; use :meth:`cursor` directly to stream
        large retrievals instead of materializing them.
        """
        return self.cursor().run(source, params)

    # -- transactions -----------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._tx is not None or self._read_snapshot is not None

    def begin(self, read_only: bool = False) -> Transaction | None:
        """Open an explicit transaction on the kernel's object store.

        Objects stored until :meth:`commit` are visible to this kernel's
        readers mid-flight (they share the writer's snapshot) but are
        permanently discarded by :meth:`rollback` — the storage layer is
        no-overwrite MVCC, so rolled-back versions simply never commit.

        With *read_only* the connection instead pins a snapshot of
        everything committed right now and returns None: no storage
        transaction opens (any number of read-only transactions run
        concurrently with the single writer, never blocking on it), and
        every statement until :meth:`commit`/:meth:`rollback` sees that
        one frozen view regardless of concurrent commits.
        """
        self._check_open()
        if self.in_transaction:
            label = (f"transaction {self._tx.xid}" if self._tx is not None
                     else "a read-only transaction")
            raise InterfaceError(
                f"{label} is already open on this connection"
            )
        if read_only:
            self._read_snapshot = self.kernel.store.reader_snapshot()
            return None
        self._tx = self.kernel.store.begin_transaction()
        return self._tx

    def commit(self) -> None:
        """Commit the open transaction (no-op outside one: auto-commit)."""
        self._check_open()
        if self._read_snapshot is not None:
            self._read_snapshot = None
            return
        if self._tx is None:
            return
        self.kernel.store.commit_transaction()
        self._tx = None

    def rollback(self) -> None:
        """Abort the open transaction (no-op outside one)."""
        self._check_open()
        if self._read_snapshot is not None:
            self._read_snapshot = None
            return
        if self._tx is None:
            return
        self.kernel.store.rollback_transaction()
        self._tx = None

    def _statement_snapshot(self) -> Any:
        """The snapshot one statement's reads should be pinned to:
        the writer's own view inside an explicit transaction, the
        frozen view inside a read-only transaction, else a fresh
        everything-committed snapshot (statement-level consistency
        under auto-commit)."""
        store = self.kernel.store
        if self._tx is not None:
            return store.engine.snapshot(self._tx)
        if self._read_snapshot is not None:
            return self._read_snapshot
        return store.reader_snapshot()

    # -- lifecycle ---------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close the connection, rolling back any open transaction."""
        if self._closed:
            return
        if self._tx is not None:
            self.rollback()
        self._read_snapshot = None
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")

    def __enter__(self) -> Connection:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.commit()
        else:
            if self._tx is not None:
                self.rollback()
        self.close()


class Cursor:
    """A streaming result handle (PEP-249 shaped).

    ``execute`` runs DDL/RUN/SHOW statements up to the first retrieval
    immediately; retrieval results then stream through ``fetchone`` /
    ``fetchmany`` / iteration, applying post-filters per object.
    Laziness is per plan node: a node's retrieval (and any derivation it
    triggers) runs in full when the stream first reaches it, but later
    nodes — other concept members, later statements — wait until the
    stream gets there, and statements *after* a retrieval execute only
    as the row stream is drained (``fetchall`` drains everything).
    """

    arraysize = 1

    def __init__(self, connection: Connection):
        self.connection = connection
        #: Non-object results (DDL messages, SHOW output, EXPLAIN) in
        #: execution order.
        self.results: list[QueryResult] = []
        self.description: list[tuple] | None = None
        self._rows: Iterator[Any] | None = None
        self._fetched = 0
        self._exhausted = True
        self._closed = False

    # -- execution -------------------------------------------------------------

    def execute(self, operation: str | PreparedStatement,
                params: Any = None) -> Cursor:
        """Execute *operation* (source text or a prepared statement)."""
        return self._execute_nodes(self._bound_nodes(operation, params))

    def _execute_nodes(self, nodes: list[PlanNode]) -> Cursor:
        self.results = []
        self._fetched = 0
        self._describe(nodes)
        boundary = 0
        while boundary < len(nodes) \
                and not isinstance(nodes[boundary],
                                   (RetrieveNode, QueryNode)):
            self.results.append(self.connection.executor.execute(
                nodes[boundary]
            ))
            boundary += 1
        self._exhausted = boundary >= len(nodes)
        self._rows = self._stream(nodes[boundary:])
        return self

    def executemany(self, operation: str | PreparedStatement,
                    seq_of_params: Any) -> Cursor:
        """Execute once per parameter set, draining each run.

        The statement is compiled (or cache-validated) exactly once, up
        front; each parameter set then binds against that one plan
        template instead of touching the plan cache again per set.
        """
        prepared = self.connection.prepare(
            operation.source if isinstance(operation, PreparedStatement)
            else operation
        )
        for params in seq_of_params:
            self._execute_nodes(prepared.bind(params))
            self.fetchall()
        return self

    def explain(self, operation: str | PreparedStatement,
                params: Any = None) -> str:
        """A plan dump for *operation* without returning any rows.

        Pricing probes the store's statistics (and may scan to resolve
        the §2.1.5 logical path) but has no side effects — no
        derivations run and nothing is materialized for the caller.

        Each retrieval gets a summary line with the logical path and
        the cost-based physical access path (e.g.
        ``index-eq(band=4) rows~100 cost~144.0``), followed by the full
        physical operator tree with per-operator estimates — scans,
        filters, fallback switches, concept unions — so a user can
        verify an index is actually being used before paying for the
        query::

            >>> cur.explain("SELECT FROM landsat_tm WHERE band = 4")
            'retrieve landsat_tm: path=retrieve access=index-eq(...) ...'

        ``EXPLAIN DERIVE ...`` and ``EXPLAIN RUN ...`` render the
        derivation and process-execution operators the same way.
        """
        nodes = self._bound_nodes(operation, params)
        return "\n".join(self.connection.executor.render_plan(nodes))

    def run(self, operation: str | PreparedStatement,
            params: Any = None) -> list[QueryResult]:
        """Eagerly execute every statement, returning full results.

        The materializing counterpart of :meth:`execute`: statement
        order is strictly preserved and retrievals come back as
        ``kind="objects"`` results — the contract the legacy session API
        and the CLI render.
        """
        nodes = self._bound_nodes(operation, params)
        self.results = []
        self._rows = None
        self._exhausted = True
        self._describe(nodes)
        executor = self.connection.executor
        store = self.connection.kernel.store
        out = []
        for node in nodes:
            if isinstance(node, (RetrieveNode, QueryNode)):
                # Eager materialization: safe to pin around the whole
                # call (no generator escapes the context).
                with store.read_view(
                        self.connection._statement_snapshot()):
                    out.append(executor.execute(node))
            else:
                out.append(executor.execute(node))
        self.results = [r for r in out if r.kind != "objects"]
        self._fetched = sum(
            len(r.objects) for r in out if r.kind == "objects"
        )
        return out

    # -- fetching ---------------------------------------------------------------

    def fetchone(self) -> Any | None:
        """The next object, or None when the stream is exhausted."""
        self._check_open()
        if self._rows is None:
            raise InterfaceError("no execute() has been issued")
        for obj in self._rows:
            self._fetched += 1
            return obj
        self._exhausted = True
        return None

    def fetchmany(self, size: int | None = None) -> list[Any]:
        """Up to *size* objects (default ``arraysize``)."""
        count = self.arraysize if size is None else size
        out = []
        while len(out) < count:
            obj = self.fetchone()
            if obj is None:
                break
            out.append(obj)
        return out

    def fetchall(self) -> list[Any]:
        """Every remaining object (drains the stream)."""
        out = []
        while True:
            obj = self.fetchone()
            if obj is None:
                return out
            out.append(obj)

    def __iter__(self) -> Iterator[Any]:
        while True:
            obj = self.fetchone()
            if obj is None:
                return
            yield obj

    @property
    def rowcount(self) -> int:
        """Objects produced so far; -1 while the stream is still open."""
        if not self._exhausted:
            return -1
        return self._fetched

    def close(self) -> None:
        self._rows = None
        self._exhausted = True
        self._closed = True

    # -- internals ---------------------------------------------------------------

    def _bound_nodes(self, operation: str | PreparedStatement,
                     params: Any) -> list[PlanNode]:
        self._check_open()
        self.connection._check_open()
        if isinstance(operation, PreparedStatement):
            # Go through the plan cache rather than the statement's own
            # template: repeated executions count as cache hits, and a
            # statement prepared before DDL transparently re-plans
            # (the cache invalidates on schema-version mismatch).
            plan = self.connection.optimizer.compile(operation.source)
            return bind_nodes(plan.nodes, operation.signature, params)
        prepared = self.connection.prepare(operation)
        return prepared.bind(params)

    def _describe(self, nodes: list[PlanNode]) -> None:
        """PEP-249 ``description`` from the first retrieval's class.

        Projected retrievals describe only the requested attributes
        (their rows are plain dicts restricted to the projection).
        """
        self.description = None
        for node in nodes:
            if isinstance(node, QueryNode):
                if node.items:
                    # Expression/aggregate columns: types are whatever
                    # the expressions produce.
                    self.description = [
                        (item.alias, None, None, None, None, None, None)
                        for item in node.items
                    ]
                    return
                node = node.inputs[0]
            if isinstance(node, RetrieveNode):
                cls = self.connection.kernel.classes.get(node.class_name)
                attributes = cls.attributes
                if node.projection:
                    attributes = tuple(
                        (attr, cls.type_of(attr))
                        for attr in node.projection
                    )
                self.description = [
                    (attr, type_name, None, None, None, None, None)
                    for attr, type_name in attributes
                ]
                return

    def _stream(self, nodes: list[PlanNode]) -> Iterator[Any]:
        """Drive the plan lazily, one grouped operator tree at a time.

        A concept SELECT's member nodes run as a single cost-ordered
        ``ConceptUnion`` tree, so cheap members stream before expensive
        ones and fallback derivations share one execution context.
        """
        executor = self.connection.executor
        for item in group_nodes(nodes):
            if isinstance(item, (RetrieveNode, ConceptGroup, QueryNode)):
                snapshot = self.connection._statement_snapshot()
                yield from self._pinned(executor.iter_group(item), snapshot)
            else:
                self.results.append(executor.execute(item))
        self._exhausted = True

    def _pinned(self, rows: Iterator[Any], snapshot: Any) -> Iterator[Any]:
        """Drive *rows* with *snapshot* pinned around each ``next()``.

        The pin must wrap the individual ``next()`` calls, not this
        generator's body: a ContextVar set inside a generator leaks to
        the caller across yields (PEP 567 has no per-generator context),
        so a ``with read_view(...)`` around a ``yield from`` would bleed
        the pin into whatever code consumes the cursor.
        """
        store = self.connection.kernel.store
        while True:
            with store.read_view(snapshot):
                try:
                    obj = next(rows)
                except StopIteration:
                    return
            yield obj

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")

    def __enter__(self) -> Cursor:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def connect(universe: Box = WORLD,
            with_gis_operators: bool = True,
            kernel: MetadataManager | None = None,
            plan_cache_size: int = 128) -> Connection:
    """Open a connection to a Gaea kernel.

    With no *kernel*, a fresh one is created over *universe* (GIS
    operators registered by default, as the paper's processes need
    them).  Pass an existing kernel to open additional concurrent
    connections over the same data::

        conn_a = repro.connect()
        conn_b = repro.connect(kernel=conn_a.kernel)
    """
    if kernel is None:
        kernel = open_kernel(universe=universe)
        if with_gis_operators:
            register_gis_operators(kernel.operators)
    return Connection(kernel=kernel, plan_cache_size=plan_cache_size)
