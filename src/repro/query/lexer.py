"""GaeaQL lexer."""

from __future__ import annotations

from ..errors import LexError
from .tokens import KEYWORDS, Token, TokenType

__all__ = ["tokenize"]

_SINGLE = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    ",": TokenType.COMMA,
    ";": TokenType.SEMICOLON,
    ":": TokenType.COLON,
    ".": TokenType.DOT,
    "=": TokenType.EQUALS,
    "*": TokenType.STAR,
    "$": TokenType.DOLLAR,
    "?": TokenType.QMARK,
}


def tokenize(source: str) -> list[Token]:
    """Tokenize *source*, ending with an EOF token.

    Comments run from ``//`` to end of line (the paper's class-definition
    style).  Identifiers may contain letters, digits, ``_`` and ``-``
    (process names like ``unsupervised-classification``); a ``-``
    immediately followed by a digit at identifier start is a negative
    number instead.
    """
    tokens: list[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(source)

    def push(ttype: TokenType, text: str, start_col: int) -> None:
        tokens.append(Token(type=ttype, text=text, line=line, column=start_col))

    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch in "><":
            start = col
            if i + 1 < n and source[i + 1] == "=":
                push(TokenType.GE if ch == ">" else TokenType.LE,
                     ch + "=", start)
                i += 2
                col += 2
            else:
                push(TokenType.GT if ch == ">" else TokenType.LT, ch, start)
                i += 1
                col += 1
            continue
        if ch in _SINGLE:
            push(_SINGLE[ch], ch, col)
            i += 1
            col += 1
            continue
        if ch in "\"'":
            quote = ch
            start_col = col
            i += 1
            col += 1
            buf = []
            while i < n and source[i] != quote:
                if source[i] == "\n":
                    raise LexError("unterminated string literal", line, start_col)
                buf.append(source[i])
                i += 1
                col += 1
            if i >= n:
                raise LexError("unterminated string literal", line, start_col)
            i += 1
            col += 1
            push(TokenType.STRING, "".join(buf), start_col)
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and source[i + 1].isdigit()):
            start_col = col
            start = i
            i += 1
            col += 1
            while i < n and (source[i].isdigit() or source[i] == "."):
                i += 1
                col += 1
            push(TokenType.NUMBER, source[start:i], start_col)
            continue
        if ch.isalpha() or ch == "_":
            start_col = col
            start = i
            while i < n and (source[i].isalnum() or source[i] in "_-"):
                # A '-' is part of the identifier only when followed by a
                # letter/digit/underscore (hyphenated process names).
                if source[i] == "-" and not (
                    i + 1 < n and (source[i + 1].isalnum()
                                   or source[i + 1] == "_")
                ):
                    break
                i += 1
                col += 1
            text = source[start:i]
            upper = text.upper()
            if upper in KEYWORDS:
                tokens.append(Token(type=TokenType.KEYWORD, text=upper,
                                    line=line, column=start_col, raw=text))
            else:
                push(TokenType.IDENT, text, start_col)
            continue
        raise LexError(f"unexpected character {ch!r}", line, col)

    tokens.append(Token(type=TokenType.EOF, text="", line=line, column=col))
    return tokens
