"""GaeaSession: the complete interpreter stack of Figure 1.

Parser → optimizer → executor over a metadata-manager kernel.  This is
the user-facing entry point::

    from repro import open_session

    session = open_session()
    session.execute("DEFINE CLASS ...")
    [result] = session.execute("SELECT FROM land_cover WHERE ...")
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.metadata_manager import MetadataManager, WORLD, open_kernel
from ..gis import register_gis_operators
from ..spatial.box import Box
from .executor import Executor, QueryResult
from .optimizer import Optimizer
from .parser import parse

__all__ = ["GaeaSession", "open_session"]


@dataclass
class GaeaSession:
    """A connected interpreter over one kernel."""

    kernel: MetadataManager
    optimizer: Optimizer = field(init=False)
    executor: Executor = field(init=False)
    history: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.optimizer = Optimizer(kernel=self.kernel)
        self.executor = Executor(kernel=self.kernel)

    def execute(self, source: str) -> list[QueryResult]:
        """Parse, plan and execute every statement in *source*."""
        self.history.append(source)
        results: list[QueryResult] = []
        for statement in parse(source):
            for node in self.optimizer.plan(statement):
                results.append(self.executor.execute(node))
        return results

    def execute_one(self, source: str) -> QueryResult:
        """Execute a single-statement source and return its one result."""
        results = self.execute(source)
        if len(results) != 1:
            raise ValueError(
                f"expected one result, got {len(results)} — use execute()"
            )
        return results[0]


def open_session(universe: Box = WORLD,
                 with_gis_operators: bool = True) -> GaeaSession:
    """Create a fresh kernel and a session over it.

    GIS operators are registered by default so the paper's processes can
    be defined immediately.
    """
    kernel = open_kernel(universe=universe)
    if with_gis_operators:
        register_gis_operators(kernel.operators)
    return GaeaSession(kernel=kernel)
