"""GaeaSession: the legacy interpreter entry point (deprecated shim).

.. deprecated::
    New code should use the connection/cursor API instead::

        import repro

        conn = repro.connect()
        cur = conn.cursor()
        cur.execute("DEFINE CLASS ...")
        cur.execute("SELECT FROM land_cover WHERE timestamp = ?",
                    ["1986-01-15"])
        for obj in cur:
            ...

    ``connect()`` adds prepared statements with bind parameters, an LRU
    plan cache, streaming fetches and transactions — see
    :mod:`repro.query.client`.

``GaeaSession`` remains as a thin backward-compatible wrapper: it parses,
plans and executes every call from scratch (no plan cache), exactly as
the original interpreter stack of Figure 1 did.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from ..core.metadata_manager import MetadataManager, WORLD, open_kernel
from ..errors import ResultCardinalityError
from ..gis import register_gis_operators
from ..spatial.box import Box
from .client import Connection
from .executor import Executor, QueryResult
from .optimizer import Optimizer
from .parser import parse

__all__ = ["GaeaSession", "open_session"]

#: Deprecation is announced once per process, not once per session —
#: test suites and loops over open_session stay readable.
_DEPRECATION_WARNED = False


def _warn_deprecated() -> None:
    global _DEPRECATION_WARNED
    if _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED = True
    warnings.warn(
        "GaeaSession/open_session is deprecated; use repro.connect() "
        "(prepared statements, plan cache, streaming cursors)",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass
class GaeaSession:
    """A connected interpreter over one kernel (legacy API)."""

    kernel: MetadataManager
    optimizer: Optimizer = field(init=False)
    executor: Executor = field(init=False)
    history: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        _warn_deprecated()
        self.optimizer = Optimizer(kernel=self.kernel)
        self.executor = Executor(kernel=self.kernel)

    def execute(self, source: str) -> list[QueryResult]:
        """Parse, plan and execute every statement in *source*."""
        self.history.append(source)
        results: list[QueryResult] = []
        for statement in parse(source):
            for node in self.optimizer.plan(statement):
                results.append(self.executor.execute(node))
        return results

    def execute_one(self, source: str) -> QueryResult:
        """Execute a single-statement source and return its one result."""
        results = self.execute(source)
        if len(results) != 1:
            raise ResultCardinalityError(
                f"expected one result, got {len(results)} — use execute()"
            )
        return results[0]

    def connection(self) -> Connection:
        """A v2 :class:`Connection` over this session's kernel.

        Migration aid: lets legacy call sites adopt prepared statements
        and cursors incrementally while sharing the same data.
        """
        return Connection(kernel=self.kernel)


def open_session(universe: Box = WORLD,
                 with_gis_operators: bool = True) -> GaeaSession:
    """Create a fresh kernel and a legacy session over it.

    .. deprecated:: use :func:`repro.connect` for new code.
    """
    kernel = open_kernel(universe=universe)
    if with_gis_operators:
        register_gis_operators(kernel.operators)
    return GaeaSession(kernel=kernel)
