"""Recursive-descent parser for GaeaQL.

The DEFINE PROCESS grammar mirrors Figure 3 of the paper::

    DEFINE PROCESS P20
    OUTPUT land_cover
    ARGUMENT ( SETOF landsat_tm bands >= 3 )
    TEMPLATE {
      ASSERTIONS:
        card(bands) = 3;
        common(bands.spatialextent);
        common(bands.timestamp);
      MAPPINGS:
        land_cover.data = unsuperclassify(composite(bands), 12);
        land_cover.numclass = 12;
        land_cover.spatialextent = ANYOF bands.spatialextent;
        land_cover.timestamp = ANYOF bands.timestamp;
    }

A bare SETOF-argument name in operator position (``composite(bands)``)
is Figure-3 sugar for the argument's ``data`` attribute.
"""

from __future__ import annotations

from typing import Any

from ..core.derivation import (
    AnyOf,
    Apply,
    Assertion,
    AttrRef,
    CardinalityAssertion,
    CommonSpatialAssertion,
    CommonTemporalAssertion,
    Expr,
    ExprAssertion,
    Literal,
    ParamRef,
)
from ..errors import ParseError
from ..spatial.box import Box
from ..temporal.abstime import AbsTime
from .ast import (
    AGGREGATE_FUNCS,
    AggCall,
    ArgumentSpec,
    BoxTemplate,
    ColumnRef,
    CreateIndex,
    DefineClass,
    DefineCompound,
    DefineConcept,
    DefineProcess,
    Derive,
    DropIndex,
    Explain,
    JoinClause,
    LineageQuery,
    OpCall,
    OrderItem,
    Param,
    RunProcess,
    Select,
    SelectItem,
    Show,
    Statement,
    StepSpec,
)
from .lexer import tokenize
from .tokens import Token, TokenType

__all__ = ["parse", "parse_statement"]

#: Keywords that structure the extended SELECT clauses; every *other*
#: keyword may double as a name in expression positions (an attribute
#: legitimately called ``extent``, ``result``, ...).
_CLAUSE_KEYWORDS = frozenset({
    "SELECT", "FROM", "JOIN", "ON", "WHERE", "AND", "OVERLAPS",
    "GROUP", "ORDER", "BY", "LIMIT", "OFFSET", "ASC", "DESC",
})


def parse(source: str) -> list[Statement]:
    """Parse *source* into a list of statements."""
    return _Parser(tokenize(source)).parse_program()


def parse_statement(source: str) -> Statement:
    """Parse exactly one statement."""
    statements = parse(source)
    if len(statements) != 1:
        raise ParseError(f"expected one statement, found {len(statements)}")
    return statements[0]


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0
        self._positional_params = 0
        self._named_params: set[str] = set()

    # -- token helpers ---------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _check(self, ttype: TokenType, text: str | None = None) -> bool:
        token = self._peek()
        if token.type is not ttype:
            return False
        return text is None or token.text == text

    def _match(self, ttype: TokenType, text: str | None = None) -> Token | None:
        if self._check(ttype, text):
            return self._advance()
        return None

    def _expect(self, ttype: TokenType, text: str | None = None) -> Token:
        token = self._peek()
        if not self._check(ttype, text):
            want = text or ttype.value
            raise ParseError(
                f"expected {want!r}, found {token.text or token.type.value!r}",
                token.line, token.column,
            )
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        return self._expect(TokenType.KEYWORD, word)

    def _expect_ident(self) -> str:
        token = self._peek()
        # Allow non-reserved usage of a few soft keywords as names.
        if token.type is TokenType.IDENT:
            return self._advance().text
        raise ParseError(
            f"expected identifier, found {token.text or token.type.value!r}",
            token.line, token.column,
        )

    def _check_name(self) -> bool:
        """Whether the cursor holds a usable name: an identifier or a
        soft (non-clause) keyword."""
        token = self._peek()
        if token.type is TokenType.IDENT:
            return True
        return (token.type is TokenType.KEYWORD
                and token.text not in _CLAUSE_KEYWORDS)

    def _expect_name(self) -> str:
        """An identifier, or a soft keyword in its source spelling."""
        token = self._peek()
        if token.type is TokenType.KEYWORD \
                and token.text not in _CLAUSE_KEYWORDS:
            self._advance()
            return token.raw or token.text
        return self._expect_ident()

    # -- program ------------------------------------------------------------------

    def parse_program(self) -> list[Statement]:
        statements: list[Statement] = []
        while not self._check(TokenType.EOF):
            statements.append(self._statement())
            self._match(TokenType.SEMICOLON)
        return statements

    # -- bind-parameter placeholders -------------------------------------------

    def _placeholder(self) -> Param | None:
        """A ``?`` or ``:name`` placeholder at the cursor, if present.

        Positional indices run across the whole source (binding is per
        program, so a two-statement source with two ``?`` takes two bind
        values); the two styles must not be mixed — the bind call could
        not tell which slots its values fill.
        """
        token = self._peek()
        if self._match(TokenType.QMARK):
            if self._named_params:
                raise ParseError(
                    "cannot mix '?' and ':name' parameters in one source",
                    token.line, token.column,
                )
            param = Param(index=self._positional_params)
            self._positional_params += 1
            return param
        if token.type is TokenType.COLON:
            self._advance()
            name = self._expect_ident()
            if self._positional_params:
                raise ParseError(
                    "cannot mix '?' and ':name' parameters in one source",
                    token.line, token.column,
                )
            self._named_params.add(name)
            return Param(name=name)
        return None

    def _statement(self) -> Statement:
        token = self._peek()
        if token.is_keyword("DEFINE"):
            return self._define()
        if token.is_keyword("CLASS"):
            # The paper's §2.1.1 figure writes bare `CLASS landcover (...)`;
            # accept it as a synonym of DEFINE CLASS.
            self._advance()
            return self._define_class()
        if token.is_keyword("SELECT"):
            return self._select()
        if token.is_keyword("DERIVE"):
            return self._derive()
        if token.is_keyword("EXPLAIN"):
            self._advance()
            inner_token = self._peek()
            if inner_token.is_keyword("SELECT"):
                return Explain(inner=self._select())
            if inner_token.is_keyword("DERIVE"):
                return Explain(inner=self._derive())
            if inner_token.is_keyword("RUN"):
                return Explain(inner=self._run())
            raise ParseError(
                "EXPLAIN expects SELECT, DERIVE or RUN, found "
                f"{inner_token.text!r}",
                inner_token.line, inner_token.column,
            )
        if token.is_keyword("RUN"):
            return self._run()
        if token.is_keyword("SHOW"):
            return self._show()
        if token.is_keyword("CREATE"):
            return self._create_index()
        if token.is_keyword("DROP"):
            return self._drop_index()
        if token.is_keyword("LINEAGE"):
            self._advance()
            oid = int(self._expect(TokenType.NUMBER).text)
            return LineageQuery(oid=oid)
        raise ParseError(
            f"unexpected token {token.text!r}", token.line, token.column
        )

    # -- DEFINE dispatch -------------------------------------------------------------

    def _define(self) -> Statement:
        self._expect_keyword("DEFINE")
        if self._match(TokenType.KEYWORD, "CLASS"):
            return self._define_class()
        if self._match(TokenType.KEYWORD, "PROCESS"):
            return self._define_process()
        if self._match(TokenType.KEYWORD, "COMPOUND"):
            self._expect_keyword("PROCESS")
            return self._define_compound()
        if self._match(TokenType.KEYWORD, "CONCEPT"):
            return self._define_concept()
        token = self._peek()
        raise ParseError(
            f"DEFINE must be followed by CLASS/PROCESS/COMPOUND/CONCEPT, "
            f"found {token.text!r}", token.line, token.column,
        )

    # -- DEFINE CLASS -------------------------------------------------------------------

    def _define_class(self) -> DefineClass:
        name = self._expect_ident()
        self._expect(TokenType.LPAREN)
        attributes: list[tuple[str, str]] = []
        spatial_attr: str | None = None
        temporal_attr: str | None = None
        derived_by: str | None = None
        while not self._check(TokenType.RPAREN):
            if self._match(TokenType.KEYWORD, "ATTRIBUTES"):
                self._expect(TokenType.COLON)
                attributes.extend(self._attribute_list())
            elif self._match(TokenType.KEYWORD, "SPATIAL"):
                self._expect_keyword("EXTENT")
                self._expect(TokenType.COLON)
                pairs = self._attribute_list()
                if len(pairs) != 1:
                    raise ParseError("SPATIAL EXTENT takes one attribute")
                spatial_attr = pairs[0][0]
                attributes.append(pairs[0])
            elif self._match(TokenType.KEYWORD, "TEMPORAL"):
                self._expect_keyword("EXTENT")
                self._expect(TokenType.COLON)
                pairs = self._attribute_list()
                if len(pairs) != 1:
                    raise ParseError("TEMPORAL EXTENT takes one attribute")
                temporal_attr = pairs[0][0]
                attributes.append(pairs[0])
            elif self._match(TokenType.KEYWORD, "DERIVED"):
                self._expect_keyword("BY")
                self._expect(TokenType.COLON)
                derived_by = self._expect_ident()
            else:
                token = self._peek()
                raise ParseError(
                    f"unexpected token {token.text!r} in CLASS body",
                    token.line, token.column,
                )
        self._expect(TokenType.RPAREN)
        return DefineClass(
            name=name, attributes=tuple(attributes),
            spatial_attr=spatial_attr, temporal_attr=temporal_attr,
            derived_by=derived_by,
        )

    def _attribute_list(self) -> list[tuple[str, str]]:
        """``name = type;`` repeated while the lookahead matches."""
        out: list[tuple[str, str]] = []
        while self._check(TokenType.IDENT):
            attr = self._expect_ident()
            self._expect(TokenType.EQUALS)
            type_name = self._expect_ident()
            self._expect(TokenType.SEMICOLON)
            out.append((attr, type_name))
        return out

    # -- DEFINE PROCESS --------------------------------------------------------------------

    def _define_process(self) -> DefineProcess:
        name = self._expect_ident()
        self._expect_keyword("OUTPUT")
        output_class = self._expect_ident()
        self._expect_keyword("ARGUMENT")
        arguments = self._argument_specs()
        set_args = {a.name for a in arguments if a.is_set}
        all_args = {a.name for a in arguments}
        self._expect_keyword("TEMPLATE")
        self._expect(TokenType.LBRACE)
        assertions: list[Assertion] = []
        mappings: list[tuple[str, Expr]] = []
        parameters: list[tuple[str, Any]] = []
        while not self._check(TokenType.RBRACE):
            if self._match(TokenType.KEYWORD, "ASSERTIONS"):
                self._expect(TokenType.COLON)
                while not (
                    self._check(TokenType.KEYWORD, "MAPPINGS")
                    or self._check(TokenType.KEYWORD, "PARAMETERS")
                    or self._check(TokenType.RBRACE)
                ):
                    assertions.append(self._assertion(all_args, set_args))
                    self._expect(TokenType.SEMICOLON)
            elif self._match(TokenType.KEYWORD, "MAPPINGS"):
                self._expect(TokenType.COLON)
                while self._check(TokenType.IDENT):
                    target_cls = self._expect_ident()
                    if target_cls != output_class:
                        raise ParseError(
                            f"mapping target {target_cls!r} is not the "
                            f"output class {output_class!r}"
                        )
                    self._expect(TokenType.DOT)
                    attr = self._expect_ident()
                    self._expect(TokenType.EQUALS)
                    expr = self._expression(all_args, set_args)
                    self._expect(TokenType.SEMICOLON)
                    mappings.append((attr, expr))
            elif self._match(TokenType.KEYWORD, "PARAMETERS"):
                self._expect(TokenType.COLON)
                while self._check(TokenType.IDENT):
                    key = self._expect_ident()
                    self._expect(TokenType.EQUALS)
                    parameters.append((key, self._literal_value()))
                    self._expect(TokenType.SEMICOLON)
            else:
                token = self._peek()
                raise ParseError(
                    f"unexpected token {token.text!r} in TEMPLATE",
                    token.line, token.column,
                )
        self._expect(TokenType.RBRACE)
        return DefineProcess(
            name=name, output_class=output_class, arguments=tuple(arguments),
            assertions=tuple(assertions), mappings=tuple(mappings),
            parameters=tuple(parameters),
        )

    def _argument_specs(self) -> tuple[ArgumentSpec, ...]:
        self._expect(TokenType.LPAREN)
        specs: list[ArgumentSpec] = []
        while not self._check(TokenType.RPAREN):
            is_set = self._match(TokenType.KEYWORD, "SETOF") is not None
            class_name = self._expect_ident()
            arg_name = self._expect_ident()
            minimum = 1
            if is_set and self._match(TokenType.GE):
                minimum = int(self._expect(TokenType.NUMBER).text)
            specs.append(ArgumentSpec(
                name=arg_name, class_name=class_name, is_set=is_set,
                min_cardinality=minimum,
            ))
            if not self._match(TokenType.COMMA):
                break
        self._expect(TokenType.RPAREN)
        if not specs:
            raise ParseError("a process needs at least one argument")
        return tuple(specs)

    def _assertion(self, args: set[str], set_args: set[str]) -> Assertion:
        if self._match(TokenType.KEYWORD, "CARD"):
            self._expect(TokenType.LPAREN)
            arg = self._expect_ident()
            self._expect(TokenType.RPAREN)
            if self._match(TokenType.EQUALS):
                exact = True
            elif self._match(TokenType.GE):
                exact = False
            else:
                token = self._peek()
                raise ParseError("card() needs '=' or '>='",
                                 token.line, token.column)
            count = int(self._expect(TokenType.NUMBER).text)
            return CardinalityAssertion(arg=arg, count=count, exact=exact)
        if self._match(TokenType.KEYWORD, "COMMON"):
            self._expect(TokenType.LPAREN)
            arg = self._expect_ident()
            self._expect(TokenType.DOT)
            attr = self._expect_ident()
            self._expect(TokenType.RPAREN)
            if attr == "timestamp":
                return CommonTemporalAssertion(arg=arg, attr=attr)
            return CommonSpatialAssertion(arg=arg, attr=attr)
        expr = self._expression(args, set_args)
        return ExprAssertion(expr=expr)

    # -- expressions ------------------------------------------------------------------------

    def _expression(self, args: set[str], set_args: set[str]) -> Expr:
        if self._match(TokenType.KEYWORD, "ANYOF"):
            return AnyOf(inner=self._expression(args, set_args))
        if self._match(TokenType.DOLLAR):
            return ParamRef(name=self._expect_ident())
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.text
            value: Any = float(text) if "." in text else int(text)
            return Literal(value=value)
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(value=token.text)
        if token.type is TokenType.IDENT:
            name = self._advance().text
            if self._match(TokenType.DOT):
                attr = self._expect_ident()
                if name not in args:
                    raise ParseError(
                        f"{name!r} is not a process argument",
                        token.line, token.column,
                    )
                return AttrRef(arg=name, attr=attr)
            if self._check(TokenType.LPAREN):
                self._advance()
                call_args: list[Expr] = []
                while not self._check(TokenType.RPAREN):
                    call_args.append(self._expression(args, set_args))
                    if not self._match(TokenType.COMMA):
                        break
                self._expect(TokenType.RPAREN)
                return Apply(operator=name, args=tuple(call_args))
            if name in args:
                # Figure-3 sugar: a bare argument denotes its data images.
                return AttrRef(arg=name, attr="data")
            raise ParseError(
                f"unknown name {name!r} in expression",
                token.line, token.column,
            )
        raise ParseError(
            f"unexpected token {token.text or token.type.value!r} in "
            "expression", token.line, token.column,
        )

    def _literal_value(self) -> Any:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return float(token.text) if "." in token.text else int(token.text)
        if token.type is TokenType.STRING:
            self._advance()
            return token.text
        raise ParseError(
            f"expected literal, found {token.text!r}",
            token.line, token.column,
        )

    # -- DEFINE COMPOUND PROCESS --------------------------------------------------------------

    def _define_compound(self) -> DefineCompound:
        name = self._expect_ident()
        self._expect_keyword("OUTPUT")
        output_class = self._expect_ident()
        self._expect_keyword("ARGUMENT")
        arguments = self._argument_specs()
        self._expect_keyword("STEPS")
        self._expect(TokenType.LBRACE)
        steps: list[StepSpec] = []
        while self._check(TokenType.IDENT):
            label = self._expect_ident()
            self._expect(TokenType.COLON)
            process = self._expect_ident()
            self._expect(TokenType.LPAREN)
            bindings: list[tuple[str, str]] = []
            while not self._check(TokenType.RPAREN):
                arg = self._expect_ident()
                self._expect(TokenType.EQUALS)
                if self._match(TokenType.DOLLAR):
                    source = "@" + self._expect_ident()
                else:
                    source = self._expect_ident()
                bindings.append((arg, source))
                if not self._match(TokenType.COMMA):
                    break
            self._expect(TokenType.RPAREN)
            self._expect(TokenType.SEMICOLON)
            steps.append(StepSpec(name=label, process=process,
                                  bindings=tuple(bindings)))
        self._expect(TokenType.RBRACE)
        self._expect_keyword("RESULT")
        output_step = self._expect_ident()
        return DefineCompound(
            name=name, output_class=output_class, arguments=arguments,
            steps=tuple(steps), output_step=output_step,
        )

    # -- DEFINE CONCEPT ---------------------------------------------------------------------------

    def _define_concept(self) -> DefineConcept:
        name = self._expect_ident()
        isa: list[str] = []
        members: list[str] = []
        if self._match(TokenType.KEYWORD, "ISA"):
            isa.append(self._expect_ident())
            while self._match(TokenType.COMMA):
                isa.append(self._expect_ident())
        if self._match(TokenType.KEYWORD, "MEMBERS"):
            members.append(self._expect_ident())
            while self._match(TokenType.COMMA):
                members.append(self._expect_ident())
        return DefineConcept(name=name, isa=tuple(isa), members=tuple(members))

    # -- index DDL --------------------------------------------------------------------------------

    def _create_index(self) -> CreateIndex:
        """``CREATE INDEX [name] ON class (attr)``."""
        self._expect_keyword("CREATE")
        self._expect_keyword("INDEX")
        name: str | None = None
        if self._check(TokenType.IDENT):
            name = self._expect_ident()
        self._expect_keyword("ON")
        class_name = self._expect_ident()
        self._expect(TokenType.LPAREN)
        attr = self._expect_ident()
        self._expect(TokenType.RPAREN)
        return CreateIndex(class_name=class_name, attr=attr, name=name)

    def _drop_index(self) -> DropIndex:
        """``DROP INDEX name`` or ``DROP INDEX ON class (attr)``."""
        self._expect_keyword("DROP")
        self._expect_keyword("INDEX")
        if self._match(TokenType.KEYWORD, "ON"):
            class_name = self._expect_ident()
            self._expect(TokenType.LPAREN)
            attr = self._expect_ident()
            self._expect(TokenType.RPAREN)
            return DropIndex(class_name=class_name, attr=attr)
        return DropIndex(name=self._expect_ident())

    # -- retrieval --------------------------------------------------------------------------------

    def _select(self) -> Select:
        self._expect_keyword("SELECT")
        items = self._select_list()
        self._expect_keyword("FROM")
        source = self._expect_ident()
        join: JoinClause | None = None
        if self._match(TokenType.KEYWORD, "JOIN"):
            right_source = self._expect_ident()
            self._expect_keyword("ON")
            on_left = self._column_ref(require_qualifier=True)
            self._expect(TokenType.EQUALS)
            on_right = self._column_ref(require_qualifier=True)
            join = JoinClause(source=right_source, on_left=on_left,
                              on_right=on_right)
        spatial: Box | BoxTemplate | Param | None = None
        temporal: AbsTime | Param | None = None
        filters: list[tuple[str, Any]] = []
        ranges: list[tuple[str, str, Any]] = []
        qualified_filters: list[tuple[str, str, Any]] = []
        qualified_ranges: list[tuple[str, str, str, Any]] = []
        if self._match(TokenType.KEYWORD, "WHERE"):
            while True:
                attr = self._expect_name()
                qualifier: str | None = None
                if self._match(TokenType.DOT):
                    qualifier = attr
                    attr = self._expect_name()
                if qualifier is None \
                        and self._match(TokenType.KEYWORD, "OVERLAPS"):
                    spatial = self._placeholder() or self._box_literal()
                elif (comparison := self._comparison_op()) is not None:
                    value = self._predicate_value(attr)
                    if qualifier is not None:
                        qualified_ranges.append(
                            (qualifier, attr, comparison, value)
                        )
                    else:
                        ranges.append((attr, comparison, value))
                elif self._match(TokenType.EQUALS):
                    value = self._predicate_value(attr)
                    if qualifier is not None:
                        qualified_filters.append((qualifier, attr, value))
                    elif attr == "timestamp" \
                            and not isinstance(value, (int, float)):
                        temporal = (value if isinstance(value, (Param, AbsTime))
                                    else AbsTime.parse(value))
                    else:
                        filters.append((attr, value))
                else:
                    token = self._peek()
                    raise ParseError(
                        f"bad predicate on {attr!r}", token.line, token.column
                    )
                if not self._match(TokenType.KEYWORD, "AND"):
                    break
        group_by: list[ColumnRef] = []
        if self._match(TokenType.KEYWORD, "GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._column_ref())
            while self._match(TokenType.COMMA):
                group_by.append(self._column_ref())
        order_by: list[OrderItem] = []
        if self._match(TokenType.KEYWORD, "ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._order_item())
            while self._match(TokenType.COMMA):
                order_by.append(self._order_item())
        limit: int | None = None
        offset = 0
        if self._match(TokenType.KEYWORD, "LIMIT"):
            limit = self._bounded_count("LIMIT")
            if self._match(TokenType.KEYWORD, "OFFSET"):
                offset = self._bounded_count("OFFSET")
        # A plain attribute projection with none of the algebra clauses
        # stays on the established fast path (`projection`), preserving
        # covering index-only scans and cached-plan shapes.  The `oid`
        # pseudo-attribute is not a stored column, so it always takes
        # the expression-projection path.
        projection: tuple[str, ...] = ()
        simple = (
            join is None and not group_by and not order_by
            and limit is None and not offset
            and not qualified_filters and not qualified_ranges
            and all(isinstance(item.expr, ColumnRef)
                    and item.expr.qualifier is None
                    and item.expr.attr != "oid" for item in items)
        )
        if simple:
            projection = tuple(item.expr.attr for item in items)
            items = ()
        return Select(source=source, spatial=spatial, temporal=temporal,
                      filters=tuple(filters), ranges=tuple(ranges),
                      projection=projection, items=tuple(items),
                      join=join,
                      qualified_filters=tuple(qualified_filters),
                      qualified_ranges=tuple(qualified_ranges),
                      group_by=tuple(group_by), order_by=tuple(order_by),
                      limit=limit, offset=offset)

    def _select_list(self) -> tuple[SelectItem, ...]:
        """The select list: empty, ``*``, or expression items."""
        if self._match(TokenType.STAR):
            return ()
        if not (self._check_name()
                or self._check(TokenType.NUMBER)
                or self._check(TokenType.STRING)):
            return ()
        items = [self._select_item()]
        while self._match(TokenType.COMMA):
            items.append(self._select_item())
        return tuple(items)

    def _select_item(self) -> SelectItem:
        expr = self._select_expr()
        if isinstance(expr, (ColumnRef, OpCall, AggCall)):
            alias = expr.describe()
        else:
            alias = str(expr)
        return SelectItem(expr=expr, alias=alias)

    def _select_expr(self) -> Any:
        """A select-item expression: column ref (optionally qualified),
        aggregate call, registered-operator call, or literal."""
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return (float(token.text) if "." in token.text
                    else int(token.text))
        if token.type is TokenType.STRING:
            self._advance()
            return token.text
        if not self._check_name():
            raise ParseError(
                f"bad select item {token.text or token.type.value!r}",
                token.line, token.column,
            )
        name = self._expect_name()
        if self._match(TokenType.DOT):
            return ColumnRef(attr=self._expect_name(), qualifier=name)
        if not self._check(TokenType.LPAREN):
            return ColumnRef(attr=name)
        self._advance()  # '('
        if name.lower() in AGGREGATE_FUNCS:
            func = name.lower()
            if self._match(TokenType.STAR):
                self._expect(TokenType.RPAREN)
                if func != "count":
                    raise ParseError(
                        f"{func}(*) is not defined — only count(*)",
                        token.line, token.column,
                    )
                return AggCall(func=func, arg=None)
            if func == "count" and self._check(TokenType.RPAREN):
                self._advance()
                return AggCall(func=func, arg=None)
            arg = self._select_expr()
            if isinstance(arg, AggCall):
                raise ParseError(
                    f"aggregate {func} cannot nest another aggregate",
                    token.line, token.column,
                )
            self._expect(TokenType.RPAREN)
            return AggCall(func=func, arg=arg)
        args: list[Any] = []
        while not self._check(TokenType.RPAREN):
            arg = self._select_expr()
            if isinstance(arg, AggCall):
                raise ParseError(
                    f"aggregate call inside operator {name!r} — apply the "
                    "operator inside the aggregate instead",
                    token.line, token.column,
                )
            args.append(arg)
            if not self._match(TokenType.COMMA):
                break
        self._expect(TokenType.RPAREN)
        return OpCall(operator=name, args=tuple(args))

    def _column_ref(self, require_qualifier: bool = False) -> ColumnRef:
        """``attr`` or ``Class.attr``."""
        token = self._peek()
        name = self._expect_name()
        if self._match(TokenType.DOT):
            return ColumnRef(attr=self._expect_name(), qualifier=name)
        if require_qualifier:
            raise ParseError(
                f"join condition needs qualified references "
                f"(Class.attr), found bare {name!r}",
                token.line, token.column,
            )
        return ColumnRef(attr=name)

    def _order_item(self) -> OrderItem:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            if "." in token.text:
                raise ParseError("ORDER BY ordinal must be an integer",
                                 token.line, token.column)
            key: Any = int(token.text)
        else:
            key = self._column_ref()
        descending = False
        if self._match(TokenType.KEYWORD, "DESC"):
            descending = True
        else:
            self._match(TokenType.KEYWORD, "ASC")
        return OrderItem(key=key, descending=descending)

    def _bounded_count(self, clause: str) -> int | Param:
        param = self._placeholder()
        if param is not None:
            # Bindable LIMIT/OFFSET: one cached plan serves every page of
            # a paginated fetch — the count binds at execute time.
            return param
        token = self._expect(TokenType.NUMBER)
        if "." in token.text or int(token.text) < 0:
            raise ParseError(
                f"{clause} takes a non-negative integer",
                token.line, token.column,
            )
        return int(token.text)

    def _comparison_op(self) -> str | None:
        """A ``< <= > >=`` operator at the cursor, if present."""
        for ttype, op in ((TokenType.LE, "<="), (TokenType.GE, ">="),
                          (TokenType.LT, "<"), (TokenType.GT, ">")):
            if self._match(ttype):
                return op
        return None

    def _predicate_value(self, attr: str) -> Any:
        """A predicate's right-hand side: placeholder, string or number."""
        param = self._placeholder()
        if param is not None:
            return param
        token = self._peek()
        if token.type is TokenType.STRING:
            self._advance()
            return token.text
        if token.type is TokenType.NUMBER:
            self._advance()
            return (float(token.text) if "." in token.text
                    else int(token.text))
        raise ParseError(
            f"bad literal in predicate on {attr!r}",
            token.line, token.column,
        )

    def _derive(self) -> Derive:
        self._expect_keyword("DERIVE")
        class_name = self._expect_ident()
        spatial: Box | BoxTemplate | Param | None = None
        temporal: AbsTime | Param | None = None
        while True:
            if self._match(TokenType.KEYWORD, "AT"):
                param = self._placeholder()
                if param is not None:
                    temporal = param
                else:
                    temporal = AbsTime.parse(
                        self._expect(TokenType.STRING).text
                    )
            elif self._match(TokenType.KEYWORD, "IN"):
                spatial = self._placeholder() or self._box_literal()
            else:
                break
        return Derive(class_name=class_name, spatial=spatial,
                      temporal=temporal)

    def _box_literal(self) -> Box | BoxTemplate:
        """A box literal whose coordinates may be placeholders."""
        self._expect(TokenType.LPAREN)
        coords: list[Any] = []
        for position in range(4):
            if position:
                self._expect(TokenType.COMMA)
            param = self._placeholder()
            if param is not None:
                coords.append(param)
            else:
                coords.append(float(self._expect(TokenType.NUMBER).text))
        self._expect(TokenType.RPAREN)
        if any(isinstance(c, Param) for c in coords):
            return BoxTemplate(coords=tuple(coords))
        return Box(*coords)

    # -- RUN / SHOW --------------------------------------------------------------------------------

    def _run(self) -> RunProcess:
        self._expect_keyword("RUN")
        process = self._expect_ident()
        bindings: list[tuple[str, tuple[int, ...]]] = []
        if self._match(TokenType.KEYWORD, "WITH"):
            while True:
                arg = self._expect_ident()
                self._expect(TokenType.EQUALS)
                self._expect(TokenType.LPAREN)
                oids = [int(self._expect(TokenType.NUMBER).text)]
                while self._match(TokenType.COMMA):
                    oids.append(int(self._expect(TokenType.NUMBER).text))
                self._expect(TokenType.RPAREN)
                bindings.append((arg, tuple(oids)))
                if not self._match(TokenType.COMMA):
                    break
        return RunProcess(process=process, bindings=tuple(bindings))

    def _show(self) -> Show:
        self._expect_keyword("SHOW")
        token = self._peek()
        for what in ("CLASSES", "PROCESSES", "CONCEPTS", "TASKS",
                     "EXPERIMENTS", "OPERATORS", "TYPES", "INDEXES"):
            if self._match(TokenType.KEYWORD, what):
                return Show(what=what.lower())
        raise ParseError(
            "SHOW expects CLASSES/PROCESSES/CONCEPTS/TASKS/EXPERIMENTS/"
            f"OPERATORS/TYPES/INDEXES, found {token.text!r}",
            token.line, token.column,
        )
