"""Abstract syntax for GaeaQL statements.

The statement set mirrors the metadata manager's three layers:

* DDL — ``DEFINE CLASS`` (paper §2.1.1 syntax), ``DEFINE PROCESS``
  (Figure 3), ``DEFINE COMPOUND PROCESS``, ``DEFINE CONCEPT``;
* retrieval — ``SELECT FROM <class> [WHERE ...]`` with the §2.1.5
  retrieve/interpolate/derive semantics, ``DERIVE``, ``EXPLAIN``;
* execution — ``RUN <process> WITH arg = (oids)``;
* browsing — ``SHOW CLASSES|PROCESSES|CONCEPTS|TASKS|EXPERIMENTS``,
  ``LINEAGE <oid>``.

Mapping/assertion expressions reuse the core expression classes
(:mod:`repro.core.derivation`), so the parser builds exactly what the
derivation manager executes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core.derivation import Assertion, Expr
from ..spatial.box import Box
from ..temporal.abstime import AbsTime

__all__ = [
    "Statement",
    "DefineClass",
    "ArgumentSpec",
    "DefineProcess",
    "StepSpec",
    "DefineCompound",
    "DefineConcept",
    "Select",
    "Derive",
    "Explain",
    "RunProcess",
    "Show",
    "LineageQuery",
    "Param",
    "BoxTemplate",
    "CreateIndex",
    "DropIndex",
    "ColumnRef",
    "OpCall",
    "AggCall",
    "SelectItem",
    "OrderItem",
    "JoinClause",
    "AGGREGATE_FUNCS",
]

#: Aggregate function names the grammar recognizes in select items.
AGGREGATE_FUNCS = frozenset({"count", "sum", "avg", "min", "max"})


class Statement:
    """Base class for parsed statements."""


@dataclass(frozen=True)
class Param:
    """A bind-parameter placeholder: ``?`` (positional, 0-based slot) or
    ``:name`` (named).  Exactly one of ``index``/``name`` is set.

    Placeholders are legal wherever a retrieval statement takes a value:
    WHERE equality literals, timestamps, box coordinates (or whole
    boxes), and the DERIVE extents.  A statement never mixes the two
    styles.
    """

    index: int | None = None
    name: str | None = None

    def describe(self) -> str:
        """Source-level spelling of this placeholder."""
        return f":{self.name}" if self.name is not None else "?"


@dataclass(frozen=True)
class BoxTemplate:
    """A box literal with at least one parameter coordinate:
    ``(?, -35, :east, 38)``.  Resolved to a :class:`Box` at bind time."""

    coords: tuple[Any, ...]  # 4 entries, each float or Param


@dataclass(frozen=True)
class DefineClass(Statement):
    """``DEFINE CLASS name ( ATTRIBUTES: ... )``."""

    name: str
    attributes: tuple[tuple[str, str], ...]
    spatial_attr: str | None
    temporal_attr: str | None
    derived_by: str | None
    doc: str = ""


@dataclass(frozen=True)
class ArgumentSpec:
    """One process argument in the source: ``[SETOF] class name [>= n]``."""

    name: str
    class_name: str
    is_set: bool
    min_cardinality: int = 1


@dataclass(frozen=True)
class DefineProcess(Statement):
    """``DEFINE PROCESS`` with the Figure-3 TEMPLATE."""

    name: str
    output_class: str
    arguments: tuple[ArgumentSpec, ...]
    assertions: tuple[Assertion, ...]
    mappings: tuple[tuple[str, Expr], ...]
    parameters: tuple[tuple[str, Any], ...] = ()


@dataclass(frozen=True)
class StepSpec:
    """One step of a compound process: ``label: process(arg<-src, ...)``."""

    name: str
    process: str
    bindings: tuple[tuple[str, str], ...]


@dataclass(frozen=True)
class DefineCompound(Statement):
    """``DEFINE COMPOUND PROCESS`` (Figure 5)."""

    name: str
    output_class: str
    arguments: tuple[ArgumentSpec, ...]
    steps: tuple[StepSpec, ...]
    output_step: str


@dataclass(frozen=True)
class DefineConcept(Statement):
    """``DEFINE CONCEPT name [ISA p1, p2] [MEMBERS c1, c2]``."""

    name: str
    isa: tuple[str, ...] = ()
    members: tuple[str, ...] = ()


@dataclass(frozen=True)
class CreateIndex(Statement):
    """``CREATE INDEX [name] ON class (attr)`` — a secondary B-tree over
    a scalar attribute, registered in the storage catalog."""

    class_name: str
    attr: str
    name: str | None = None


@dataclass(frozen=True)
class DropIndex(Statement):
    """``DROP INDEX name`` or ``DROP INDEX ON class (attr)``."""

    name: str | None = None
    class_name: str | None = None
    attr: str | None = None


@dataclass(frozen=True)
class ColumnRef:
    """An attribute reference in a select item / ORDER BY / GROUP BY:
    ``attr`` or, in join queries, ``Class.attr``.  The pseudo-attribute
    ``oid`` names an object's surrogate id."""

    attr: str
    qualifier: str | None = None

    def describe(self) -> str:
        if self.qualifier is not None:
            return f"{self.qualifier}.{self.attr}"
        return self.attr


@dataclass(frozen=True)
class OpCall:
    """A registered ADT operator applied in a projection, e.g.
    ``area(extent)`` — resolved against the kernel's
    :class:`~repro.adt.operators.OperatorRegistry` at execution time.
    Arguments are :class:`ColumnRef`, nested :class:`OpCall`, or
    literal values."""

    operator: str
    args: tuple[Any, ...]

    def describe(self) -> str:
        rendered = []
        for arg in self.args:
            if isinstance(arg, (ColumnRef, OpCall)):
                rendered.append(arg.describe())
            elif isinstance(arg, str):
                rendered.append(f"'{arg}'")
            else:
                rendered.append(str(arg))
        return f"{self.operator}({', '.join(rendered)})"


@dataclass(frozen=True)
class AggCall:
    """An aggregate call in a select item: ``count(*)``, ``sum(x)``,
    ``avg(area(extent))``...  ``arg`` is None for ``count(*)``."""

    func: str  # one of AGGREGATE_FUNCS
    arg: Any | None = None  # ColumnRef | OpCall | None

    def describe(self) -> str:
        if self.arg is None:
            return f"{self.func}(*)"
        inner = (self.arg.describe()
                 if isinstance(self.arg, (ColumnRef, OpCall))
                 else str(self.arg))
        return f"{self.func}({inner})"


@dataclass(frozen=True)
class SelectItem:
    """One output column of an extended SELECT; ``alias`` is the output
    name (the rendered source text)."""

    expr: Any  # ColumnRef | OpCall | AggCall
    alias: str


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key: a column reference or a 1-based select-item
    ordinal (``ORDER BY 2 DESC``)."""

    key: Any  # ColumnRef | int
    descending: bool = False

    def describe(self) -> str:
        head = (self.key.describe() if isinstance(self.key, ColumnRef)
                else str(self.key))
        return f"{head} DESC" if self.descending else head


@dataclass(frozen=True)
class JoinClause:
    """``JOIN <class-or-concept> ON a.x = b.y`` — a two-source equi-join.
    The ON sides are qualified column references; which belongs to the
    left source is resolved at plan time."""

    source: str
    on_left: ColumnRef
    on_right: ColumnRef


@dataclass(frozen=True)
class Select(Statement):
    """``SELECT [attr, ...] FROM class [WHERE spatialextent OVERLAPS box
    AND timestamp = 'date' AND attr = literal AND attr >= literal]`` —
    concept names allowed as the source.  Equality predicates live in
    ``filters`` as ``(attr, value)``; comparison predicates live in
    ``ranges`` as ``(attr, op, value)`` with op in ``< <= > >=``.  The
    optimizer pushes both into index-backed access paths when it can.

    ``projection`` lists the requested attributes (empty = whole
    objects); projected retrievals yield plain dicts and, when an
    attribute B-tree covers the projection and every predicate, ride a
    covering index-only scan.

    Any value position may hold a :class:`Param` placeholder (a box may
    also be a :class:`BoxTemplate`); such statements must be bound
    before execution."""

    source: str
    spatial: Box | BoxTemplate | Param | None = None
    temporal: AbsTime | Param | None = None
    filters: tuple[tuple[str, Any], ...] = ()
    ranges: tuple[tuple[str, str, Any], ...] = ()
    projection: tuple[str, ...] = ()
    #: Extended select list (expression projection, aggregates).  Only
    #: set when the statement uses algebra features beyond a plain
    #: attribute projection; ``projection`` stays the fast path.
    items: tuple[SelectItem, ...] = ()
    #: ``JOIN ... ON`` second source.
    join: JoinClause | None = None
    #: Predicates written with an explicit qualifier (join queries):
    #: ``(qualifier, attr, value)`` / ``(qualifier, attr, op, value)``.
    qualified_filters: tuple[tuple[str, str, Any], ...] = ()
    qualified_ranges: tuple[tuple[str, str, str, Any], ...] = ()
    group_by: tuple[ColumnRef, ...] = ()
    order_by: tuple[OrderItem, ...] = ()
    #: LIMIT/OFFSET counts; a :class:`Param` binds at execute time.
    limit: int | Param | None = None
    offset: int | Param = 0


@dataclass(frozen=True)
class Derive(Statement):
    """``DERIVE class [AT 'date'] [IN box]`` — skip direct retrieval.
    The extents accept :class:`Param` placeholders like SELECT."""

    class_name: str
    spatial: Box | BoxTemplate | Param | None = None
    temporal: AbsTime | Param | None = None


@dataclass(frozen=True)
class Explain(Statement):
    """``EXPLAIN SELECT|DERIVE|RUN ...`` — render the statement's
    operator tree and §2.1.5 path without executing it."""

    inner: Statement


@dataclass(frozen=True)
class RunProcess(Statement):
    """``RUN process WITH arg = (1, 2, 3), other = (4)``."""

    process: str
    bindings: tuple[tuple[str, tuple[int, ...]], ...] = ()


@dataclass(frozen=True)
class Show(Statement):
    """``SHOW CLASSES | PROCESSES | CONCEPTS | TASKS | EXPERIMENTS``."""

    what: str


@dataclass(frozen=True)
class LineageQuery(Statement):
    """``LINEAGE oid`` — the derivation history of an object."""

    oid: int
