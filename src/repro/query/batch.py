"""Columnar batches for vectorized query execution.

A :class:`Batch` is a fixed-length slab of rows stored column-wise as NumPy
arrays.  Numeric attribute types (``int4``/``float4``/``float8``/``bool``)
become typed arrays with an optional boolean *null mask* (``True`` marks a
SQL NULL); every other type — ``char16``/``text`` strings and the ADTs
(``Box``, ``AbsTime``, ``Image``, matrices) — is carried in an
``object``-dtype array holding the original Python objects, so a round trip
through a batch is exact.

Batches flow between vectorized physical operators (see
``query/operators.py``).  ``to_rows()`` is the escape hatch at the scalar
boundary: it rebuilds :class:`~repro.core.classes.SciObject` rows (when the
batch is class-backed) or plain dict rows (projection/aggregate output) one
final time, at the consumer edge only.

The module-level toggle :func:`set_vectorized_default` /
:func:`scalar_execution` exists for the equivalence test-suite and the
scalar-baseline benchmarks; production code paths leave it on.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.classes import NonPrimitiveClass, SciObject

DEFAULT_BATCH_SIZE = 1024

#: Attribute types that get typed (non-object) column arrays.
NUMERIC_DTYPES: dict[str, Any] = {
    "int4": np.int64,
    "float4": np.float64,
    "float8": np.float64,
    "bool": np.bool_,
}

OID_TYPE = "int4"

_state = threading.local()
_VECTORIZED_DEFAULT = True
_toggle_lock = threading.Lock()


def vectorized_default() -> bool:
    """Whether planners build vectorized (batch-at-a-time) trees by default."""
    local = getattr(_state, "override", None)
    if local is not None:
        return local
    return _VECTORIZED_DEFAULT


def set_vectorized_default(enabled: bool) -> None:
    """Process-wide toggle; prefer :func:`scalar_execution` in tests."""
    global _VECTORIZED_DEFAULT
    with _toggle_lock:
        _VECTORIZED_DEFAULT = bool(enabled)


@contextmanager
def scalar_execution() -> Iterator[None]:
    """Force tuple-at-a-time plans for the current thread (tests/benchmarks)."""
    previous = getattr(_state, "override", None)
    _state.override = False
    try:
        yield
    finally:
        _state.override = previous


def object_column(values: Sequence[Any]) -> np.ndarray:
    """Build an object-dtype column without NumPy broadcasting surprises.

    ``np.asarray`` would try to interpret array-shaped elements (raster
    ``Image`` payloads, matrices) as extra dimensions; ``fromiter`` treats
    every element as an opaque scalar.
    """
    return np.fromiter(values, dtype=object, count=len(values))


def typed_column(values: Sequence[Any], dtype: Any) -> tuple[np.ndarray, np.ndarray | None]:
    """Build a typed column, demoting NULLs to a fill value + mask."""
    try:
        return np.asarray(values, dtype=dtype), None
    except (TypeError, ValueError):
        mask = np.fromiter((v is None for v in values), dtype=bool, count=len(values))
        filled = [0 if v is None else v for v in values]
        return np.asarray(filled, dtype=dtype), mask


def build_column(type_name: str | None, values: Sequence[Any]) -> tuple[np.ndarray, np.ndarray | None]:
    """Column array + null mask for one attribute's values."""
    dtype = NUMERIC_DTYPES.get(type_name) if type_name else None
    if dtype is not None:
        return typed_column(values, dtype)
    arr = object_column(values)
    return arr, None


@dataclass
class Batch:
    """A columnar slab of rows.

    ``columns`` maps column name → array of length ``length``.  ``masks``
    holds null masks for typed columns only (object columns carry ``None``
    in-band).  ``class_name`` is set when the rows are full class objects —
    then an ``oid`` column is present and ``to_rows`` yields ``SciObject``
    instances; otherwise rows are plain dicts.
    """

    length: int
    columns: dict[str, np.ndarray]
    masks: dict[str, np.ndarray] = field(default_factory=dict)
    class_name: str | None = None
    order: tuple[str, ...] | None = None  # column order for dict rows

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_values(
        cls,
        class_name: str,
        attributes: Sequence[tuple[str, str]],
        rows: Sequence[tuple],
    ) -> "Batch":
        """Batch from raw storage value tuples ``(_oid, attr0, attr1, ...)``."""
        n = len(rows)
        columns: dict[str, np.ndarray] = {}
        masks: dict[str, np.ndarray] = {}
        if n:
            transposed = list(zip(*rows))
        else:
            transposed = [()] * (len(attributes) + 1)
        arr, mask = build_column(OID_TYPE, transposed[0])
        columns["oid"] = arr
        if mask is not None:
            masks["oid"] = mask
        for index, (name, type_name) in enumerate(attributes, start=1):
            arr, mask = build_column(type_name, transposed[index])
            columns[name] = arr
            if mask is not None:
                masks[name] = mask
        return cls(length=n, columns=columns, masks=masks, class_name=class_name)

    @classmethod
    def from_objects(cls, objects: Sequence["SciObject"], klass: "NonPrimitiveClass") -> "Batch":
        """Batch from materialized objects (fallback-path re-batching)."""
        rows = [
            (obj.oid,) + tuple(obj.values.get(name) for name, _ in klass.attributes)
            for obj in objects
        ]
        return cls.from_values(klass.name, klass.attributes, rows)

    @classmethod
    def from_dict_rows(cls, names: Sequence[str], rows: Sequence[dict]) -> "Batch":
        """Batch of plain dict rows (projection shapes), object dtype columns."""
        columns = {
            name: object_column([row.get(name) for row in rows]) for name in names
        }
        return cls(length=len(rows), columns=columns, order=tuple(names))

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def column(self, name: str) -> np.ndarray | None:
        return self.columns.get(name)

    def mask(self, name: str) -> np.ndarray | None:
        """Null mask for *name*: True where NULL (never None once computed).

        Computed lazily and memoized — repeat callers (filter, sort,
        aggregate over the same column) pay the object-column scan once.
        """
        existing = self.masks.get(name)
        if existing is not None:
            return existing
        arr = self.columns.get(name)
        if arr is None:
            return None
        if arr.dtype == object:
            mask = np.fromiter((v is None for v in arr), dtype=bool,
                               count=self.length)
        else:
            mask = np.zeros(self.length, dtype=bool)
        self.masks[name] = mask
        return mask

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def take(self, selector: np.ndarray) -> "Batch":
        """Row subset/reorder by boolean mask or index array."""
        columns = {name: arr[selector] for name, arr in self.columns.items()}
        masks = {name: arr[selector] for name, arr in self.masks.items()}
        length = next(iter(columns.values())).shape[0] if columns else 0
        return Batch(
            length=int(length),
            columns=columns,
            masks=masks,
            class_name=self.class_name,
            order=self.order,
        )

    def slice_rows(self, start: int, stop: int | None = None) -> "Batch":
        sl = slice(start, stop)
        columns = {name: arr[sl] for name, arr in self.columns.items()}
        masks = {name: arr[sl] for name, arr in self.masks.items()}
        length = next(iter(columns.values())).shape[0] if columns else 0
        return Batch(
            length=int(length),
            columns=columns,
            masks=masks,
            class_name=self.class_name,
            order=self.order,
        )

    def project(self, names: Sequence[str]) -> "Batch":
        """Column slice: keeps arrays, drops class identity (rows become dicts)."""
        columns: dict[str, np.ndarray] = {}
        masks: dict[str, np.ndarray] = {}
        for name in names:
            arr = self.columns.get(name)
            if arr is None:
                arr = np.full(self.length, None, dtype=object)
            columns[name] = arr
            mask = self.masks.get(name)
            if mask is not None:
                masks[name] = mask
        return Batch(
            length=self.length,
            columns=columns,
            masks=masks,
            order=tuple(names),
        )

    @classmethod
    def concat(cls, batches: Sequence["Batch"]) -> "Batch":
        """Concatenate same-shape batches into one (sort/aggregate staging)."""
        if not batches:
            return cls(length=0, columns={}, masks={})
        first = batches[0]
        if len(batches) == 1:
            return first
        columns: dict[str, np.ndarray] = {}
        masks: dict[str, np.ndarray] = {}
        for name in first.columns:
            columns[name] = np.concatenate([b.columns[name] for b in batches])
        mask_names = {name for b in batches for name in b.masks}
        for name in mask_names:
            masks[name] = np.concatenate(
                [
                    b.masks.get(name, np.zeros(b.length, dtype=bool))
                    for b in batches
                ]
            )
        return cls(
            length=sum(b.length for b in batches),
            columns=columns,
            masks=masks,
            class_name=first.class_name,
            order=first.order,
        )

    # ------------------------------------------------------------------
    # scalar boundary
    # ------------------------------------------------------------------
    def to_rows(self) -> Iterator[Any]:
        """Rebuild row objects — the one place batches become Python rows."""
        if self.length == 0:
            return
        lists: dict[str, list] = {}
        for name, arr in self.columns.items():
            values = arr.tolist()
            mask = self.masks.get(name)
            if mask is not None and mask.any():
                values = [None if m else v for v, m in zip(values, mask.tolist())]
            lists[name] = values
        if self.class_name is not None:
            from repro.core.classes import SciObject

            oids = lists.pop("oid")
            names = tuple(lists)
            value_lists = tuple(lists[name] for name in names)
            for i, oid in enumerate(oids):
                yield SciObject(
                    class_name=self.class_name,
                    oid=oid,
                    values={name: vals[i] for name, vals in zip(names, value_lists)},
                )
        else:
            names = self.order if self.order is not None else tuple(lists)
            value_lists = tuple(lists[name] for name in names)
            for i in range(self.length):
                yield {name: vals[i] for name, vals in zip(names, value_lists)}


# ----------------------------------------------------------------------
# ordering helpers (shared by vectorized Sort and HashAggregate)
# ----------------------------------------------------------------------
def stable_argsort(values: np.ndarray, descending: bool = False) -> np.ndarray:
    """Stable argsort; ties keep input order even when descending."""
    if not descending:
        return np.argsort(values, kind="stable")
    # Stable descending: sort the reversed array ascending, then mirror the
    # positions back — equal keys keep their original relative order.
    n = values.shape[0]
    return (n - 1 - np.argsort(values[::-1], kind="stable"))[::-1]


def fill_nulls(values: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Replace NULL slots with an in-dtype filler so comparisons never see None.

    Callers must pair this with a mask-ordering pass; the filler value itself
    is arbitrary (first non-null element, or zero for all-null columns).
    """
    if not mask.any():
        return values
    out = values.copy()
    non_null = np.flatnonzero(~mask)
    filler: Any = values[non_null[0]] if non_null.size else 0
    out[mask] = filler
    return out


def order_by_keys(
    keys: Sequence[tuple[np.ndarray, np.ndarray, bool]],
    length: int,
) -> np.ndarray:
    """Row order for ``keys`` = [(values, null_mask, descending), ...].

    Matches the scalar ``_SortKey`` contract: keys compared left to right,
    NULLs sort after everything regardless of direction, ties keep input
    order (stable).  Implemented as successive stable argsorts from the
    least-significant key to the most-significant one.
    """
    order = np.arange(length)
    for values, mask, descending in reversed(list(keys)):
        filled = fill_nulls(values, mask)
        by_value = stable_argsort(filled[order], descending)
        order = order[by_value]
        if mask.any():
            # NULLs last regardless of direction, stable among themselves.
            by_mask = np.argsort(mask[order], kind="stable")
            order = order[by_mask]
    return order


def group_rows(
    keys: Sequence[tuple[np.ndarray, np.ndarray]],
    length: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group rows by key columns ``[(values, null_mask), ...]``.

    Returns ``(order, starts, first_seen)`` where ``order`` sorts rows so
    equal keys are adjacent, ``starts`` indexes segment starts within
    ``order``, and ``first_seen`` gives, per segment, the smallest original
    row index — used to emit groups in first-encountered order like the
    scalar hash aggregate.  NULL keys form their own group (SQL GROUP BY
    semantics: NULLs group together).
    """
    if length == 0:
        empty = np.array([], dtype=np.int64)
        return empty, empty, empty
    if not keys:
        # Single global group.
        order = np.arange(length)
        return order, np.array([0]), np.array([0])
    order = np.arange(length)
    filled_cols = []
    for values, mask in keys:
        filled = fill_nulls(values, mask)
        filled_cols.append((filled, mask))
    for filled, mask in reversed(filled_cols):
        order = order[stable_argsort(filled[order], False)]
        if mask.any():
            order = order[np.argsort(mask[order], kind="stable")]
    # Segment boundaries: adjacent sorted rows differing in any key column
    # (treating two NULLs as equal).
    boundary = np.zeros(length, dtype=bool)
    boundary[0] = True
    for filled, mask in filled_cols:
        sorted_vals = filled[order]
        sorted_mask = mask[order]
        differs = sorted_vals[1:] != sorted_vals[:-1]
        differs |= sorted_mask[1:] != sorted_mask[:-1]
        # Two NULLs are equal even if fillers differ (they never do, but be
        # explicit): a pair that is NULL on both sides does not differ.
        both_null = sorted_mask[1:] & sorted_mask[:-1]
        differs &= ~both_null
        boundary[1:] |= differs.astype(bool)
    starts = np.flatnonzero(boundary)
    first_seen = np.minimum.reduceat(order, starts)
    return order, starts, first_seen


MaskFn = Callable[[Batch], np.ndarray]
