"""Value-expression evaluation for the extended SELECT algebra.

The parser builds :class:`~repro.query.ast.ColumnRef` /
:class:`~repro.query.ast.OpCall` / :class:`~repro.query.ast.AggCall`
trees; this module evaluates them against the three row shapes that
flow through operator trees — :class:`~repro.core.classes.SciObject`,
plain dicts (projections, aggregate outputs), and :class:`JoinedRow`
(two-source joins) — and supplies the aggregate accumulators
``HashAggregate`` drives.

``OpCall`` dispatches through the kernel's
:class:`~repro.adt.operators.OperatorRegistry` (type-checked apply), so
the GIS layer's named operators are directly queryable:
``SELECT area(extent) FROM ...``.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

import numpy as np

from ..adt.operators import OperatorRegistry
from ..core.classes import COMPARISONS, SciObject
from ..errors import DerivationError, ExecutionError
from .ast import AggCall, ColumnRef, OpCall
from .batch import Batch

__all__ = ["JoinedRow", "resolve_column", "evaluate", "make_accumulator",
           "Accumulator", "compile_vector_expr", "compile_predicate_mask",
           "compile_extent_mask", "VECTORIZABLE_OPERATORS"]


class JoinedRow:
    """One output row of a two-source join: a named side per source.

    Unqualified attribute lookups search the left side first, then the
    right — the SQL-ish resolution order.  The ``oid`` pseudo-attribute
    reads an object's surrogate id.  ``get`` makes joined rows quack
    like objects for residual predicate re-checks.
    """

    __slots__ = ("sides",)

    def __init__(self, sides: dict[str, Any]):
        self.sides = sides

    _MISSING = object()

    @staticmethod
    def _side_value(side: Any, attr: str) -> Any:
        if isinstance(side, SciObject):
            if attr == "oid":
                return side.oid
            return side.values.get(attr, JoinedRow._MISSING)
        if isinstance(side, dict):
            return side.get(attr, JoinedRow._MISSING)
        return JoinedRow._MISSING

    def get(self, attr: str, default: Any = None) -> Any:
        for side in self.sides.values():
            value = self._side_value(side, attr)
            if value is not JoinedRow._MISSING:
                return value
        return default

    def __getitem__(self, attr: str) -> Any:
        value = self.get(attr, JoinedRow._MISSING)
        if value is JoinedRow._MISSING:
            raise ExecutionError(f"joined row has no attribute {attr!r}")
        return value

    def resolve(self, qualifier: str | None, attr: str,
                default: Any = None) -> Any:
        if qualifier is None:
            return self.get(attr, default)
        side = self.sides.get(qualifier)
        if side is None:
            # Accept the side's class name as a qualifier too.
            for candidate in self.sides.values():
                if isinstance(candidate, SciObject) \
                        and candidate.class_name == qualifier:
                    side = candidate
                    break
        if side is None:
            return default
        value = self._side_value(side, attr)
        return default if value is JoinedRow._MISSING else value


def resolve_column(row: Any, ref: ColumnRef) -> Any:
    """The value of *ref* in *row*, whatever the row's shape."""
    if isinstance(row, JoinedRow):
        return row.resolve(ref.qualifier, ref.attr)
    if isinstance(row, SciObject):
        if ref.attr == "oid":
            return row.oid
        return row.values.get(ref.attr)
    if isinstance(row, dict):
        if ref.attr in row:
            return row[ref.attr]
        # Post-aggregate rows key columns by their rendered alias
        # (`avg(ndvi)`), which a qualified ref also matches.
        return row.get(ref.describe())
    return None


def evaluate(expr: Any, row: Any,
             operators: OperatorRegistry | None = None) -> Any:
    """Evaluate a non-aggregate value expression against one row."""
    if isinstance(expr, ColumnRef):
        return resolve_column(row, expr)
    if isinstance(expr, OpCall):
        if operators is None:
            raise ExecutionError(
                f"operator call {expr.describe()} needs an operator registry"
            )
        args = [evaluate(arg, row, operators) for arg in expr.args]
        return operators.apply(expr.operator, *args)
    if isinstance(expr, AggCall):
        # Aggregates are computed by HashAggregate; a dict row already
        # carries the result under the call's alias.
        if isinstance(row, dict):
            return row.get(expr.describe())
        raise ExecutionError(
            f"aggregate {expr.describe()} outside an aggregation context"
        )
    return expr  # literal


class Accumulator:
    """One aggregate's running state (per group)."""

    def __init__(self, func: str):
        self.func = func
        self.count = 0
        self.total: Any = None
        self.low: Any = None
        self.high: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return  # SQL-style: NULLs don't feed aggregates
        self.count += 1
        if self.func in ("sum", "avg"):
            self.total = value if self.total is None else self.total + value
        elif self.func == "min":
            if self.low is None or value < self.low:
                self.low = value
        elif self.func == "max":
            if self.high is None or value > self.high:
                self.high = value

    def result(self) -> Any:
        if self.func == "count":
            return self.count
        if self.func == "sum":
            return self.total
        if self.func == "avg":
            return None if self.count == 0 else self.total / self.count
        if self.func == "min":
            return self.low
        return self.high


def make_accumulator(call: AggCall) -> Accumulator:
    """A fresh accumulator for one aggregate call."""
    return Accumulator(call.func)


def column_refs(exprs: Iterable[Any]) -> list[ColumnRef]:
    """Every column reference appearing in *exprs* (recursively)."""
    found: list[ColumnRef] = []

    def walk(expr: Any) -> None:
        if isinstance(expr, ColumnRef):
            found.append(expr)
        elif isinstance(expr, OpCall):
            for arg in expr.args:
                walk(arg)
        elif isinstance(expr, AggCall) and expr.arg is not None:
            walk(expr.arg)

    for expr in exprs:
        walk(expr)
    return found


def sort_key_fn(keys: tuple[tuple[Any, bool], ...],
                operators: OperatorRegistry | None
                ) -> Callable[[Any], "_SortKey"]:
    """A key function imposing the (possibly mixed-direction) order."""
    descs = tuple(desc for _, desc in keys)

    def key(row: Any) -> _SortKey:
        return _SortKey(
            tuple(evaluate(expr, row, operators) for expr, _ in keys),
            descs,
        )

    return key



# ----------------------------------------------------------------------
# Vectorized expression compilation
# ----------------------------------------------------------------------
#
# ``compile_vector_expr`` turns a value expression into a function over a
# :class:`Batch` returning ``(values, null_mask)`` arrays, or ``None`` when
# the expression cannot vectorize — the physical planner then inserts a
# ``ScalarAdapter`` boundary and evaluates row-at-a-time.  Only operators
# on the explicit whitelist below vectorize: their registry bodies are
# cheap pure functions safe to drive through a ufunc; everything else
# (ADT registry operators with arbitrary Python bodies) stays scalar.

#: Registry operators dispatched as ufuncs (``np.frompyfunc`` over the
#: type-checked ``OperatorRegistry.apply``, so per-element semantics are
#: identical to scalar evaluation).
VECTORIZABLE_OPERATORS = frozenset({
    "area", "perimeter", "centroid_x", "centroid_y",
    "add", "sub", "mul", "div", "neg", "abs",
})

#: ``fn(batch) -> (values, null_mask)`` — a compiled vector expression.
VectorExpr = Callable[[Batch], tuple[np.ndarray, np.ndarray]]


def _object_null_mask(values: np.ndarray) -> np.ndarray:
    if values.dtype == object:
        return np.fromiter((v is None for v in values), dtype=bool,
                           count=values.shape[0])
    return np.zeros(values.shape[0], dtype=bool)


def _column_vector(ref: ColumnRef) -> VectorExpr:
    attr = ref.attr
    alias = ref.describe()

    def fetch(batch: Batch) -> tuple[np.ndarray, np.ndarray]:
        arr = batch.column(attr)
        if arr is None and alias != attr:
            arr = batch.column(alias)
        if arr is None:
            # Same contract as resolve_column on a dict row: missing
            # columns read as NULL.
            return (np.full(batch.length, None, dtype=object),
                    np.ones(batch.length, dtype=bool))
        mask = batch.mask(attr if batch.column(attr) is not None else alias)
        return arr, mask

    return fetch


def _literal_vector(value: Any) -> VectorExpr:
    def broadcast(batch: Batch) -> tuple[np.ndarray, np.ndarray]:
        arr = np.full(batch.length, value, dtype=object) \
            if not isinstance(value, (int, float, bool)) or value is None \
            else np.full(batch.length, value)
        null = np.full(batch.length, value is None, dtype=bool)
        return arr, null

    return broadcast


def compile_vector_expr(expr: Any,
                        operators: OperatorRegistry | None
                        ) -> VectorExpr | None:
    """Compile *expr* to a batch-level evaluator, or None if not possible."""
    if isinstance(expr, ColumnRef):
        return _column_vector(expr)
    if isinstance(expr, OpCall):
        if operators is None or expr.operator not in VECTORIZABLE_OPERATORS:
            return None
        arg_fns = []
        all_literal = True
        for arg in expr.args:
            if isinstance(arg, (ColumnRef, OpCall, AggCall)):
                all_literal = False
            fn = compile_vector_expr(arg, operators)
            if fn is None:
                return None
            arg_fns.append(fn)
        if all_literal:
            # Constant folding: evaluate once at compile time, broadcast.
            folded = operators.apply(
                expr.operator, *[evaluate(a, None, operators)
                                 for a in expr.args]
            )
            return _literal_vector(folded)
        name = expr.operator
        ufunc = np.frompyfunc(
            lambda *vals: operators.apply(name, *vals), len(arg_fns), 1
        )

        def run(batch: Batch) -> tuple[np.ndarray, np.ndarray]:
            arg_arrays = [fn(batch)[0] for fn in arg_fns]
            out = ufunc(*arg_arrays) if batch.length else \
                np.empty(0, dtype=object)
            out = np.asarray(out, dtype=object)
            return out, _object_null_mask(out)

        return run
    if isinstance(expr, AggCall):
        # Post-aggregate batches carry the computed value under the
        # call's rendered alias (same contract as dict-row evaluation).
        alias = expr.describe()

        def fetch(batch: Batch) -> tuple[np.ndarray, np.ndarray]:
            arr = batch.column(alias)
            if arr is None:
                return (np.full(batch.length, None, dtype=object),
                        np.ones(batch.length, dtype=bool))
            return arr, batch.mask(alias)

        return fetch
    return _literal_vector(expr)


def compile_predicate_mask(
    filters: tuple[tuple[str, Any], ...],
    ranges: tuple[tuple[str, str, Any], ...],
) -> Callable[[Batch], np.ndarray]:
    """A batch-level predicate mask with :func:`matches_predicates`'s exact
    semantics: equality filters first (NULL matches only a NULL literal),
    then range predicates evaluated only on still-passing rows, raising
    :class:`DerivationError` on incomparable stored values."""

    def predicate(batch: Batch) -> np.ndarray:
        keep = np.ones(batch.length, dtype=bool)
        for attr, value in filters:
            arr = batch.column(attr)
            if arr is None:
                arr = np.full(batch.length, None, dtype=object)
            mask = batch.mask(attr)
            if mask is None:
                mask = np.zeros(batch.length, dtype=bool)
            if value is None:
                keep &= mask
            else:
                try:
                    eq = np.asarray(arr == value, dtype=bool)
                except (TypeError, ValueError):
                    eq = np.fromiter((v == value for v in arr.tolist()),
                                     dtype=bool, count=batch.length)
                if eq.shape != keep.shape:  # non-broadcastable comparison
                    eq = np.fromiter((v == value for v in arr.tolist()),
                                     dtype=bool, count=batch.length)
                keep &= eq & ~mask
        for attr, op, value in ranges:
            if not keep.any():
                break
            arr = batch.column(attr)
            if arr is None:
                arr = np.full(batch.length, None, dtype=object)
            mask = batch.mask(attr)
            if mask is None:
                mask = _object_null_mask(arr)
            live = np.flatnonzero(keep)
            live_mask = mask[live]
            if live_mask.any():
                # Scalar evaluation raises on the first incomparable
                # (None) value it reaches; mirror that contract.
                raise DerivationError(
                    f"range predicate {attr} {op} {value!r} is not "
                    f"comparable with stored value None"
                )
            candidates = arr[live]
            try:
                if arr.dtype == object:
                    comparator = COMPARISONS[op]
                    passed = np.fromiter(
                        (comparator(v, value) for v in candidates.tolist()),
                        dtype=bool, count=candidates.shape[0],
                    )
                else:
                    passed = np.asarray(
                        COMPARISONS[op](candidates, value), dtype=bool
                    )
            except TypeError as exc:
                bad = [v for v in candidates.tolist()
                       if _incomparable(op, v, value)]
                offender = bad[0] if bad else candidates.tolist()[0]
                raise DerivationError(
                    f"range predicate {attr} {op} {value!r} is not "
                    f"comparable with stored value {offender!r}"
                ) from exc
            keep[live[~passed]] = False
        return keep

    return predicate


def _incomparable(op: str, stored: Any, literal: Any) -> bool:
    try:
        COMPARISONS[op](stored, literal)
        return False
    except TypeError:
        return True


def compile_extent_mask(cls: Any, spatial: Any,
                        temporal: Any) -> Callable[[Batch], np.ndarray]:
    """Batch-level spatio-temporal extent mask (``matches_extents``
    semantics: overlap for space, exact match for time)."""
    spatial_attr = cls.spatial_attr if spatial is not None else None
    temporal_attr = cls.temporal_attr if temporal is not None else None
    overlaps = np.frompyfunc(lambda e: e.overlaps(spatial), 1, 1) \
        if spatial_attr is not None else None

    def extent(batch: Batch) -> np.ndarray:
        keep = np.ones(batch.length, dtype=bool)
        if overlaps is not None and batch.length:
            extents = batch.column(spatial_attr)
            keep &= overlaps(extents).astype(bool)
        if temporal_attr is not None and batch.length:
            stamps = batch.column(temporal_attr)
            keep &= np.asarray(stamps == temporal, dtype=bool)
        return keep

    return extent


class _SortKey:
    """Comparable wrapper for multi-key, per-key-direction ordering.

    ``sorted`` uses only ``__lt__``; ``heapq.nsmallest`` additionally
    needs ``__eq__`` — it decorates rows as ``(key, index, row)``
    tuples, and tuple comparison consults key equality before falling
    through to the tie-breaking index.  Without it, equal keys compare
    unequal-but-unordered and the top-K heap loses sort stability.
    ``None`` sorts after everything — missing values land last
    regardless of direction.
    """

    __slots__ = ("values", "descs")

    def __init__(self, values: tuple[Any, ...], descs: tuple[bool, ...]):
        self.values = values
        self.descs = descs

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _SortKey):
            return NotImplemented
        return self.values == other.values

    def __lt__(self, other: "_SortKey") -> bool:
        for mine, theirs, desc in zip(self.values, other.values, self.descs):
            if mine == theirs:
                continue
            if mine is None:
                return False
            if theirs is None:
                return True
            return (theirs < mine) if desc else (mine < theirs)
        return False
