"""Value-expression evaluation for the extended SELECT algebra.

The parser builds :class:`~repro.query.ast.ColumnRef` /
:class:`~repro.query.ast.OpCall` / :class:`~repro.query.ast.AggCall`
trees; this module evaluates them against the three row shapes that
flow through operator trees — :class:`~repro.core.classes.SciObject`,
plain dicts (projections, aggregate outputs), and :class:`JoinedRow`
(two-source joins) — and supplies the aggregate accumulators
``HashAggregate`` drives.

``OpCall`` dispatches through the kernel's
:class:`~repro.adt.operators.OperatorRegistry` (type-checked apply), so
the GIS layer's named operators are directly queryable:
``SELECT area(extent) FROM ...``.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from ..adt.operators import OperatorRegistry
from ..core.classes import SciObject
from ..errors import ExecutionError
from .ast import AggCall, ColumnRef, OpCall

__all__ = ["JoinedRow", "resolve_column", "evaluate", "make_accumulator",
           "Accumulator"]


class JoinedRow:
    """One output row of a two-source join: a named side per source.

    Unqualified attribute lookups search the left side first, then the
    right — the SQL-ish resolution order.  The ``oid`` pseudo-attribute
    reads an object's surrogate id.  ``get`` makes joined rows quack
    like objects for residual predicate re-checks.
    """

    __slots__ = ("sides",)

    def __init__(self, sides: dict[str, Any]):
        self.sides = sides

    _MISSING = object()

    @staticmethod
    def _side_value(side: Any, attr: str) -> Any:
        if isinstance(side, SciObject):
            if attr == "oid":
                return side.oid
            return side.values.get(attr, JoinedRow._MISSING)
        if isinstance(side, dict):
            return side.get(attr, JoinedRow._MISSING)
        return JoinedRow._MISSING

    def get(self, attr: str, default: Any = None) -> Any:
        for side in self.sides.values():
            value = self._side_value(side, attr)
            if value is not JoinedRow._MISSING:
                return value
        return default

    def __getitem__(self, attr: str) -> Any:
        value = self.get(attr, JoinedRow._MISSING)
        if value is JoinedRow._MISSING:
            raise ExecutionError(f"joined row has no attribute {attr!r}")
        return value

    def resolve(self, qualifier: str | None, attr: str,
                default: Any = None) -> Any:
        if qualifier is None:
            return self.get(attr, default)
        side = self.sides.get(qualifier)
        if side is None:
            # Accept the side's class name as a qualifier too.
            for candidate in self.sides.values():
                if isinstance(candidate, SciObject) \
                        and candidate.class_name == qualifier:
                    side = candidate
                    break
        if side is None:
            return default
        value = self._side_value(side, attr)
        return default if value is JoinedRow._MISSING else value


def resolve_column(row: Any, ref: ColumnRef) -> Any:
    """The value of *ref* in *row*, whatever the row's shape."""
    if isinstance(row, JoinedRow):
        return row.resolve(ref.qualifier, ref.attr)
    if isinstance(row, SciObject):
        if ref.attr == "oid":
            return row.oid
        return row.values.get(ref.attr)
    if isinstance(row, dict):
        if ref.attr in row:
            return row[ref.attr]
        # Post-aggregate rows key columns by their rendered alias
        # (`avg(ndvi)`), which a qualified ref also matches.
        return row.get(ref.describe())
    return None


def evaluate(expr: Any, row: Any,
             operators: OperatorRegistry | None = None) -> Any:
    """Evaluate a non-aggregate value expression against one row."""
    if isinstance(expr, ColumnRef):
        return resolve_column(row, expr)
    if isinstance(expr, OpCall):
        if operators is None:
            raise ExecutionError(
                f"operator call {expr.describe()} needs an operator registry"
            )
        args = [evaluate(arg, row, operators) for arg in expr.args]
        return operators.apply(expr.operator, *args)
    if isinstance(expr, AggCall):
        # Aggregates are computed by HashAggregate; a dict row already
        # carries the result under the call's alias.
        if isinstance(row, dict):
            return row.get(expr.describe())
        raise ExecutionError(
            f"aggregate {expr.describe()} outside an aggregation context"
        )
    return expr  # literal


class Accumulator:
    """One aggregate's running state (per group)."""

    def __init__(self, func: str):
        self.func = func
        self.count = 0
        self.total: Any = None
        self.low: Any = None
        self.high: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return  # SQL-style: NULLs don't feed aggregates
        self.count += 1
        if self.func in ("sum", "avg"):
            self.total = value if self.total is None else self.total + value
        elif self.func == "min":
            if self.low is None or value < self.low:
                self.low = value
        elif self.func == "max":
            if self.high is None or value > self.high:
                self.high = value

    def result(self) -> Any:
        if self.func == "count":
            return self.count
        if self.func == "sum":
            return self.total
        if self.func == "avg":
            return None if self.count == 0 else self.total / self.count
        if self.func == "min":
            return self.low
        return self.high


def make_accumulator(call: AggCall) -> Accumulator:
    """A fresh accumulator for one aggregate call."""
    return Accumulator(call.func)


def column_refs(exprs: Iterable[Any]) -> list[ColumnRef]:
    """Every column reference appearing in *exprs* (recursively)."""
    found: list[ColumnRef] = []

    def walk(expr: Any) -> None:
        if isinstance(expr, ColumnRef):
            found.append(expr)
        elif isinstance(expr, OpCall):
            for arg in expr.args:
                walk(arg)
        elif isinstance(expr, AggCall) and expr.arg is not None:
            walk(expr.arg)

    for expr in exprs:
        walk(expr)
    return found


def sort_key_fn(keys: tuple[tuple[Any, bool], ...],
                operators: OperatorRegistry | None
                ) -> Callable[[Any], "_SortKey"]:
    """A key function imposing the (possibly mixed-direction) order."""
    descs = tuple(desc for _, desc in keys)

    def key(row: Any) -> _SortKey:
        return _SortKey(
            tuple(evaluate(expr, row, operators) for expr, _ in keys),
            descs,
        )

    return key


class _SortKey:
    """Comparable wrapper for multi-key, per-key-direction ordering.

    Only ``__lt__`` is needed (``sorted`` and ``heapq.nsmallest`` use
    nothing else).  ``None`` sorts after everything — missing values
    land last regardless of direction.
    """

    __slots__ = ("values", "descs")

    def __init__(self, values: tuple[Any, ...], descs: tuple[bool, ...]):
        self.values = values
        self.descs = descs

    def __lt__(self, other: "_SortKey") -> bool:
        for mine, theirs, desc in zip(self.values, other.values, self.descs):
            if mine == theirs:
                continue
            if mine is None:
                return False
            if theirs is None:
                return True
            return (theirs < mine) if desc else (mine < theirs)
        return False
