"""Transactions and snapshot visibility (no-overwrite MVCC-lite).

The substrate keeps the slice of Postgres semantics Gaea needs: every
transaction gets a monotonically increasing xid; committed/aborted states
are tracked; a :class:`Snapshot` captures the set of transactions visible
at its creation, and :func:`visible` decides whether a stored tuple
version exists for that snapshot.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable

from ..errors import TransactionError
from .tuples import TupleVersion

__all__ = ["TxStatus", "Transaction", "Snapshot", "TransactionManager", "visible"]


class TxStatus(Enum):
    """Lifecycle states of a transaction."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class Transaction:
    """A transaction handle issued by :class:`TransactionManager`."""

    xid: int
    status: TxStatus = TxStatus.ACTIVE


@dataclass(frozen=True)
class Snapshot:
    """The view of the database a reader holds.

    A transaction is *in* the snapshot when it committed before the
    snapshot was taken.  ``own_xid`` lets a transaction see its own
    uncommitted writes.
    """

    committed: frozenset[int]
    own_xid: int | None = None

    def sees(self, xid: int) -> bool:
        """Whether work by *xid* is visible under this snapshot."""
        return xid in self.committed or xid == self.own_xid


def visible(version: TupleVersion, snapshot: Snapshot) -> bool:
    """Postgres-style visibility for a no-overwrite tuple version.

    The version is visible when its creator is seen and its deleter (if
    any) is not.
    """
    if not snapshot.sees(version.xmin):
        return False
    if version.xmax is not None and snapshot.sees(version.xmax):
        return False
    return True


@dataclass
class TransactionManager:
    """Allocates xids and tracks commit state."""

    _next_xid: int = 1
    _transactions: dict[int, Transaction] = field(default_factory=dict)
    _committed: set[int] = field(default_factory=set)
    # Abort observers: called with the xid after an abort is recorded.
    # The engine registers its index-maintenance purge here so secondary
    # indexes never keep entries for rolled-back versions.
    _abort_hooks: list[Callable[[int], None]] = field(default_factory=list)
    # Guards xid allocation, state transitions, and snapshot capture so
    # readers snapshotting concurrently with a commit get either the
    # before- or after-commit committed-set, never a torn one.
    # Reentrant: abort hooks may call back into the manager.
    _lock: threading.RLock = field(default_factory=threading.RLock,
                                   repr=False, compare=False)

    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    def begin(self) -> Transaction:
        """Start a new transaction."""
        with self._lock:
            tx = Transaction(xid=self._next_xid)
            self._next_xid += 1
            self._transactions[tx.xid] = tx
            return tx

    def _get_active(self, tx: Transaction) -> Transaction:
        stored = self._transactions.get(tx.xid)
        if stored is None:
            raise TransactionError(f"unknown transaction {tx.xid}")
        if stored.status is not TxStatus.ACTIVE:
            raise TransactionError(
                f"transaction {tx.xid} is already {stored.status.value}"
            )
        return stored

    def commit(self, tx: Transaction) -> None:
        """Commit *tx*; its writes become visible to later snapshots."""
        with self._lock:
            stored = self._get_active(tx)
            stored.status = TxStatus.COMMITTED
            tx.status = TxStatus.COMMITTED
            self._committed.add(tx.xid)

    def on_abort(self, hook: Callable[[int], None]) -> None:
        """Register *hook* to run (with the xid) after every abort."""
        self._abort_hooks.append(hook)

    def abort(self, tx: Transaction) -> None:
        """Abort *tx*; its writes never become visible.

        The abort hooks (index purge) run under the lock: a snapshot
        taken before the abort never saw the xid anyway, and one taken
        after must not observe half-purged index state.
        """
        with self._lock:
            stored = self._get_active(tx)
            stored.status = TxStatus.ABORTED
            tx.status = TxStatus.ABORTED
            for hook in self._abort_hooks:
                hook(tx.xid)

    def status_of(self, xid: int) -> TxStatus:
        """Status of the transaction with id *xid*."""
        tx = self._transactions.get(xid)
        if tx is None:
            raise TransactionError(f"unknown transaction {xid}")
        return tx.status

    def is_committed(self, xid: int) -> bool:
        """Whether *xid* committed (False for unknown xids)."""
        return xid in self._committed

    def is_aborted(self, xid: int) -> bool:
        """Whether *xid* aborted (False for unknown xids)."""
        tx = self._transactions.get(xid)
        return tx is not None and tx.status is TxStatus.ABORTED

    def is_active(self, xid: int) -> bool:
        """Whether *xid* is still in flight (False for unknown xids)."""
        tx = self._transactions.get(xid)
        return tx is not None and tx.status is TxStatus.ACTIVE

    def snapshot(self, for_tx: Transaction | None = None) -> Snapshot:
        """Take a snapshot of everything committed so far, optionally on
        behalf of *for_tx* (which then sees its own writes)."""
        with self._lock:
            return Snapshot(
                committed=frozenset(self._committed),
                own_xid=for_tx.xid if for_tx is not None else None,
            )

    # -- recovery hooks (used by WAL replay) ----------------------------------

    def restore_xid_floor(self, next_xid: int) -> None:
        """Ensure freshly allocated xids stay above replayed history."""
        with self._lock:
            self._next_xid = max(self._next_xid, next_xid)

    def force_committed(self, xid: int) -> None:
        """Mark *xid* committed during WAL replay."""
        with self._lock:
            self._transactions[xid] = Transaction(
                xid=xid, status=TxStatus.COMMITTED)
            self._committed.add(xid)
            self.restore_xid_floor(xid + 1)
