"""Cost-based access-path selection for retrievals.

The classic System-R question, scaled to Gaea's substrate: given a
retrieval over one relation with extent predicates (spatial overlap,
temporal equality), attribute equality filters and attribute range
predicates, which physical access path is cheapest?

The candidates are

* ``full-scan`` — walk every heap version, test everything in Python;
* ``index-eq`` — probe the B-tree on an equality-filtered column;
* ``index-range`` — range-scan the B-tree on a comparison-bounded column;
* ``spatial-probe`` — the grid index on the spatial extent;
* ``temporal-probe`` — the timeline on the temporal extent.

Each candidate gets an estimated result cardinality (selectivity × row
count) and a cost in abstract row-work units; the cheapest wins.  Every
predicate the chosen path does not consume is *pushed down* as a residual:
the scan layer re-checks it per streamed row, so any path is correct and
the choice is purely about how many rows are materialized.

This module lives in ``storage`` (not ``query``) deliberately: the
derivation planner (:mod:`repro.core.planner`) and the GaeaQL optimizer
(:mod:`repro.query.optimizer`) must choose identical paths, and ``core``
cannot import ``query``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import StorageEngine

__all__ = ["AccessPath", "choose_access_path", "estimate_range_rows",
           "SEQ_ROW_COST", "INDEX_PROBE_COST", "INDEX_ROW_COST"]

#: Cost of materializing + testing one row on a full heap scan.
SEQ_ROW_COST = 1.0
#: Fixed cost of descending an index (tree walk / cell math).
INDEX_PROBE_COST = 4.0
#: Cost of fetching one row through an index entry (TID fetch +
#: visibility check) — slightly above sequential to model random access.
INDEX_ROW_COST = 1.4
#: Default selectivity of a range predicate with no usable key bounds.
DEFAULT_RANGE_SELECTIVITY = 0.33


@dataclass(frozen=True)
class AccessPath:
    """One chosen (or considered) physical access path.

    ``kind`` names the strategy; ``column`` the driving column (None for
    full scans); ``argument`` the probe value — the equality key, the
    ``(lo, hi)`` bound pair, the query :class:`~repro.spatial.box.Box`
    or the :class:`~repro.temporal.abstime.AbsTime`.  ``residual``
    describes the predicates re-checked per row, for plan dumps.
    """

    kind: str  # "full-scan" | "index-eq" | "index-range" | "spatial-probe" | "temporal-probe"
    column: str | None = None
    argument: Any = None
    estimated_rows: float = 0.0
    cost: float = 0.0
    residual: tuple[str, ...] = ()
    index_version: int = -1

    def describe(self) -> str:
        """One-line plan-dump rendering, e.g.
        ``index-eq(code=7) rows~4 cost~9.6 residual=[station='s1']``."""
        if self.kind == "index-eq":
            head = f"index-eq({self.column}={self.argument!r})"
        elif self.kind == "index-range":
            lo, hi = self.argument
            head = f"index-range({self.column} in [{lo!r}, {hi!r}])"
        elif self.kind == "spatial-probe":
            head = f"spatial-probe({self.column} overlaps {self.argument})"
        elif self.kind == "temporal-probe":
            head = f"temporal-probe({self.column}={self.argument})"
        else:
            head = "full-scan"
        out = f"{head} rows~{self.estimated_rows:.0f} cost~{self.cost:.1f}"
        if self.residual:
            out += f" residual=[{', '.join(self.residual)}]"
        return out


def estimate_range_rows(entries: int, bounds: tuple[Any, Any] | None,
                        lo: Any, hi: Any) -> float:
    """Expected entries of a B-tree range scan over ``[lo, hi]``.

    With numeric key bounds the fraction is linearly interpolated; other
    key types fall back to :data:`DEFAULT_RANGE_SELECTIVITY` per bounded
    side.
    """
    if entries == 0:
        return 0.0
    if bounds is not None:
        kmin, kmax = bounds
        try:
            span = float(kmax) - float(kmin)
            if span <= 0:
                # Single-key index: either the range covers it or not.
                covered = (lo is None or lo <= kmin) \
                    and (hi is None or hi >= kmax)
                return float(entries) if covered else 1.0
            eff_lo = float(kmin) if lo is None else max(float(lo), float(kmin))
            eff_hi = float(kmax) if hi is None else min(float(hi), float(kmax))
            fraction = max(0.0, eff_hi - eff_lo) / span
            return max(1.0, fraction * entries)
        except (TypeError, ValueError):
            pass
    selectivity = 1.0
    if lo is not None:
        selectivity *= DEFAULT_RANGE_SELECTIVITY
    if hi is not None:
        selectivity *= DEFAULT_RANGE_SELECTIVITY
    return max(1.0, selectivity * entries)


@dataclass
class _Candidate:
    path: AccessPath
    consumed: tuple[str, ...] = ()


def choose_access_path(engine: "StorageEngine", relation: str,
                       spatial: Any = None, temporal: Any = None,
                       equals: tuple[tuple[str, Any], ...] = (),
                       ranges: tuple[tuple[str, str, Any], ...] = ()
                       ) -> AccessPath:
    """Pick the cheapest access path for one retrieval over *relation*.

    ``equals`` holds ``(column, value)`` equality filters; ``ranges``
    holds ``(column, op, value)`` comparisons (op in ``< <= > >=``).
    The returned path's ``residual`` lists every predicate its scan does
    not already guarantee.
    """
    info = engine.access_info(relation, spatial=spatial, temporal=temporal)
    rows = max(1, info["rows"])
    version = info["index_version"]

    def predicate_labels() -> dict[str, str]:
        labels: dict[str, str] = {}
        if spatial is not None and info["spatial_column"] is not None:
            labels["__spatial__"] = \
                f"{info['spatial_column']} overlaps {spatial}"
        if temporal is not None and info["temporal_column"] is not None:
            labels["__temporal__"] = f"{info['temporal_column']}={temporal}"
        for column, value in equals:
            labels[f"eq:{column}"] = f"{column}={value!r}"
        for column, op, value in ranges:
            labels[f"rng:{column}:{op}:{value!r}"] = f"{column}{op}{value!r}"
        return labels

    labels = predicate_labels()

    def residual_for(consumed: tuple[str, ...]) -> tuple[str, ...]:
        return tuple(text for key, text in labels.items()
                     if key not in consumed)

    candidates: list[_Candidate] = [_Candidate(AccessPath(
        kind="full-scan", estimated_rows=float(rows),
        cost=rows * SEQ_ROW_COST, index_version=version,
    ))]

    for column, value in equals:
        stats = info["btrees"].get(column)
        if stats is None:
            continue
        distinct = max(1, stats["distinct"])
        est = max(1.0, stats["entries"] / distinct)
        candidates.append(_Candidate(
            AccessPath(
                kind="index-eq", column=column, argument=value,
                estimated_rows=est,
                cost=INDEX_PROBE_COST + est * INDEX_ROW_COST,
                index_version=version,
            ),
            consumed=(f"eq:{column}",),
        ))

    # Collapse per-column comparison predicates into one [lo, hi] window.
    windows: dict[str, dict[str, Any]] = {}
    for column, op, value in ranges:
        window = windows.setdefault(
            column, {"lo": None, "hi": None, "keys": []}
        )
        if op in (">", ">="):
            if window["lo"] is None or value > window["lo"]:
                window["lo"] = value
        else:
            if window["hi"] is None or value < window["hi"]:
                window["hi"] = value
        # The B-tree window is inclusive on both bounds, so a strict
        # comparison (>, <) still needs the per-row residual re-check.
        window["keys"].append(
            (f"rng:{column}:{op}:{value!r}", op in ("<=", ">="))
        )
    for column, window in windows.items():
        stats = info["btrees"].get(column)
        if stats is None:
            continue
        est = estimate_range_rows(
            stats["entries"], stats["bounds"], window["lo"], window["hi"]
        )
        candidates.append(_Candidate(
            AccessPath(
                kind="index-range", column=column,
                argument=(window["lo"], window["hi"]),
                estimated_rows=est,
                cost=INDEX_PROBE_COST + est * INDEX_ROW_COST,
                index_version=version,
            ),
            consumed=tuple(key for key, inclusive in window["keys"]
                           if inclusive),
        ))

    if spatial is not None and info["spatial_column"] is not None \
            and info["spatial_entries"] is not None:
        est = max(1.0, float(info["spatial_estimate"]))
        candidates.append(_Candidate(
            AccessPath(
                kind="spatial-probe", column=info["spatial_column"],
                argument=spatial, estimated_rows=est,
                cost=INDEX_PROBE_COST + est * INDEX_ROW_COST,
                index_version=version,
            ),
            consumed=("__spatial__",),
        ))

    if temporal is not None and info["temporal_column"] is not None \
            and info["temporal_estimate"] is not None:
        est = max(1.0, float(info["temporal_estimate"]))
        candidates.append(_Candidate(
            AccessPath(
                kind="temporal-probe", column=info["temporal_column"],
                argument=temporal, estimated_rows=est,
                cost=INDEX_PROBE_COST + est * INDEX_ROW_COST,
                index_version=version,
            ),
            consumed=("__temporal__",),
        ))

    best = min(candidates, key=lambda c: c.path.cost)
    return AccessPath(
        kind=best.path.kind,
        column=best.path.column,
        argument=best.path.argument,
        estimated_rows=best.path.estimated_rows,
        cost=best.path.cost,
        residual=residual_for(best.consumed),
        index_version=version,
    )
