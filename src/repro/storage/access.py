"""Cost-based access-path selection for retrievals.

The classic System-R question, scaled to Gaea's substrate: given a
retrieval over one relation with extent predicates (spatial overlap,
temporal equality), attribute equality filters and attribute range
predicates, which physical access path is cheapest?

The candidates are

* ``full-scan`` — walk every heap version, test everything in Python;
* ``index-eq`` — probe the B-tree on an equality-filtered column;
* ``index-range`` — range-scan the B-tree on a comparison-bounded column;
* ``spatial-probe`` — the grid index on the spatial extent;
* ``temporal-probe`` — the timeline on the temporal extent.

Each candidate gets an estimated result cardinality (selectivity × row
count) and a cost in abstract row-work units; the cheapest wins.  Every
predicate the chosen path does not consume is *pushed down* as a residual:
the scan layer re-checks it per streamed row, so any path is correct and
the choice is purely about how many rows are materialized.

This module lives in ``storage`` (not ``query``) deliberately: the
derivation planner (:mod:`repro.core.planner`) and the GaeaQL optimizer
(:mod:`repro.query.optimizer`) must choose identical paths, and ``core``
cannot import ``query``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .btree import HistogramBucket
    from .engine import StorageEngine

__all__ = ["AccessPath", "choose_access_path", "choose_ordered_path",
           "estimate_range_rows", "estimate_eq_rows", "SEQ_ROW_COST",
           "INDEX_PROBE_COST", "INDEX_ROW_COST", "INDEX_ONLY_ROW_COST"]

#: Cost of materializing + testing one row on a full heap scan.
SEQ_ROW_COST = 1.0
#: Fixed cost of descending an index (tree walk / cell math).
INDEX_PROBE_COST = 4.0
#: Cost of fetching one row through an index entry (TID fetch +
#: visibility check) — slightly above sequential to model random access.
INDEX_ROW_COST = 1.4
#: Cost of producing one row straight from an index entry when the key
#: covers every requested attribute: only the version header is touched
#: for the visibility check, never the heap values.
INDEX_ONLY_ROW_COST = 0.4
#: Default selectivity of a range predicate with no usable key bounds.
DEFAULT_RANGE_SELECTIVITY = 0.33


@dataclass(frozen=True)
class AccessPath:
    """One chosen (or considered) physical access path.

    ``kind`` names the strategy; ``column`` the driving column (None for
    full scans); ``argument`` the probe value — the equality key, the
    ``(lo, hi)`` bound pair, the query :class:`~repro.spatial.box.Box`
    or the :class:`~repro.temporal.abstime.AbsTime`.  ``residual``
    describes the predicates re-checked per row, for plan dumps.
    """

    kind: str  # "full-scan" | "index-eq" | "index-range" | "spatial-probe" | "temporal-probe"
    column: str | None = None
    argument: Any = None
    estimated_rows: float = 0.0
    cost: float = 0.0
    residual: tuple[str, ...] = ()
    index_version: int = -1
    #: Covering scan: the index key supplies every requested attribute,
    #: so the heap values are never fetched (only the version header,
    #: for the visibility check).
    index_only: bool = False
    #: The scan streams rows in key order over ``column`` (sort
    #: avoidance: an ORDER BY this column needs no explicit Sort).
    ordered: bool = False
    #: Descending key order (``ORDER BY ... DESC`` rides the B-tree's
    #: reverse leaf walk).
    descending: bool = False
    #: Why the path was priced this way — the driving index's
    #: ``distinct_keys`` and histogram bucket count, for plan dumps.
    stats_note: str = ""

    @property
    def observes_extents(self) -> bool:
        """Whether a scan down this path streams every extent candidate.

        True for full scans and extent-index probes: their row stream is
        a superset of the extent matches, so counting the stream decides
        extent coverage exactly.  False for attribute-index probes,
        which prune by the attribute predicate before extents are seen.
        The single definition both the retrieval planner and the
        physical FallbackSwitch consult — they must not drift.
        """
        return self.kind in ("full-scan", "spatial-probe",
                             "temporal-probe")

    def describe(self) -> str:
        """One-line plan-dump rendering, e.g.
        ``index-eq(code=7) rows~4 cost~9.6 residual=[station='s1']``."""
        if self.kind == "index-eq":
            head = f"index-eq({self.column}={self.argument!r})"
        elif self.kind == "index-range":
            lo, hi = self.argument
            if lo is None and hi is None:
                head = f"index-range({self.column} full)"
            else:
                lo_s = "-inf" if lo is None else repr(lo)
                hi_s = "+inf" if hi is None else repr(hi)
                head = f"index-range({self.column} in [{lo_s}, {hi_s}])"
        elif self.kind == "spatial-probe":
            head = f"spatial-probe({self.column} overlaps {self.argument})"
        elif self.kind == "temporal-probe":
            head = f"temporal-probe({self.column}={self.argument})"
        else:
            head = "full-scan"
        if self.index_only:
            head = f"index-only {head}"
        if self.ordered:
            head += " (ordered desc)" if self.descending else " (ordered)"
        out = f"{head} rows~{self.estimated_rows:.0f} cost~{self.cost:.1f}"
        if self.residual:
            out += f" residual=[{', '.join(self.residual)}]"
        if self.stats_note:
            out += f" [{self.stats_note}]"
        return out


def _histogram_range_rows(histogram: "tuple[HistogramBucket, ...]",
                          lo: Any, hi: Any) -> float | None:
    """Expected entries in ``[lo, hi]`` from an equi-depth histogram.

    Fully covered buckets contribute their exact depth; partially
    covered ones are linearly interpolated within the bucket.  Returns
    None when the query bounds are not numeric.
    """
    try:
        qlo = None if lo is None else float(lo)
        qhi = None if hi is None else float(hi)
    except (TypeError, ValueError):
        return None
    total = 0.0
    for bucket in histogram:
        eff_lo = bucket.lo if qlo is None else max(qlo, bucket.lo)
        eff_hi = bucket.hi if qhi is None else min(qhi, bucket.hi)
        if eff_lo > eff_hi:
            continue
        span = bucket.hi - bucket.lo
        fraction = 1.0 if span <= 0 else (eff_hi - eff_lo) / span
        total += fraction * bucket.entries
    return max(1.0, total)


def estimate_eq_rows(entries: int, distinct: int,
                     histogram: "tuple[HistogramBucket, ...] | None",
                     value: Any) -> float:
    """Expected entries of an equality probe for *value*.

    With a histogram, the containing bucket's local density
    (``entries / distinct``) replaces the global uniform distinct-key
    estimate, so a probe into a dense key cluster is priced higher than
    one into a sparse tail.
    """
    if entries == 0:
        return 0.0
    if histogram is not None:
        try:
            v = float(value)
        except (TypeError, ValueError):
            v = None
        if v is not None:
            for bucket in histogram:
                if bucket.lo <= v <= bucket.hi:
                    return max(1.0, bucket.entries / max(1, bucket.distinct))
            return 1.0  # outside every bucket: probably empty
    return max(1.0, entries / max(1, distinct))


def estimate_range_rows(entries: int, bounds: tuple[Any, Any] | None,
                        lo: Any, hi: Any,
                        histogram: "tuple[HistogramBucket, ...] | None" = None
                        ) -> float:
    """Expected entries of a B-tree range scan over ``[lo, hi]``.

    An equi-depth *histogram* (built from the B-tree's own keys) gives
    skew-aware estimates; without one, numeric key bounds are linearly
    interpolated, and other key types fall back to
    :data:`DEFAULT_RANGE_SELECTIVITY` per bounded side.
    """
    if entries == 0:
        return 0.0
    if histogram is not None:
        estimate = _histogram_range_rows(histogram, lo, hi)
        if estimate is not None:
            return estimate
    if bounds is not None:
        kmin, kmax = bounds
        try:
            span = float(kmax) - float(kmin)
            if span <= 0:
                # Single-key index: either the range covers it or not.
                covered = (lo is None or lo <= kmin) \
                    and (hi is None or hi >= kmax)
                return float(entries) if covered else 1.0
            eff_lo = float(kmin) if lo is None else max(float(lo), float(kmin))
            eff_hi = float(kmax) if hi is None else min(float(hi), float(kmax))
            fraction = max(0.0, eff_hi - eff_lo) / span
            return max(1.0, fraction * entries)
        except (TypeError, ValueError):
            pass
    selectivity = 1.0
    if lo is not None:
        selectivity *= DEFAULT_RANGE_SELECTIVITY
    if hi is not None:
        selectivity *= DEFAULT_RANGE_SELECTIVITY
    return max(1.0, selectivity * entries)


@dataclass
class _Candidate:
    path: AccessPath
    consumed: tuple[str, ...] = ()


def _stats_note(stats: dict[str, Any]) -> str:
    """The pricing inputs of a B-tree path, for plan dumps."""
    histogram = stats.get("histogram")
    return (f"distinct_keys={stats['distinct']} "
            f"hist_buckets={len(histogram) if histogram else 0}")


def choose_access_path(engine: "StorageEngine", relation: str,
                       spatial: Any = None, temporal: Any = None,
                       equals: tuple[tuple[str, Any], ...] = (),
                       ranges: tuple[tuple[str, str, Any], ...] = (),
                       needed_columns: tuple[str, ...] | None = None
                       ) -> AccessPath:
    """Pick the cheapest access path for one retrieval over *relation*.

    ``equals`` holds ``(column, value)`` equality filters; ``ranges``
    holds ``(column, op, value)`` comparisons (op in ``< <= > >=``).
    The returned path's ``residual`` lists every predicate its scan does
    not already guarantee.

    ``needed_columns`` names the attributes the consumer actually wants
    (None means all of them).  When a B-tree's key covers every needed
    column *and* every predicate, the candidate becomes a covering
    ``index_only`` scan that never fetches heap values.
    """
    predicate_columns = tuple(
        {column for column, _ in equals}
        | {column for column, _, _ in ranges}
    )
    info = engine.access_info(relation, spatial=spatial, temporal=temporal,
                              histogram_columns=predicate_columns)
    rows = max(1, info["rows"])
    version = info["index_version"]

    def covering(column: str) -> bool:
        return (
            needed_columns is not None
            and set(needed_columns) <= {column}
            and spatial is None and temporal is None
            and all(c == column for c, _ in equals)
            and all(c == column for c, _, _ in ranges)
        )

    def predicate_labels() -> dict[str, str]:
        labels: dict[str, str] = {}
        if spatial is not None and info["spatial_column"] is not None:
            labels["__spatial__"] = \
                f"{info['spatial_column']} overlaps {spatial}"
        if temporal is not None and info["temporal_column"] is not None:
            labels["__temporal__"] = f"{info['temporal_column']}={temporal}"
        for column, value in equals:
            labels[f"eq:{column}"] = f"{column}={value!r}"
        for column, op, value in ranges:
            labels[f"rng:{column}:{op}:{value!r}"] = f"{column}{op}{value!r}"
        return labels

    labels = predicate_labels()

    def residual_for(consumed: tuple[str, ...]) -> tuple[str, ...]:
        return tuple(text for key, text in labels.items()
                     if key not in consumed)

    candidates: list[_Candidate] = [_Candidate(AccessPath(
        kind="full-scan", estimated_rows=float(rows),
        cost=rows * SEQ_ROW_COST, index_version=version,
    ))]

    for column, value in equals:
        stats = info["btrees"].get(column)
        if stats is None:
            continue
        est = estimate_eq_rows(stats["entries"], stats["distinct"],
                               stats.get("histogram"), value)
        index_only = covering(column)
        row_cost = INDEX_ONLY_ROW_COST if index_only else INDEX_ROW_COST
        candidates.append(_Candidate(
            AccessPath(
                kind="index-eq", column=column, argument=value,
                estimated_rows=est,
                cost=INDEX_PROBE_COST + est * row_cost,
                index_version=version,
                index_only=index_only,
                stats_note=_stats_note(stats),
            ),
            consumed=(f"eq:{column}",),
        ))

    # Collapse per-column comparison predicates into one [lo, hi] window.
    windows: dict[str, dict[str, Any]] = {}
    for column, op, value in ranges:
        window = windows.setdefault(
            column, {"lo": None, "hi": None, "keys": []}
        )
        if op in (">", ">="):
            if window["lo"] is None or value > window["lo"]:
                window["lo"] = value
        else:
            if window["hi"] is None or value < window["hi"]:
                window["hi"] = value
        # The B-tree window is inclusive on both bounds, so a strict
        # comparison (>, <) still needs the per-row residual re-check.
        window["keys"].append(
            (f"rng:{column}:{op}:{value!r}", op in ("<=", ">="))
        )
    for column, window in windows.items():
        stats = info["btrees"].get(column)
        if stats is None:
            continue
        est = estimate_range_rows(
            stats["entries"], stats["bounds"], window["lo"], window["hi"],
            histogram=stats.get("histogram"),
        )
        index_only = covering(column)
        row_cost = INDEX_ONLY_ROW_COST if index_only else INDEX_ROW_COST
        candidates.append(_Candidate(
            AccessPath(
                kind="index-range", column=column,
                argument=(window["lo"], window["hi"]),
                estimated_rows=est,
                cost=INDEX_PROBE_COST + est * row_cost,
                index_version=version,
                index_only=index_only,
                stats_note=_stats_note(stats),
            ),
            consumed=tuple(key for key, inclusive in window["keys"]
                           if inclusive),
        ))

    if spatial is not None and info["spatial_column"] is not None \
            and info["spatial_entries"] is not None:
        est = max(1.0, float(info["spatial_estimate"]))
        candidates.append(_Candidate(
            AccessPath(
                kind="spatial-probe", column=info["spatial_column"],
                argument=spatial, estimated_rows=est,
                cost=INDEX_PROBE_COST + est * INDEX_ROW_COST,
                index_version=version,
            ),
            consumed=("__spatial__",),
        ))

    if temporal is not None and info["temporal_column"] is not None \
            and info["temporal_estimate"] is not None:
        est = max(1.0, float(info["temporal_estimate"]))
        candidates.append(_Candidate(
            AccessPath(
                kind="temporal-probe", column=info["temporal_column"],
                argument=temporal, estimated_rows=est,
                cost=INDEX_PROBE_COST + est * INDEX_ROW_COST,
                index_version=version,
            ),
            consumed=("__temporal__",),
        ))

    best = min(candidates, key=lambda c: c.path.cost)
    return AccessPath(
        kind=best.path.kind,
        column=best.path.column,
        argument=best.path.argument,
        estimated_rows=best.path.estimated_rows,
        cost=best.path.cost,
        residual=residual_for(best.consumed),
        index_version=version,
        index_only=best.path.index_only,
        stats_note=best.path.stats_note,
    )


def choose_ordered_path(engine: "StorageEngine", relation: str,
                        column: str, descending: bool = False,
                        equals: tuple[tuple[str, Any], ...] = (),
                        ranges: tuple[tuple[str, str, Any], ...] = (),
                        limit_hint: int | None = None
                        ) -> AccessPath | None:
    """An index-order scan over *column* satisfying ``ORDER BY column``,
    or None when no B-tree backs the column.

    The scan is an (open or range-bounded) B-tree walk in key order —
    ascending or reversed — so a Sort above it is redundant.  Every
    predicate except the range window on *column* stays residual.  With
    a *limit_hint* the consumer stops after that many rows, so only the
    key-order prefix is priced (scaled up by the residual predicates'
    expected rejection rate) — this is what makes top-K over an indexed
    column beat scan-then-sort.
    """
    info = engine.access_info(relation, histogram_columns=(column,))
    stats = info["btrees"].get(column)
    if stats is None:
        return None
    lo = hi = None
    consumed: list[str] = []
    for rng_column, op, value in ranges:
        if rng_column != column:
            continue
        if op in (">", ">="):
            if lo is None or value > lo:
                lo = value
        else:
            if hi is None or value < hi:
                hi = value
        if op in ("<=", ">="):
            consumed.append(f"rng:{column}:{op}:{value!r}")
    est = estimate_range_rows(stats["entries"], stats["bounds"], lo, hi,
                              histogram=stats.get("histogram"))
    touched = est
    if limit_hint is not None:
        # Residual predicates reject rows before the limit counts them;
        # assume each residual halves the stream (the Filter heuristic).
        residual_count = len(equals) + sum(
            1 for c, _, _ in ranges if c != column
        )
        selectivity = max(0.1, 0.5 ** residual_count)
        touched = min(est, max(1.0, limit_hint / selectivity))
    labels: dict[str, str] = {}
    for eq_column, value in equals:
        labels[f"eq:{eq_column}"] = f"{eq_column}={value!r}"
    for rng_column, op, value in ranges:
        labels[f"rng:{rng_column}:{op}:{value!r}"] = \
            f"{rng_column}{op}{value!r}"
    residual = tuple(text for key, text in labels.items()
                     if key not in consumed)
    return AccessPath(
        kind="index-range", column=column, argument=(lo, hi),
        estimated_rows=est,
        cost=INDEX_PROBE_COST + touched * INDEX_ROW_COST,
        residual=residual,
        index_version=info["index_version"],
        ordered=True,
        descending=descending,
        stats_note=_stats_note(stats),
    )
