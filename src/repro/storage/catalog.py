"""System catalog: relation schemas over primitive-class attribute types.

The catalog is the storage-side mirror of the derivation layer's class
definitions: every non-primitive class materializes as a relation whose
attribute types are primitive-class names validated by the ADT registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..adt.registry import TypeRegistry
from ..errors import RelationExistsError, StorageError, UnknownRelationError

__all__ = ["Column", "Schema", "Catalog"]


@dataclass(frozen=True)
class Column:
    """One attribute of a relation: a name and a primitive-class type."""

    name: str
    type_name: str


@dataclass(frozen=True)
class Schema:
    """Ordered attribute list of a relation."""

    relation: str
    columns: tuple[Column, ...]

    def __post_init__(self) -> None:
        names = [col.name for col in self.columns]
        if len(names) != len(set(names)):
            raise StorageError(f"duplicate column names in {self.relation!r}")

    @property
    def column_names(self) -> tuple[str, ...]:
        """Attribute names in schema order."""
        return tuple(col.name for col in self.columns)

    def index_of(self, column: str) -> int:
        """Position of *column* in the schema."""
        try:
            return self.column_names.index(column)
        except ValueError:
            raise StorageError(
                f"relation {self.relation!r} has no column {column!r}"
            ) from None

    def type_of(self, column: str) -> str:
        """Primitive-class name of *column*."""
        return self.columns[self.index_of(column)].type_name

    def as_dict(self, values: tuple[Any, ...]) -> dict[str, Any]:
        """Pair a positional value tuple with column names."""
        if len(values) != len(self.columns):
            raise StorageError(
                f"{self.relation!r}: expected {len(self.columns)} values, "
                f"got {len(values)}"
            )
        return dict(zip(self.column_names, values))


@dataclass
class Catalog:
    """Registry of relation schemas, validating types against the ADT
    layer."""

    types: TypeRegistry
    _schemas: dict[str, Schema] = field(default_factory=dict)

    def create(self, relation: str, columns: list[tuple[str, str]]) -> Schema:
        """Define a relation with ``(name, type_name)`` columns."""
        if relation in self._schemas:
            raise RelationExistsError(relation)
        cols = []
        for name, type_name in columns:
            self.types.get(type_name)  # raises UnknownTypeError
            cols.append(Column(name=name, type_name=type_name))
        schema = Schema(relation=relation, columns=tuple(cols))
        self._schemas[relation] = schema
        return schema

    def drop(self, relation: str) -> None:
        """Remove a relation's schema."""
        if relation not in self._schemas:
            raise UnknownRelationError(relation)
        del self._schemas[relation]

    def get(self, relation: str) -> Schema:
        """The schema of *relation*."""
        try:
            return self._schemas[relation]
        except KeyError:
            raise UnknownRelationError(relation) from None

    def __contains__(self, relation: str) -> bool:
        return relation in self._schemas

    def relations(self) -> list[str]:
        """All relation names in creation order."""
        return list(self._schemas)

    def validate_row(self, relation: str, values: tuple[Any, ...]
                     ) -> tuple[Any, ...]:
        """Validate *values* against the schema, returning normalized
        internal values (via each primitive class's validator)."""
        schema = self.get(relation)
        if len(values) != len(schema.columns):
            raise StorageError(
                f"{relation!r}: expected {len(schema.columns)} values, "
                f"got {len(values)}"
            )
        normalized = tuple(
            self.types.get(col.type_name).validate(value)
            for col, value in zip(schema.columns, values)
        )
        return normalized
