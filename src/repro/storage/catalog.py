"""System catalog: relation schemas over primitive-class attribute types.

The catalog is the storage-side mirror of the derivation layer's class
definitions: every non-primitive class materializes as a relation whose
attribute types are primitive-class names validated by the ADT registry.

The catalog also registers *secondary indexes* (:class:`IndexDef`): the
engine maintains the physical structures, but their existence is catalog
metadata, and :attr:`Catalog.index_version` is the monotonically
increasing stamp that plan caches compare so cached access paths are
invalidated whenever an index is created or dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..adt.registry import TypeRegistry
from ..errors import RelationExistsError, StorageError, UnknownRelationError

__all__ = ["Column", "Schema", "Catalog", "IndexDef"]


@dataclass(frozen=True)
class Column:
    """One attribute of a relation: a name and a primitive-class type."""

    name: str
    type_name: str


@dataclass(frozen=True)
class Schema:
    """Ordered attribute list of a relation."""

    relation: str
    columns: tuple[Column, ...]

    def __post_init__(self) -> None:
        names = [col.name for col in self.columns]
        if len(names) != len(set(names)):
            raise StorageError(f"duplicate column names in {self.relation!r}")

    @property
    def column_names(self) -> tuple[str, ...]:
        """Attribute names in schema order."""
        return tuple(col.name for col in self.columns)

    def index_of(self, column: str) -> int:
        """Position of *column* in the schema."""
        try:
            return self.column_names.index(column)
        except ValueError:
            raise StorageError(
                f"relation {self.relation!r} has no column {column!r}"
            ) from None

    def type_of(self, column: str) -> str:
        """Primitive-class name of *column*."""
        return self.columns[self.index_of(column)].type_name

    def as_dict(self, values: tuple[Any, ...]) -> dict[str, Any]:
        """Pair a positional value tuple with column names."""
        if len(values) != len(self.columns):
            raise StorageError(
                f"{self.relation!r}: expected {len(self.columns)} values, "
                f"got {len(values)}"
            )
        return dict(zip(self.column_names, values))


@dataclass(frozen=True)
class IndexDef:
    """Catalog entry for one secondary index.

    ``kind`` is ``"btree"`` (scalar attribute values), ``"spatial"``
    (grid index over a box column) or ``"temporal"`` (timeline over an
    abstime column).
    """

    name: str
    relation: str
    column: str
    kind: str


@dataclass
class Catalog:
    """Registry of relation schemas, validating types against the ADT
    layer."""

    types: TypeRegistry
    #: Bumped on every index create/drop; plan caches include it in the
    #: schema version they validate cached access paths against.
    index_version: int = 0
    _schemas: dict[str, Schema] = field(default_factory=dict)
    _indexes: dict[str, IndexDef] = field(default_factory=dict)

    def create(self, relation: str, columns: list[tuple[str, str]]) -> Schema:
        """Define a relation with ``(name, type_name)`` columns."""
        if relation in self._schemas:
            raise RelationExistsError(relation)
        cols = []
        for name, type_name in columns:
            self.types.get(type_name)  # raises UnknownTypeError
            cols.append(Column(name=name, type_name=type_name))
        schema = Schema(relation=relation, columns=tuple(cols))
        self._schemas[relation] = schema
        return schema

    def drop(self, relation: str) -> None:
        """Remove a relation's schema (and its index entries)."""
        if relation not in self._schemas:
            raise UnknownRelationError(relation)
        del self._schemas[relation]
        for name in [n for n, ix in self._indexes.items()
                     if ix.relation == relation]:
            del self._indexes[name]
            self.index_version += 1

    # -- secondary-index metadata ---------------------------------------------

    @staticmethod
    def default_index_name(relation: str, column: str, kind: str) -> str:
        """Conventional name for an index: ``ix_<relation>_<column>``."""
        prefix = {"btree": "ix", "spatial": "sx", "temporal": "tx"}[kind]
        return f"{prefix}_{relation}_{column}"

    def add_index(self, relation: str, column: str, kind: str,
                  name: str | None = None) -> IndexDef:
        """Register a secondary index; bumps :attr:`index_version`."""
        schema = self.get(relation)
        schema.index_of(column)  # raises when the column does not exist
        if kind not in ("btree", "spatial", "temporal"):
            raise StorageError(f"unknown index kind {kind!r}")
        if name is None:
            name = self.default_index_name(relation, column, kind)
        if name in self._indexes:
            raise StorageError(f"index {name!r} already exists")
        for existing in self._indexes.values():
            if (existing.relation, existing.column, existing.kind) \
                    == (relation, column, kind):
                raise StorageError(
                    f"{kind} index on {relation}.{column} already exists "
                    f"(as {existing.name!r})"
                )
        index = IndexDef(name=name, relation=relation, column=column,
                         kind=kind)
        self._indexes[name] = index
        self.index_version += 1
        return index

    def drop_index(self, name: str) -> IndexDef:
        """Unregister the index called *name*; bumps the version."""
        try:
            index = self._indexes.pop(name)
        except KeyError:
            raise StorageError(f"no index named {name!r}") from None
        self.index_version += 1
        return index

    def index_named(self, name: str) -> IndexDef:
        """The index definition called *name*."""
        try:
            return self._indexes[name]
        except KeyError:
            raise StorageError(f"no index named {name!r}") from None

    def indexes_of(self, relation: str) -> list[IndexDef]:
        """Index definitions on *relation*, in creation order."""
        return [ix for ix in self._indexes.values()
                if ix.relation == relation]

    def find_index(self, relation: str, column: str,
                   kind: str) -> IndexDef | None:
        """The index of *kind* on ``relation.column``, if registered."""
        for index in self._indexes.values():
            if (index.relation, index.column, index.kind) \
                    == (relation, column, kind):
                return index
        return None

    def all_indexes(self) -> list[IndexDef]:
        """Every registered index, in creation order."""
        return list(self._indexes.values())

    def get(self, relation: str) -> Schema:
        """The schema of *relation*."""
        try:
            return self._schemas[relation]
        except KeyError:
            raise UnknownRelationError(relation) from None

    def __contains__(self, relation: str) -> bool:
        return relation in self._schemas

    def relations(self) -> list[str]:
        """All relation names in creation order."""
        return list(self._schemas)

    def validate_row(self, relation: str, values: tuple[Any, ...]
                     ) -> tuple[Any, ...]:
        """Validate *values* against the schema, returning normalized
        internal values (via each primitive class's validator)."""
        schema = self.get(relation)
        if len(values) != len(schema.columns):
            raise StorageError(
                f"{relation!r}: expected {len(schema.columns)} values, "
                f"got {len(values)}"
            )
        normalized = tuple(
            self.types.get(col.type_name).validate(value)
            for col, value in zip(schema.columns, values)
        )
        return normalized
