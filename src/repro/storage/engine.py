"""The storage engine facade — Gaea's POSTGRES substitute.

Ties together the catalog, heap files, B-tree / spatial / temporal
indexes, the transaction manager, and the write-ahead log.  The API is
deliberately the slice Gaea needs:

* ``create_relation`` / ``insert`` / ``delete`` / ``scan`` with snapshot
  visibility (no-overwrite storage: deletes stamp ``xmax``),
* secondary indexes on scalar columns (B-tree), the spatial extent
  (grid index) and the temporal extent (timeline),
* ``recover`` — rebuild an engine by replaying a WAL.

Auto-commit convenience wrappers (`insert_row`, ...) keep simple callers
out of explicit transaction plumbing.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..adt.registry import TypeRegistry
from ..errors import StorageError, TupleNotFoundError, UnknownRelationError
from ..spatial.box import Box
from ..spatial.grid_index import GridIndex
from ..temporal.abstime import AbsTime
from ..temporal.timeline import Timeline
from .btree import BTree
from .catalog import Catalog, IndexDef, Schema
from .heap import HeapFile
from .transactions import Snapshot, Transaction, TransactionManager, visible
from .tuples import TID, TupleVersion
from .wal import LogKind, WriteAheadLog

__all__ = ["StorageEngine", "Row"]


@dataclass(frozen=True)
class Row:
    """A visible tuple returned by scans: its TID plus named values."""

    relation: str
    tid: TID
    values: dict[str, Any]

    def __getitem__(self, column: str) -> Any:
        return self.values[column]


@dataclass
class _RelationState:
    heap: HeapFile
    btrees: dict[str, BTree] = field(default_factory=dict)
    spatial: GridIndex | None = None
    spatial_column: str | None = None
    temporal: Timeline | None = None
    temporal_column: str | None = None


@dataclass
class StorageEngine:
    """In-memory no-overwrite storage engine with WAL-based recovery."""

    types: TypeRegistry
    catalog: Catalog = field(init=False)
    transactions: TransactionManager = field(default_factory=TransactionManager)
    wal: WriteAheadLog = field(default_factory=WriteAheadLog)
    _relations: dict[str, _RelationState] = field(default_factory=dict)
    # Per-transaction undo log of index insertions: entries are purged
    # from the physical indexes when the transaction aborts, so no index
    # ever keeps pointers to rolled-back row versions.
    _tx_index_log: dict[int, list[tuple[str, str, str, Any, TID]]] \
        = field(default_factory=dict)
    # Serializes all mutating paths (DDL, DML, commit/abort, WAL
    # appends).  Readers never take it: they work off an immutable
    # `Snapshot` plus structures that are individually safe to read
    # while written (append-only heap, internally locked indexes), so a
    # reader is never blocked by the writer.  Reentrant because `update`
    # composes `delete` + `insert` and auto-commit wrappers compose
    # begin/DML/commit.  Lock order: engine lock, then the transaction
    # manager's or an index's internal lock — never the reverse.
    _write_lock: threading.RLock = field(default_factory=threading.RLock,
                                         repr=False, compare=False)

    def __post_init__(self) -> None:
        self.catalog = Catalog(types=self.types)
        self.transactions.on_abort(self._purge_aborted_index_entries)

    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        del state["_write_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._write_lock = threading.RLock()

    # -- DDL -----------------------------------------------------------------

    def create_relation(self, name: str, columns: list[tuple[str, str]],
                        tx: Transaction | None = None) -> Schema:
        """Create a relation; logs the DDL."""
        with self._write_lock:
            schema = self.catalog.create(name, columns)
            self._relations[name] = _RelationState(heap=HeapFile(name=name))
            self.wal.append(
                LogKind.CREATE_RELATION,
                xid=tx.xid if tx else 0,
                payload={"relation": name, "columns": list(columns)},
            )
            return schema

    def _buildable_versions(self, state: _RelationState
                            ) -> Iterator[tuple[TID, TupleVersion]]:
        """Heap versions an index build should load.

        Versions created by aborted transactions are dead forever;
        versions deleted by a committed transaction likewise.  Versions
        from still-active transactions are loaded *and* logged so a later
        rollback purges them (same guarantee as insert-time maintenance).
        """
        for tid, version in state.heap.scan():
            if self.transactions.is_aborted(version.xmin):
                continue
            if version.xmax is not None \
                    and self.transactions.is_committed(version.xmax):
                continue
            yield tid, version

    def _log_if_uncommitted(self, xid: int, relation: str, kind: str,
                            column: str, key: Any, tid: TID) -> None:
        """Record an index insertion for purge-on-abort bookkeeping."""
        if self.transactions.is_active(xid):
            self._tx_index_log.setdefault(xid, []).append(
                (relation, kind, column, key, tid)
            )

    def create_index(self, relation: str, column: str, order: int = 32,
                     name: str | None = None) -> IndexDef:
        """Build a B-tree on *column*, loading existing live keys.

        The index is registered in the catalog (bumping the index
        version, which invalidates cached plans) and maintained by every
        subsequent insert/delete/rollback.
        """
        with self._write_lock:
            state = self._state(relation)
            schema = self.catalog.get(relation)
            position = schema.index_of(column)
            if column in state.btrees:
                raise StorageError(
                    f"index on {relation}.{column} already exists")
            index = self.catalog.add_index(relation, column, "btree",
                                           name=name)
            tree = BTree(order=order)
            for tid, version in self._buildable_versions(state):
                tree.insert(version.values[position], tid)
                self._log_if_uncommitted(version.xmin, relation, "btree",
                                         column, version.values[position],
                                         tid)
            state.btrees[column] = tree
            return index

    def create_spatial_index(self, relation: str, column: str,
                             universe: Box, nx: int = 16, ny: int = 16,
                             name: str | None = None) -> IndexDef:
        """Attach a grid index over a box-typed column."""
        with self._write_lock:
            state = self._state(relation)
            schema = self.catalog.get(relation)
            if schema.type_of(column) != "box":
                raise StorageError(f"{relation}.{column} is not box-typed")
            index = self.catalog.add_index(relation, column, "spatial",
                                           name=name)
            state.spatial = GridIndex(universe=universe, nx=nx, ny=ny)
            state.spatial_column = column
            position = schema.index_of(column)
            for tid, version in self._buildable_versions(state):
                state.spatial.insert(tid, version.values[position])
                self._log_if_uncommitted(version.xmin, relation, "spatial",
                                         column, version.values[position],
                                         tid)
            return index

    def create_temporal_index(self, relation: str, column: str,
                              name: str | None = None) -> IndexDef:
        """Attach a timeline over an abstime-typed column."""
        with self._write_lock:
            state = self._state(relation)
            schema = self.catalog.get(relation)
            if schema.type_of(column) != "abstime":
                raise StorageError(
                    f"{relation}.{column} is not abstime-typed")
            index = self.catalog.add_index(relation, column, "temporal",
                                           name=name)
            state.temporal = Timeline()
            state.temporal_column = column
            position = schema.index_of(column)
            for tid, version in self._buildable_versions(state):
                state.temporal.add(version.values[position], tid)
                self._log_if_uncommitted(version.xmin, relation, "temporal",
                                         column, version.values[position],
                                         tid)
            return index

    def drop_index(self, relation: str, column: str) -> None:
        """Drop the B-tree on ``relation.column`` (catalog + structure)."""
        with self._write_lock:
            state = self._state(relation)
            if column not in state.btrees:
                raise StorageError(f"no index on {relation}.{column}")
            index = self.catalog.find_index(relation, column, "btree")
            if index is not None:
                self.catalog.drop_index(index.name)
            del state.btrees[column]

    def drop_index_named(self, name: str) -> IndexDef:
        """Drop any secondary index by its catalog name."""
        with self._write_lock:
            index = self.catalog.index_named(name)
            state = self._state(index.relation)
            self.catalog.drop_index(name)
            if index.kind == "btree":
                state.btrees.pop(index.column, None)
            elif index.kind == "spatial":
                state.spatial = None
                state.spatial_column = None
            else:
                state.temporal = None
                state.temporal_column = None
            return index

    def has_index(self, relation: str, column: str) -> bool:
        """Whether a B-tree exists on ``relation.column``."""
        return column in self._state(relation).btrees

    def _state(self, relation: str) -> _RelationState:
        try:
            return self._relations[relation]
        except KeyError:
            raise UnknownRelationError(relation) from None

    def relations(self) -> list[str]:
        """All relation names."""
        return self.catalog.relations()

    # -- transactions ------------------------------------------------------------

    def begin(self) -> Transaction:
        """Start a transaction (logged)."""
        with self._write_lock:
            tx = self.transactions.begin()
            self.wal.append(LogKind.BEGIN, xid=tx.xid)
            return tx

    def commit(self, tx: Transaction) -> None:
        """Commit (logged — the commit record is the durability point)."""
        with self._write_lock:
            self.wal.append(LogKind.COMMIT, xid=tx.xid)
            self.transactions.commit(tx)
            # Committed index entries are permanent: drop the undo log.
            self._tx_index_log.pop(tx.xid, None)

    def abort(self, tx: Transaction) -> None:
        """Abort (logged); the transaction's versions stay dead forever.

        Secondary-index entries the transaction added are purged (via the
        transaction manager's abort hook), so indexes never point at
        rolled-back versions.
        """
        with self._write_lock:
            self.wal.append(LogKind.ABORT, xid=tx.xid)
            self.transactions.abort(tx)

    def _purge_aborted_index_entries(self, xid: int) -> None:
        """Abort hook: undo every index insertion logged under *xid*."""
        for relation, kind, column, key, tid in \
                self._tx_index_log.pop(xid, []):
            state = self._relations.get(relation)
            if state is None:
                continue
            if kind == "btree":
                tree = state.btrees.get(column)
                if tree is not None and tid in tree.search(key):
                    tree.delete(key, tid)
            elif kind == "spatial":
                if state.spatial is not None and tid in state.spatial:
                    state.spatial.remove(tid)
            elif kind == "temporal":
                if state.temporal is not None \
                        and tid in state.temporal.at(key):
                    state.temporal.remove(key, tid)

    def snapshot(self, tx: Transaction | None = None) -> Snapshot:
        """Current snapshot, optionally for an in-flight transaction."""
        return self.transactions.snapshot(for_tx=tx)

    # -- DML -----------------------------------------------------------------------

    def insert(self, relation: str, values: tuple[Any, ...],
               tx: Transaction) -> TID:
        """Insert a row version under *tx*; maintains all indexes."""
        with self._write_lock:
            state = self._state(relation)
            normalized = self.catalog.validate_row(relation, values)
            version = TupleVersion(values=normalized, xmin=tx.xid)
            tid = state.heap.insert(version)
            self.wal.append(
                LogKind.INSERT, xid=tx.xid,
                payload={"relation": relation, "tid": tid,
                         "values": normalized},
            )
            schema = self.catalog.get(relation)
            for column, tree in state.btrees.items():
                key = normalized[schema.index_of(column)]
                tree.insert(key, tid)
                self._log_if_uncommitted(tx.xid, relation, "btree", column,
                                         key, tid)
            if state.spatial is not None and state.spatial_column is not None:
                box = normalized[schema.index_of(state.spatial_column)]
                state.spatial.insert(tid, box)
                self._log_if_uncommitted(tx.xid, relation, "spatial",
                                         state.spatial_column, box, tid)
            if state.temporal is not None \
                    and state.temporal_column is not None:
                at = normalized[schema.index_of(state.temporal_column)]
                state.temporal.add(at, tid)
                self._log_if_uncommitted(tx.xid, relation, "temporal",
                                         state.temporal_column, at, tid)
            return tid

    def delete(self, relation: str, tid: TID, tx: Transaction) -> None:
        """No-overwrite delete: stamp ``xmax``; the version remains stored."""
        with self._write_lock:
            state = self._state(relation)
            version = state.heap.get(tid)
            if version.xmax is not None:
                raise TupleNotFoundError(f"{relation}{tid} is already deleted")
            version.xmax = tx.xid
            self.wal.append(
                LogKind.DELETE, xid=tx.xid,
                payload={"relation": relation, "tid": tid},
            )

    def update(self, relation: str, tid: TID, values: tuple[Any, ...],
               tx: Transaction) -> TID:
        """Postgres-style update: delete the old version, insert a new one."""
        with self._write_lock:
            self.delete(relation, tid, tx)
            return self.insert(relation, values, tx)

    # -- reads -----------------------------------------------------------------------

    def fetch(self, relation: str, tid: TID,
              snapshot: Snapshot | None = None) -> Row:
        """The visible row at *tid* (error when invisible/absent)."""
        snap = snapshot or self.snapshot()
        state = self._state(relation)
        version = state.heap.get(tid)
        if not visible(version, snap):
            raise TupleNotFoundError(f"{relation}{tid} not visible")
        schema = self.catalog.get(relation)
        return Row(relation=relation, tid=tid,
                   values=schema.as_dict(version.values))

    def scan(self, relation: str, snapshot: Snapshot | None = None
             ) -> Iterator[Row]:
        """All visible rows, in TID order."""
        snap = snapshot or self.snapshot()
        state = self._state(relation)
        schema = self.catalog.get(relation)
        for tid, version in state.heap.scan():
            if visible(version, snap):
                yield Row(relation=relation, tid=tid,
                          values=schema.as_dict(version.values))

    def _rows_for_tids(self, relation: str, tids: set[TID],
                       snap: Snapshot) -> list[Row]:
        rows = []
        for tid in sorted(tids):
            try:
                rows.append(self.fetch(relation, tid, snap))
            except TupleNotFoundError:
                continue
        return rows

    def _iter_visible_tids(self, relation: str, tids: Iterator[TID] | set[TID],
                           snap: Snapshot) -> Iterator[Row]:
        """Stream visible rows for *tids*, skipping invisible versions."""
        for tid in tids:
            try:
                yield self.fetch(relation, tid, snap)
            except TupleNotFoundError:
                continue

    def value_batches(self, relation: str,
                      snapshot: Snapshot | None = None,
                      batch_size: int = 1024,
                      tids: Iterator[TID] | None = None
                      ) -> Iterator[list[tuple]]:
        """Visible raw value tuples (schema order, ``_oid`` first) in
        batches of at most *batch_size* — the columnar scan surface.

        No :class:`Row` dicts are built: the version value tuples are
        handed out by reference (sound under no-overwrite MVCC — a
        committed version's values never mutate).  With *tids* given,
        rows are fetched in that order, skipping invisible versions —
        this is how index paths batch; the TID streams ride the chunked
        B-tree ``range_scan`` (≤256 pairs per lock acquisition), so
        batch assembly adds no extra copies.  Without *tids*, the whole
        heap is walked in TID order like :meth:`scan`.
        """
        snap = snapshot or self.snapshot()
        state = self._state(relation)
        out: list[tuple] = []
        if tids is None:
            # Page-at-a-time with ``visible()`` inlined: the per-row
            # function-call overhead would dominate a columnar scan that
            # does nothing else per row (same predicate as
            # :func:`repro.storage.transactions.visible`).
            committed = snap.committed
            own = snap.own_xid
            for versions in state.heap.iter_version_lists():
                out.extend(
                    v.values for v in versions
                    if (v.xmin in committed or v.xmin == own)
                    and (v.xmax is None
                         or (v.xmax not in committed and v.xmax != own))
                )
                while len(out) >= batch_size:
                    yield out[:batch_size]
                    out = out[batch_size:]
        else:
            for tid in tids:
                try:
                    version = state.heap.get(tid)
                except TupleNotFoundError:
                    continue
                if visible(version, snap):
                    out.append(version.values)
                    if len(out) >= batch_size:
                        yield out
                        out = []
        if out:
            yield out

    def iter_lookup_tids(self, relation: str, column: str, key: Any
                         ) -> Iterator[TID]:
        """TID stream of one equality probe, in the order
        :meth:`iter_lookup` visits rows (visibility unchecked — the
        batch fetch layer checks it)."""
        state = self._state(relation)
        tree = state.btrees.get(column)
        if tree is None:
            raise StorageError(f"no index on {relation}.{column}")
        yield from sorted(tree.search(key))

    def iter_range_tids(self, relation: str, column: str, lo: Any, hi: Any,
                        reverse: bool = False) -> Iterator[TID]:
        """TID stream of one range probe in key order (``iter_range``'s
        visit order), riding the chunked snapshot ``range_scan``."""
        state = self._state(relation)
        tree = state.btrees.get(column)
        if tree is None:
            raise StorageError(f"no index on {relation}.{column}")
        for _, bucket in tree.range_scan(lo, hi, reverse=reverse):
            yield from sorted(bucket)

    def iter_spatial_tids(self, relation: str, query: Box) -> Iterator[TID]:
        """TID stream of a spatial-grid probe (``iter_spatial`` order)."""
        state = self._state(relation)
        if state.spatial is None:
            raise StorageError(f"no spatial index on {relation}")
        yield from sorted(state.spatial.query(query))

    def iter_temporal_tids(self, relation: str, at: AbsTime) -> Iterator[TID]:
        """TID stream of a timeline probe (``iter_temporal`` order)."""
        state = self._state(relation)
        if state.temporal is None:
            raise StorageError(f"no temporal index on {relation}")
        yield from sorted(state.temporal.at(at))

    def iter_lookup(self, relation: str, column: str, key: Any,
                    snapshot: Snapshot | None = None) -> Iterator[Row]:
        """Stream the visible rows with ``column == key`` via the B-tree.

        The lazy counterpart of :meth:`lookup`: rows are fetched one TID
        at a time, so a consumer that stops early does no further work.
        """
        snap = snapshot or self.snapshot()
        state = self._state(relation)
        tree = state.btrees.get(column)
        if tree is None:
            raise StorageError(f"no index on {relation}.{column}")
        yield from self._iter_visible_tids(relation,
                                           iter(sorted(tree.search(key))),
                                           snap)

    def iter_range(self, relation: str, column: str, lo: Any, hi: Any,
                   snapshot: Snapshot | None = None,
                   reverse: bool = False) -> Iterator[Row]:
        """Stream visible rows with ``lo <= column <= hi`` in key order
        (descending key order with *reverse*).

        ``None`` bounds are open-ended.  Key-ordered streaming is the
        substrate of sort avoidance: an ``ORDER BY`` over an indexed
        column rides this iterator instead of an explicit Sort.
        """
        snap = snapshot or self.snapshot()
        state = self._state(relation)
        tree = state.btrees.get(column)
        if tree is None:
            raise StorageError(f"no index on {relation}.{column}")
        for _, bucket in tree.range_scan(lo, hi, reverse=reverse):
            yield from self._iter_visible_tids(relation,
                                               iter(sorted(bucket)), snap)

    def iter_spatial(self, relation: str, query: Box,
                     snapshot: Snapshot | None = None) -> Iterator[Row]:
        """Stream visible rows whose extent overlaps *query*."""
        snap = snapshot or self.snapshot()
        state = self._state(relation)
        if state.spatial is None:
            raise StorageError(f"no spatial index on {relation}")
        yield from self._iter_visible_tids(
            relation, iter(sorted(state.spatial.query(query))), snap
        )

    def iter_temporal(self, relation: str, at: AbsTime,
                      snapshot: Snapshot | None = None) -> Iterator[Row]:
        """Stream visible rows stamped exactly *at*."""
        snap = snapshot or self.snapshot()
        state = self._state(relation)
        if state.temporal is None:
            raise StorageError(f"no temporal index on {relation}")
        yield from self._iter_visible_tids(
            relation, iter(sorted(state.temporal.at(at))), snap
        )

    def iter_index_keys(self, relation: str, column: str,
                        eq: Any = None,
                        lo: Any = None, hi: Any = None,
                        snapshot: Snapshot | None = None,
                        reverse: bool = False
                        ) -> Iterator[tuple[Any, TID]]:
        """Stream ``(key, tid)`` pairs off the B-tree without touching
        heap values — the substrate of covering index-only scans.

        Visibility is still checked (the version *header* is read; the
        values are not materialized into a row dict).  With *eq* set,
        only that key's bucket is walked; otherwise ``[lo, hi]`` with
        ``None`` bounds open-ended.
        """
        snap = snapshot or self.snapshot()
        state = self._state(relation)
        tree = state.btrees.get(column)
        if tree is None:
            raise StorageError(f"no index on {relation}.{column}")
        if eq is not None:
            pairs: Iterator[tuple[Any, set[TID]]] = iter(
                [(eq, tree.search(eq))]
            )
        else:
            pairs = tree.range_scan(lo, hi, reverse=reverse)
        for key, bucket in pairs:
            for tid in sorted(bucket):
                try:
                    version = state.heap.get(tid)
                except TupleNotFoundError:
                    continue
                if visible(version, snap):
                    yield key, tid

    def lookup(self, relation: str, column: str, key: Any,
               snapshot: Snapshot | None = None) -> list[Row]:
        """Equality lookup via the B-tree on *column*."""
        snap = snapshot or self.snapshot()
        state = self._state(relation)
        tree = state.btrees.get(column)
        if tree is None:
            raise StorageError(f"no index on {relation}.{column}")
        return self._rows_for_tids(relation, tree.search(key), snap)

    def range_lookup(self, relation: str, column: str, lo: Any, hi: Any,
                     snapshot: Snapshot | None = None) -> list[Row]:
        """Range lookup ``lo <= key <= hi`` via the B-tree on *column*."""
        snap = snapshot or self.snapshot()
        state = self._state(relation)
        tree = state.btrees.get(column)
        if tree is None:
            raise StorageError(f"no index on {relation}.{column}")
        tids: set[TID] = set()
        for _, bucket in tree.range_scan(lo, hi):
            tids |= bucket
        return self._rows_for_tids(relation, tids, snap)

    def spatial_lookup(self, relation: str, query: Box,
                       snapshot: Snapshot | None = None) -> list[Row]:
        """Rows whose spatial extent overlaps *query* (grid index)."""
        snap = snapshot or self.snapshot()
        state = self._state(relation)
        if state.spatial is None:
            raise StorageError(f"no spatial index on {relation}")
        return self._rows_for_tids(relation, state.spatial.query(query), snap)

    def temporal_lookup(self, relation: str, at: AbsTime,
                        snapshot: Snapshot | None = None) -> list[Row]:
        """Rows stamped exactly *at* (timeline index)."""
        snap = snapshot or self.snapshot()
        state = self._state(relation)
        if state.temporal is None:
            raise StorageError(f"no temporal index on {relation}")
        return self._rows_for_tids(relation, state.temporal.at(at), snap)

    def timeline_of(self, relation: str) -> Timeline:
        """The temporal index of *relation* (for interpolation planning)."""
        state = self._state(relation)
        if state.temporal is None:
            raise StorageError(f"no temporal index on {relation}")
        return state.temporal

    # -- auto-commit conveniences ---------------------------------------------------------

    def insert_row(self, relation: str, values: tuple[Any, ...]) -> TID:
        """Insert inside a fresh, immediately committed transaction."""
        with self._write_lock:
            tx = self.begin()
            try:
                tid = self.insert(relation, values, tx)
            except Exception:
                self.abort(tx)
                raise
            self.commit(tx)
            return tid

    def delete_row(self, relation: str, tid: TID) -> None:
        """Delete inside a fresh, immediately committed transaction."""
        with self._write_lock:
            tx = self.begin()
            try:
                self.delete(relation, tid, tx)
            except Exception:
                self.abort(tx)
                raise
            self.commit(tx)

    # -- statistics -------------------------------------------------------------------------

    def access_info(self, relation: str, spatial: Box | None = None,
                    temporal: AbsTime | None = None,
                    histogram_columns: tuple[str, ...] | None = None
                    ) -> dict[str, Any]:
        """Everything the cost model needs to price access paths: O(1)
        (histograms amortized — cached in the B-tree, rebuilt only after
        significant key churn).

        ``rows`` is the stored-version count (an upper bound on visible
        rows — dead versions only pad the full-scan cost, which is the
        honest direction to err).  When *spatial*/*temporal* probes are
        supplied, per-probe cardinality estimates are included.
        *histogram_columns* limits histogram (re)builds to the columns
        the query actually predicates on (None means all).
        """
        state = self._state(relation)
        btrees = {
            column: {
                "entries": len(tree),
                "distinct": tree.distinct_keys(),
                "bounds": tree.key_bounds(),
                "histogram": (
                    tree.histogram()
                    if histogram_columns is None
                    or column in histogram_columns else None
                ),
            }
            for column, tree in state.btrees.items()
        }
        spatial_estimate = None
        if state.spatial is not None and spatial is not None:
            spatial_estimate = state.spatial.estimate_matches(spatial)
        temporal_estimate = None
        if state.temporal is not None and temporal is not None:
            temporal_estimate = len(state.temporal.at(temporal))
        return {
            "rows": state.heap.version_count(),
            "index_version": self.catalog.index_version,
            "btrees": btrees,
            "spatial_column": state.spatial_column,
            "spatial_entries": (len(state.spatial)
                                if state.spatial is not None else None),
            "spatial_estimate": spatial_estimate,
            "temporal_column": state.temporal_column,
            "temporal_estimate": temporal_estimate,
        }

    def index_stats(self, relation: str, column: str) -> dict[str, Any]:
        """Statistics of the B-tree on ``relation.column``, for browsing
        (``SHOW INDEXES``) and plan dumps: why a path was priced the way
        it was.

        ``histogram_buckets`` is the bucket count of the cached
        equi-depth histogram (0 for non-numeric key domains).
        """
        state = self._state(relation)
        tree = state.btrees.get(column)
        if tree is None:
            raise StorageError(f"no index on {relation}.{column}")
        histogram = tree.histogram()
        return {
            "entries": len(tree),
            "distinct_keys": tree.distinct_keys(),
            "histogram_buckets": len(histogram) if histogram else 0,
            "depth": tree.depth(),
        }

    def stats(self, relation: str) -> dict[str, int]:
        """Physical statistics: pages, stored versions, visible rows."""
        state = self._state(relation)
        live = sum(1 for _ in self.scan(relation))
        return {
            "pages": state.heap.page_count,
            "versions": state.heap.version_count(),
            "visible_rows": live,
        }

    # -- recovery ------------------------------------------------------------------------------

    @staticmethod
    def recover(wal: WriteAheadLog, types: TypeRegistry) -> "StorageEngine":
        """Rebuild an engine by replaying *wal* (redo of committed work).

        DDL from any transaction is replayed (relations are never rolled
        back in this substrate); DML is replayed only for committed xids.
        TIDs are re-derived by replay order; because aborted inserts are
        skipped on replay, a map from original TIDs to replayed TIDs
        routes DELETE records to the right version.
        """
        wal.verify()
        committed = wal.committed_xids()
        engine = StorageEngine(types=types)
        tid_map: dict[tuple[str, TID], TID] = {}
        for record in wal:
            if record.kind is LogKind.CREATE_RELATION:
                name = record.payload["relation"]
                engine.catalog.create(name, record.payload["columns"])
                engine._relations[name] = _RelationState(heap=HeapFile(name=name))
            elif record.kind is LogKind.INSERT and record.xid in committed:
                relation = record.payload["relation"]
                state = engine._state(relation)
                version = TupleVersion(
                    values=record.payload["values"], xmin=record.xid
                )
                new_tid = state.heap.insert(version)
                tid_map[(relation, record.payload["tid"])] = new_tid
            elif record.kind is LogKind.DELETE and record.xid in committed:
                relation = record.payload["relation"]
                state = engine._state(relation)
                original = record.payload["tid"]
                replayed = tid_map.get((relation, original), original)
                state.heap.get(replayed).xmax = record.xid
        for xid in committed:
            engine.transactions.force_committed(xid)
        # The recovered engine starts a fresh log; history lives in `wal`.
        return engine
