"""The storage engine facade — Gaea's POSTGRES substitute.

Ties together the catalog, heap files, B-tree / spatial / temporal
indexes, the transaction manager, and the write-ahead log.  The API is
deliberately the slice Gaea needs:

* ``create_relation`` / ``insert`` / ``delete`` / ``scan`` with snapshot
  visibility (no-overwrite storage: deletes stamp ``xmax``),
* secondary indexes on scalar columns (B-tree), the spatial extent
  (grid index) and the temporal extent (timeline),
* ``recover`` — rebuild an engine by replaying a WAL.

Auto-commit convenience wrappers (`insert_row`, ...) keep simple callers
out of explicit transaction plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from ..adt.registry import TypeRegistry
from ..errors import StorageError, TupleNotFoundError, UnknownRelationError
from ..spatial.box import Box
from ..spatial.grid_index import GridIndex
from ..temporal.abstime import AbsTime
from ..temporal.timeline import Timeline
from .btree import BTree
from .catalog import Catalog, Schema
from .heap import HeapFile
from .transactions import Snapshot, Transaction, TransactionManager, visible
from .tuples import TID, TupleVersion
from .wal import LogKind, WriteAheadLog

__all__ = ["StorageEngine", "Row"]


@dataclass(frozen=True)
class Row:
    """A visible tuple returned by scans: its TID plus named values."""

    relation: str
    tid: TID
    values: dict[str, Any]

    def __getitem__(self, column: str) -> Any:
        return self.values[column]


@dataclass
class _RelationState:
    heap: HeapFile
    btrees: dict[str, BTree] = field(default_factory=dict)
    spatial: GridIndex | None = None
    spatial_column: str | None = None
    temporal: Timeline | None = None
    temporal_column: str | None = None


@dataclass
class StorageEngine:
    """In-memory no-overwrite storage engine with WAL-based recovery."""

    types: TypeRegistry
    catalog: Catalog = field(init=False)
    transactions: TransactionManager = field(default_factory=TransactionManager)
    wal: WriteAheadLog = field(default_factory=WriteAheadLog)
    _relations: dict[str, _RelationState] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.catalog = Catalog(types=self.types)

    # -- DDL -----------------------------------------------------------------

    def create_relation(self, name: str, columns: list[tuple[str, str]],
                        tx: Transaction | None = None) -> Schema:
        """Create a relation; logs the DDL."""
        schema = self.catalog.create(name, columns)
        self._relations[name] = _RelationState(heap=HeapFile(name=name))
        self.wal.append(
            LogKind.CREATE_RELATION,
            xid=tx.xid if tx else 0,
            payload={"relation": name, "columns": list(columns)},
        )
        return schema

    def create_index(self, relation: str, column: str, order: int = 32) -> None:
        """Build a B-tree on *column*, loading existing visible keys."""
        state = self._state(relation)
        schema = self.catalog.get(relation)
        position = schema.index_of(column)
        if column in state.btrees:
            raise StorageError(f"index on {relation}.{column} already exists")
        tree = BTree(order=order)
        for tid, version in state.heap.scan():
            tree.insert(version.values[position], tid)
        state.btrees[column] = tree

    def create_spatial_index(self, relation: str, column: str,
                             universe: Box, nx: int = 16, ny: int = 16) -> None:
        """Attach a grid index over a box-typed column."""
        state = self._state(relation)
        schema = self.catalog.get(relation)
        if schema.type_of(column) != "box":
            raise StorageError(f"{relation}.{column} is not box-typed")
        state.spatial = GridIndex(universe=universe, nx=nx, ny=ny)
        state.spatial_column = column
        position = schema.index_of(column)
        for tid, version in state.heap.scan():
            state.spatial.insert(tid, version.values[position])

    def create_temporal_index(self, relation: str, column: str) -> None:
        """Attach a timeline over an abstime-typed column."""
        state = self._state(relation)
        schema = self.catalog.get(relation)
        if schema.type_of(column) != "abstime":
            raise StorageError(f"{relation}.{column} is not abstime-typed")
        state.temporal = Timeline()
        state.temporal_column = column
        position = schema.index_of(column)
        for tid, version in state.heap.scan():
            state.temporal.add(version.values[position], tid)

    def _state(self, relation: str) -> _RelationState:
        try:
            return self._relations[relation]
        except KeyError:
            raise UnknownRelationError(relation) from None

    def relations(self) -> list[str]:
        """All relation names."""
        return self.catalog.relations()

    # -- transactions ------------------------------------------------------------

    def begin(self) -> Transaction:
        """Start a transaction (logged)."""
        tx = self.transactions.begin()
        self.wal.append(LogKind.BEGIN, xid=tx.xid)
        return tx

    def commit(self, tx: Transaction) -> None:
        """Commit (logged — the commit record is the durability point)."""
        self.wal.append(LogKind.COMMIT, xid=tx.xid)
        self.transactions.commit(tx)

    def abort(self, tx: Transaction) -> None:
        """Abort (logged); the transaction's versions stay dead forever."""
        self.wal.append(LogKind.ABORT, xid=tx.xid)
        self.transactions.abort(tx)

    def snapshot(self, tx: Transaction | None = None) -> Snapshot:
        """Current snapshot, optionally for an in-flight transaction."""
        return self.transactions.snapshot(for_tx=tx)

    # -- DML -----------------------------------------------------------------------

    def insert(self, relation: str, values: tuple[Any, ...],
               tx: Transaction) -> TID:
        """Insert a row version under *tx*; maintains all indexes."""
        state = self._state(relation)
        normalized = self.catalog.validate_row(relation, values)
        version = TupleVersion(values=normalized, xmin=tx.xid)
        tid = state.heap.insert(version)
        self.wal.append(
            LogKind.INSERT, xid=tx.xid,
            payload={"relation": relation, "tid": tid, "values": normalized},
        )
        schema = self.catalog.get(relation)
        for column, tree in state.btrees.items():
            tree.insert(normalized[schema.index_of(column)], tid)
        if state.spatial is not None and state.spatial_column is not None:
            state.spatial.insert(tid, normalized[schema.index_of(state.spatial_column)])
        if state.temporal is not None and state.temporal_column is not None:
            state.temporal.add(normalized[schema.index_of(state.temporal_column)], tid)
        return tid

    def delete(self, relation: str, tid: TID, tx: Transaction) -> None:
        """No-overwrite delete: stamp ``xmax``; the version remains stored."""
        state = self._state(relation)
        version = state.heap.get(tid)
        if version.xmax is not None:
            raise TupleNotFoundError(f"{relation}{tid} is already deleted")
        version.xmax = tx.xid
        self.wal.append(
            LogKind.DELETE, xid=tx.xid,
            payload={"relation": relation, "tid": tid},
        )

    def update(self, relation: str, tid: TID, values: tuple[Any, ...],
               tx: Transaction) -> TID:
        """Postgres-style update: delete the old version, insert a new one."""
        self.delete(relation, tid, tx)
        return self.insert(relation, values, tx)

    # -- reads -----------------------------------------------------------------------

    def fetch(self, relation: str, tid: TID,
              snapshot: Snapshot | None = None) -> Row:
        """The visible row at *tid* (error when invisible/absent)."""
        snap = snapshot or self.snapshot()
        state = self._state(relation)
        version = state.heap.get(tid)
        if not visible(version, snap):
            raise TupleNotFoundError(f"{relation}{tid} not visible")
        schema = self.catalog.get(relation)
        return Row(relation=relation, tid=tid,
                   values=schema.as_dict(version.values))

    def scan(self, relation: str, snapshot: Snapshot | None = None
             ) -> Iterator[Row]:
        """All visible rows, in TID order."""
        snap = snapshot or self.snapshot()
        state = self._state(relation)
        schema = self.catalog.get(relation)
        for tid, version in state.heap.scan():
            if visible(version, snap):
                yield Row(relation=relation, tid=tid,
                          values=schema.as_dict(version.values))

    def _rows_for_tids(self, relation: str, tids: set[TID],
                       snap: Snapshot) -> list[Row]:
        rows = []
        for tid in sorted(tids):
            try:
                rows.append(self.fetch(relation, tid, snap))
            except TupleNotFoundError:
                continue
        return rows

    def lookup(self, relation: str, column: str, key: Any,
               snapshot: Snapshot | None = None) -> list[Row]:
        """Equality lookup via the B-tree on *column*."""
        snap = snapshot or self.snapshot()
        state = self._state(relation)
        tree = state.btrees.get(column)
        if tree is None:
            raise StorageError(f"no index on {relation}.{column}")
        return self._rows_for_tids(relation, tree.search(key), snap)

    def range_lookup(self, relation: str, column: str, lo: Any, hi: Any,
                     snapshot: Snapshot | None = None) -> list[Row]:
        """Range lookup ``lo <= key <= hi`` via the B-tree on *column*."""
        snap = snapshot or self.snapshot()
        state = self._state(relation)
        tree = state.btrees.get(column)
        if tree is None:
            raise StorageError(f"no index on {relation}.{column}")
        tids: set[TID] = set()
        for _, bucket in tree.range_scan(lo, hi):
            tids |= bucket
        return self._rows_for_tids(relation, tids, snap)

    def spatial_lookup(self, relation: str, query: Box,
                       snapshot: Snapshot | None = None) -> list[Row]:
        """Rows whose spatial extent overlaps *query* (grid index)."""
        snap = snapshot or self.snapshot()
        state = self._state(relation)
        if state.spatial is None:
            raise StorageError(f"no spatial index on {relation}")
        return self._rows_for_tids(relation, state.spatial.query(query), snap)

    def temporal_lookup(self, relation: str, at: AbsTime,
                        snapshot: Snapshot | None = None) -> list[Row]:
        """Rows stamped exactly *at* (timeline index)."""
        snap = snapshot or self.snapshot()
        state = self._state(relation)
        if state.temporal is None:
            raise StorageError(f"no temporal index on {relation}")
        return self._rows_for_tids(relation, state.temporal.at(at), snap)

    def timeline_of(self, relation: str) -> Timeline:
        """The temporal index of *relation* (for interpolation planning)."""
        state = self._state(relation)
        if state.temporal is None:
            raise StorageError(f"no temporal index on {relation}")
        return state.temporal

    # -- auto-commit conveniences ---------------------------------------------------------

    def insert_row(self, relation: str, values: tuple[Any, ...]) -> TID:
        """Insert inside a fresh, immediately committed transaction."""
        tx = self.begin()
        try:
            tid = self.insert(relation, values, tx)
        except Exception:
            self.abort(tx)
            raise
        self.commit(tx)
        return tid

    def delete_row(self, relation: str, tid: TID) -> None:
        """Delete inside a fresh, immediately committed transaction."""
        tx = self.begin()
        try:
            self.delete(relation, tid, tx)
        except Exception:
            self.abort(tx)
            raise
        self.commit(tx)

    # -- statistics -------------------------------------------------------------------------

    def stats(self, relation: str) -> dict[str, int]:
        """Physical statistics: pages, stored versions, visible rows."""
        state = self._state(relation)
        live = sum(1 for _ in self.scan(relation))
        return {
            "pages": state.heap.page_count,
            "versions": state.heap.version_count(),
            "visible_rows": live,
        }

    # -- recovery ------------------------------------------------------------------------------

    @staticmethod
    def recover(wal: WriteAheadLog, types: TypeRegistry) -> "StorageEngine":
        """Rebuild an engine by replaying *wal* (redo of committed work).

        DDL from any transaction is replayed (relations are never rolled
        back in this substrate); DML is replayed only for committed xids.
        TIDs are re-derived by replay order; because aborted inserts are
        skipped on replay, a map from original TIDs to replayed TIDs
        routes DELETE records to the right version.
        """
        wal.verify()
        committed = wal.committed_xids()
        engine = StorageEngine(types=types)
        tid_map: dict[tuple[str, TID], TID] = {}
        for record in wal:
            if record.kind is LogKind.CREATE_RELATION:
                name = record.payload["relation"]
                engine.catalog.create(name, record.payload["columns"])
                engine._relations[name] = _RelationState(heap=HeapFile(name=name))
            elif record.kind is LogKind.INSERT and record.xid in committed:
                relation = record.payload["relation"]
                state = engine._state(relation)
                version = TupleVersion(
                    values=record.payload["values"], xmin=record.xid
                )
                new_tid = state.heap.insert(version)
                tid_map[(relation, record.payload["tid"])] = new_tid
            elif record.kind is LogKind.DELETE and record.xid in committed:
                relation = record.payload["relation"]
                state = engine._state(relation)
                original = record.payload["tid"]
                replayed = tid_map.get((relation, original), original)
                state.heap.get(replayed).xmax = record.xid
        for xid in committed:
            engine.transactions.force_committed(xid)
        # The recovered engine starts a fresh log; history lives in `wal`.
        return engine
