"""An order-configurable B-tree index.

Keys are any totally ordered Python values (ints, floats, strings,
``AbsTime`` — anything the relevant column type yields).  Duplicate keys
are supported: each leaf entry holds the set of TIDs for that key.

This is a textbook in-memory B-tree: split-on-insert, borrow/merge on
delete.  It exists so the storage engine has a real index substrate to
benchmark (EXP-F) and so equality/range retrievals in the executor do not
degenerate to heap scans.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterator

from ..errors import IndexError_

__all__ = ["BTree", "HistogramBucket"]

_MIN_ORDER = 4

#: Keys collected per lock acquisition during a range scan.  Scans hold
#: the tree lock only while gathering a chunk and yield with it
#: released, so a long scan never starves the writer.
_SCAN_CHUNK = 256

#: Rebuild the cached histogram when the entry count drifts by more
#: than this fraction since it was built (keeps `histogram()` amortized
#: O(1) per insert while staying honest under churn).
_HIST_STALE_FRACTION = 0.2
_HIST_STALE_FLOOR = 64


@dataclass(frozen=True)
class HistogramBucket:
    """One equi-depth bucket over a numeric key range.

    ``lo``/``hi`` are inclusive key bounds; ``entries`` counts (key,
    entry) pairs and ``distinct`` counts distinct keys in the bucket.
    """

    lo: float
    hi: float
    entries: int
    distinct: int


@dataclass
class _Node:
    leaf: bool
    keys: list[Any] = field(default_factory=list)
    # leaf: values[i] is the set of entries for keys[i]; internal: children.
    values: list[Any] = field(default_factory=list)
    children: list["_Node"] = field(default_factory=list)
    next_leaf: "_Node | None" = None


class BTree:
    """B-tree mapping keys to sets of entry ids (e.g. TIDs).

    Parameters
    ----------
    order:
        Maximum number of keys per node; nodes split beyond this.
    """

    def __init__(self, order: int = 32):
        if order < _MIN_ORDER:
            raise IndexError_(f"order must be >= {_MIN_ORDER}")
        self._order = order
        self._root: _Node = _Node(leaf=True)
        self._count = 0  # number of (key, entry) pairs
        self._distinct = 0  # keys with a non-empty bucket
        # Widened on insert, left stale by deletes: good enough for the
        # cost model's range-selectivity interpolation.
        self._min_key: Any = None
        self._max_key: Any = None
        # (entry count at build time, buckets) — see `histogram`.
        self._hist_cache: tuple[int, tuple[HistogramBucket, ...] | None] \
            | None = None
        # Guards structural mutation and traversal.  Reentrant because
        # `histogram()` builds via `range_scan()` while already holding
        # it.  Scans release it between chunks (see `range_scan`), so
        # readers and the single writer interleave at chunk granularity.
        self._lock = threading.RLock()

    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    def __len__(self) -> int:
        return self._count

    # -- search ----------------------------------------------------------------

    def _find_leaf(self, key: Any) -> _Node:
        node = self._root
        while not node.leaf:
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        return node

    def search(self, key: Any) -> set[Hashable]:
        """All entries stored under *key* (empty set when absent)."""
        with self._lock:
            leaf = self._find_leaf(key)
            idx = bisect.bisect_left(leaf.keys, key)
            if idx < len(leaf.keys) and leaf.keys[idx] == key:
                return set(leaf.values[idx])
            return set()

    def range_scan(self, lo: Any = None, hi: Any = None,
                   include_lo: bool = True, include_hi: bool = True,
                   reverse: bool = False
                   ) -> Iterator[tuple[Any, set[Hashable]]]:
        """Yield ``(key, entries)`` for keys in the given range, ascending
        (or descending with *reverse*).

        ``None`` bounds are open-ended.  Direction-aware iteration is
        what lets an ``ORDER BY ... DESC`` ride the index instead of an
        explicit sort.

        The scan collects up to :data:`_SCAN_CHUNK` keys per lock
        acquisition and yields them with the lock released, re-seeking
        from the last key (exclusive).  Keys are never physically
        removed (deletes leave empty buckets), so the re-seek cannot
        skip pre-existing keys; keys inserted behind the cursor belong
        to transactions the caller's snapshot filters out anyway.
        """
        if reverse:
            cursor, cursor_inclusive = hi, include_hi
            while True:
                with self._lock:
                    chunk = self._collect_reversed(
                        lo, cursor, include_lo, cursor_inclusive,
                        _SCAN_CHUNK)
                yield from chunk
                if len(chunk) < _SCAN_CHUNK:
                    return
                cursor, cursor_inclusive = chunk[-1][0], False
        else:
            cursor, cursor_inclusive = lo, include_lo
            while True:
                with self._lock:
                    chunk = self._collect_forward(
                        cursor, hi, cursor_inclusive, include_hi,
                        _SCAN_CHUNK)
                yield from chunk
                if len(chunk) < _SCAN_CHUNK:
                    return
                cursor, cursor_inclusive = chunk[-1][0], False

    def _collect_forward(self, lo: Any, hi: Any, include_lo: bool,
                         include_hi: bool, limit: int
                         ) -> list[tuple[Any, set[Hashable]]]:
        """Up to *limit* ``(key, copied bucket)`` pairs, ascending.
        Caller holds the lock."""
        out: list[tuple[Any, set[Hashable]]] = []
        if lo is not None:
            leaf = self._find_leaf(lo)
            start = bisect.bisect_left(leaf.keys, lo)
        else:
            leaf = self._leftmost_leaf()
            start = 0
        node: _Node | None = leaf
        idx = start
        while node is not None:
            while idx < len(node.keys):
                key = node.keys[idx]
                if lo is not None:
                    if key < lo or (key == lo and not include_lo):
                        idx += 1
                        continue
                if hi is not None:
                    if key > hi or (key == hi and not include_hi):
                        return out
                out.append((key, set(node.values[idx])))
                if len(out) >= limit:
                    return out
                idx += 1
            node = node.next_leaf
            idx = 0
        return out

    def _collect_reversed(self, lo: Any, hi: Any,
                          include_lo: bool, include_hi: bool, limit: int
                          ) -> list[tuple[Any, set[Hashable]]]:
        """Up to *limit* pairs, descending.  Leaves only link forward,
        so the walk descends the tree right-to-left with an explicit
        stack instead of following ``next_leaf`` pointers.

        Subtrees entirely outside ``[lo, hi]`` are pruned during the
        descent (child ``i`` holds keys in ``[keys[i-1], keys[i])``),
        so a bounded walk seeks its start leaf instead of skipping
        every key above ``hi`` one by one.  Caller holds the lock.
        """
        out: list[tuple[Any, set[Hashable]]] = []
        stack: list[_Node] = [self._root]
        while stack:
            node = stack.pop()
            if not node.leaf:
                # Children pushed left-to-right pop right-to-left.
                for idx, child in enumerate(node.children):
                    if hi is not None and idx > 0 \
                            and node.keys[idx - 1] > hi:
                        continue  # subtree minimum already above hi
                    if lo is not None and idx < len(node.keys) \
                            and node.keys[idx] < lo:
                        continue  # subtree maximum already below lo
                    stack.append(child)
                continue
            for idx in range(len(node.keys) - 1, -1, -1):
                key = node.keys[idx]
                if hi is not None:
                    if key > hi or (key == hi and not include_hi):
                        continue
                if lo is not None:
                    if key < lo or (key == lo and not include_lo):
                        return out
                out.append((key, set(node.values[idx])))
                if len(out) >= limit:
                    return out
        return out

    def items_reversed(self) -> Iterator[tuple[Any, set[Hashable]]]:
        """All ``(key, entries)`` pairs in descending key order."""
        yield from self.range_scan(reverse=True)

    def _leftmost_leaf(self) -> _Node:
        node = self._root
        while not node.leaf:
            node = node.children[0]
        return node

    def keys(self) -> list[Any]:
        """All keys in ascending order."""
        return [key for key, _ in self.range_scan()]

    # -- insert ------------------------------------------------------------------

    def insert(self, key: Any, entry: Hashable) -> None:
        """Add *entry* under *key* (duplicates of the pair are idempotent)."""
        with self._lock:
            root = self._root
            if len(root.keys) > self._order:
                raise IndexError_(
                    "internal invariant violated: oversized root")
            inserted = self._insert_into(root, key, entry)
            if inserted:
                self._count += 1
            if len(root.keys) > self._order:
                new_root = _Node(leaf=False, children=[root])
                self._split_child(new_root, 0)
                self._root = new_root

    def _note_key(self, key: Any) -> None:
        """Track the key range and distinct-key count on insert."""
        self._distinct += 1
        if self._min_key is None or key < self._min_key:
            self._min_key = key
        if self._max_key is None or key > self._max_key:
            self._max_key = key

    def _insert_into(self, node: _Node, key: Any, entry: Hashable) -> bool:
        if node.leaf:
            idx = bisect.bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                bucket: set[Hashable] = node.values[idx]
                if entry in bucket:
                    return False
                if not bucket:
                    self._note_key(key)  # revived an emptied key
                bucket.add(entry)
                return True
            node.keys.insert(idx, key)
            node.values.insert(idx, {entry})
            self._note_key(key)
            return True
        idx = bisect.bisect_right(node.keys, key)
        child = node.children[idx]
        inserted = self._insert_into(child, key, entry)
        if len(child.keys) > self._order:
            self._split_child(node, idx)
        return inserted

    def _split_child(self, parent: _Node, idx: int) -> None:
        child = parent.children[idx]
        mid = len(child.keys) // 2
        if child.leaf:
            right = _Node(
                leaf=True,
                keys=child.keys[mid:],
                values=child.values[mid:],
                next_leaf=child.next_leaf,
            )
            child.keys = child.keys[:mid]
            child.values = child.values[:mid]
            child.next_leaf = right
            parent.keys.insert(idx, right.keys[0])
            parent.children.insert(idx + 1, right)
        else:
            right = _Node(
                leaf=False,
                keys=child.keys[mid + 1:],
                children=child.children[mid + 1:],
            )
            sep = child.keys[mid]
            child.keys = child.keys[:mid]
            child.children = child.children[: mid + 1]
            parent.keys.insert(idx, sep)
            parent.children.insert(idx + 1, right)

    # -- delete -------------------------------------------------------------------

    def delete(self, key: Any, entry: Hashable) -> None:
        """Remove *entry* from *key*'s bucket.

        A B-tree used by a no-overwrite engine rarely removes keys; when a
        bucket empties we leave the key with an empty set and filter on
        read — physical compaction is a vacuum concern, not a correctness
        one.  Raises when the pair is absent.
        """
        with self._lock:
            leaf = self._find_leaf(key)
            idx = bisect.bisect_left(leaf.keys, key)
            if idx >= len(leaf.keys) or leaf.keys[idx] != key:
                raise IndexError_(f"key {key!r} not in index")
            bucket: set[Hashable] = leaf.values[idx]
            if entry not in bucket:
                raise IndexError_(f"entry {entry!r} not under key {key!r}")
            bucket.discard(entry)
            self._count -= 1
            if not bucket:
                self._distinct -= 1

    # -- introspection ---------------------------------------------------------------

    def distinct_keys(self) -> int:
        """Number of keys with at least one live entry (O(1)).

        The selectivity denominator of the cost model: an equality probe
        on this index is expected to return ``len(self) / distinct_keys``
        entries.
        """
        return self._distinct

    def key_bounds(self) -> tuple[Any, Any] | None:
        """``(min_key, max_key)`` ever inserted, or None when empty.

        Maintained incrementally (O(1)); deletes may leave the bounds
        slightly wide, which only pads the cost model's range estimates.
        """
        with self._lock:
            if self._min_key is None:
                return None
            return (self._min_key, self._max_key)

    def histogram(self, max_buckets: int = 32
                  ) -> tuple[HistogramBucket, ...] | None:
        """Equi-depth histogram over the live keys, or None.

        Buckets hold roughly equal numbers of (key, entry) pairs, so a
        heavily skewed key distribution gets narrow buckets where the
        data is dense and wide ones where it is sparse — the standard
        fix for the uniform-distribution assumption in range
        selectivity.  Only numeric key domains are summarized (other key
        types return None and fall back to the uniform estimate).

        The result is cached and rebuilt lazily once the entry count has
        drifted enough to matter, keeping the amortized cost of a call
        O(1) for the cost model's purposes.  Check and rebuild happen
        under the tree lock so concurrent callers cannot interleave a
        stale-count check with another thread's rebuild.
        """
        with self._lock:
            if self._count == 0:
                return None
            if self._hist_cache is not None:
                built, cached = self._hist_cache
                drift = abs(self._count - built)
                if drift <= max(_HIST_STALE_FLOOR,
                                int(built * _HIST_STALE_FRACTION)):
                    return cached
            buckets = self._build_histogram(max_buckets)
            self._hist_cache = (self._count, buckets)
            return buckets

    def _build_histogram(self, max_buckets: int
                         ) -> tuple[HistogramBucket, ...] | None:
        """One leaf walk: pack ordered keys into equi-depth buckets."""
        target = max(1, self._count // max(1, max_buckets))
        buckets: list[HistogramBucket] = []
        lo: float | None = None
        hi = 0.0
        entries = 0
        distinct = 0
        for key, bucket in self.range_scan():
            if not bucket:
                continue
            if not isinstance(key, (int, float)) or isinstance(key, bool):
                return None
            value = float(key)
            if lo is None:
                lo = value
            hi = value
            entries += len(bucket)
            distinct += 1
            if entries >= target and len(buckets) < max_buckets - 1:
                buckets.append(HistogramBucket(lo=lo, hi=hi, entries=entries,
                                               distinct=distinct))
                lo = None
                entries = 0
                distinct = 0
        if entries and lo is not None:
            buckets.append(HistogramBucket(lo=lo, hi=hi, entries=entries,
                                           distinct=distinct))
        return tuple(buckets) if buckets else None

    def depth(self) -> int:
        """Tree height (1 for a lone leaf)."""
        depth = 1
        node = self._root
        while not node.leaf:
            node = node.children[0]
            depth += 1
        return depth
