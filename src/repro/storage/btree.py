"""An order-configurable B-tree index.

Keys are any totally ordered Python values (ints, floats, strings,
``AbsTime`` — anything the relevant column type yields).  Duplicate keys
are supported: each leaf entry holds the set of TIDs for that key.

This is a textbook in-memory B-tree: split-on-insert, borrow/merge on
delete.  It exists so the storage engine has a real index substrate to
benchmark (EXP-F) and so equality/range retrievals in the executor do not
degenerate to heap scans.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterator

from ..errors import IndexError_

__all__ = ["BTree"]

_MIN_ORDER = 4


@dataclass
class _Node:
    leaf: bool
    keys: list[Any] = field(default_factory=list)
    # leaf: values[i] is the set of entries for keys[i]; internal: children.
    values: list[Any] = field(default_factory=list)
    children: list["_Node"] = field(default_factory=list)
    next_leaf: "_Node | None" = None


class BTree:
    """B-tree mapping keys to sets of entry ids (e.g. TIDs).

    Parameters
    ----------
    order:
        Maximum number of keys per node; nodes split beyond this.
    """

    def __init__(self, order: int = 32):
        if order < _MIN_ORDER:
            raise IndexError_(f"order must be >= {_MIN_ORDER}")
        self._order = order
        self._root: _Node = _Node(leaf=True)
        self._count = 0  # number of (key, entry) pairs
        self._distinct = 0  # keys with a non-empty bucket
        # Widened on insert, left stale by deletes: good enough for the
        # cost model's range-selectivity interpolation.
        self._min_key: Any = None
        self._max_key: Any = None

    def __len__(self) -> int:
        return self._count

    # -- search ----------------------------------------------------------------

    def _find_leaf(self, key: Any) -> _Node:
        node = self._root
        while not node.leaf:
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        return node

    def search(self, key: Any) -> set[Hashable]:
        """All entries stored under *key* (empty set when absent)."""
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return set(leaf.values[idx])
        return set()

    def range_scan(self, lo: Any = None, hi: Any = None,
                   include_lo: bool = True, include_hi: bool = True
                   ) -> Iterator[tuple[Any, set[Hashable]]]:
        """Yield ``(key, entries)`` for keys in the given range, ascending.

        ``None`` bounds are open-ended.
        """
        if lo is not None:
            leaf = self._find_leaf(lo)
            start = bisect.bisect_left(leaf.keys, lo)
        else:
            leaf = self._leftmost_leaf()
            start = 0
        node: _Node | None = leaf
        idx = start
        while node is not None:
            while idx < len(node.keys):
                key = node.keys[idx]
                if lo is not None:
                    if key < lo or (key == lo and not include_lo):
                        idx += 1
                        continue
                if hi is not None:
                    if key > hi or (key == hi and not include_hi):
                        return
                yield key, set(node.values[idx])
                idx += 1
            node = node.next_leaf
            idx = 0

    def _leftmost_leaf(self) -> _Node:
        node = self._root
        while not node.leaf:
            node = node.children[0]
        return node

    def keys(self) -> list[Any]:
        """All keys in ascending order."""
        return [key for key, _ in self.range_scan()]

    # -- insert ------------------------------------------------------------------

    def insert(self, key: Any, entry: Hashable) -> None:
        """Add *entry* under *key* (duplicates of the pair are idempotent)."""
        root = self._root
        if len(root.keys) > self._order:
            raise IndexError_("internal invariant violated: oversized root")
        inserted = self._insert_into(root, key, entry)
        if inserted:
            self._count += 1
        if len(root.keys) > self._order:
            new_root = _Node(leaf=False, children=[root])
            self._split_child(new_root, 0)
            self._root = new_root

    def _note_key(self, key: Any) -> None:
        """Track the key range and distinct-key count on insert."""
        self._distinct += 1
        if self._min_key is None or key < self._min_key:
            self._min_key = key
        if self._max_key is None or key > self._max_key:
            self._max_key = key

    def _insert_into(self, node: _Node, key: Any, entry: Hashable) -> bool:
        if node.leaf:
            idx = bisect.bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                bucket: set[Hashable] = node.values[idx]
                if entry in bucket:
                    return False
                if not bucket:
                    self._note_key(key)  # revived an emptied key
                bucket.add(entry)
                return True
            node.keys.insert(idx, key)
            node.values.insert(idx, {entry})
            self._note_key(key)
            return True
        idx = bisect.bisect_right(node.keys, key)
        child = node.children[idx]
        inserted = self._insert_into(child, key, entry)
        if len(child.keys) > self._order:
            self._split_child(node, idx)
        return inserted

    def _split_child(self, parent: _Node, idx: int) -> None:
        child = parent.children[idx]
        mid = len(child.keys) // 2
        if child.leaf:
            right = _Node(
                leaf=True,
                keys=child.keys[mid:],
                values=child.values[mid:],
                next_leaf=child.next_leaf,
            )
            child.keys = child.keys[:mid]
            child.values = child.values[:mid]
            child.next_leaf = right
            parent.keys.insert(idx, right.keys[0])
            parent.children.insert(idx + 1, right)
        else:
            right = _Node(
                leaf=False,
                keys=child.keys[mid + 1:],
                children=child.children[mid + 1:],
            )
            sep = child.keys[mid]
            child.keys = child.keys[:mid]
            child.children = child.children[: mid + 1]
            parent.keys.insert(idx, sep)
            parent.children.insert(idx + 1, right)

    # -- delete -------------------------------------------------------------------

    def delete(self, key: Any, entry: Hashable) -> None:
        """Remove *entry* from *key*'s bucket.

        A B-tree used by a no-overwrite engine rarely removes keys; when a
        bucket empties we leave the key with an empty set and filter on
        read — physical compaction is a vacuum concern, not a correctness
        one.  Raises when the pair is absent.
        """
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            raise IndexError_(f"key {key!r} not in index")
        bucket: set[Hashable] = leaf.values[idx]
        if entry not in bucket:
            raise IndexError_(f"entry {entry!r} not under key {key!r}")
        bucket.discard(entry)
        self._count -= 1
        if not bucket:
            self._distinct -= 1

    # -- introspection ---------------------------------------------------------------

    def distinct_keys(self) -> int:
        """Number of keys with at least one live entry (O(1)).

        The selectivity denominator of the cost model: an equality probe
        on this index is expected to return ``len(self) / distinct_keys``
        entries.
        """
        return self._distinct

    def key_bounds(self) -> tuple[Any, Any] | None:
        """``(min_key, max_key)`` ever inserted, or None when empty.

        Maintained incrementally (O(1)); deletes may leave the bounds
        slightly wide, which only pads the cost model's range estimates.
        """
        if self._min_key is None:
            return None
        return (self._min_key, self._max_key)

    def depth(self) -> int:
        """Tree height (1 for a lone leaf)."""
        depth = 1
        node = self._root
        while not node.leaf:
            node = node.children[0]
            depth += 1
        return depth
