"""Write-ahead log with replay-based recovery.

Every state change in the storage engine appends a :class:`LogRecord`
before being applied.  Recovery replays the log into a fresh engine,
re-applying only work from committed transactions (aborted and unfinished
transactions are discarded, as in ARIES-lite redo-only recovery with
logical records).

Records may be kept purely in memory (the default, fine for tests and
benchmarks) or mirrored to a file with :meth:`WriteAheadLog.attach_file`,
in which case :func:`read_log_file` recovers them after a crash.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Any, Iterator

from ..errors import WALError

__all__ = ["LogKind", "LogRecord", "WriteAheadLog", "read_log_file"]


class LogKind(Enum):
    """Kinds of logical log records."""

    BEGIN = "begin"
    COMMIT = "commit"
    ABORT = "abort"
    CREATE_RELATION = "create_relation"
    INSERT = "insert"
    DELETE = "delete"
    CHECKPOINT = "checkpoint"


@dataclass(frozen=True)
class LogRecord:
    """One log entry.

    ``payload`` is kind-specific: relation name and column list for
    CREATE_RELATION; relation, TID and values for INSERT; relation and TID
    for DELETE.
    """

    lsn: int
    kind: LogKind
    xid: int
    payload: dict[str, Any] = field(default_factory=dict)


@dataclass
class WriteAheadLog:
    """Append-only logical log."""

    _records: list[LogRecord] = field(default_factory=list)
    _next_lsn: int = 1
    _file: Any = None  # open binary file handle when attached

    def __len__(self) -> int:
        return len(self._records)

    def append(self, kind: LogKind, xid: int,
               payload: dict[str, Any] | None = None) -> LogRecord:
        """Append a record; returns it with its assigned LSN."""
        record = LogRecord(
            lsn=self._next_lsn, kind=kind, xid=xid, payload=payload or {}
        )
        self._next_lsn += 1
        self._records.append(record)
        if self._file is not None:
            pickle.dump(record, self._file, protocol=pickle.HIGHEST_PROTOCOL)
            self._file.flush()
        return record

    def records(self) -> list[LogRecord]:
        """All records in LSN order."""
        return list(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def committed_xids(self) -> set[int]:
        """Transactions with a COMMIT record in the log."""
        return {rec.xid for rec in self._records if rec.kind is LogKind.COMMIT}

    def verify(self) -> None:
        """Check LSNs are dense and ascending — the log's only physical
        invariant."""
        for position, record in enumerate(self._records, start=1):
            if record.lsn != position:
                raise WALError(
                    f"log corrupt: record {position} has lsn {record.lsn}"
                )

    # -- pickling (kernel checkpoints) -------------------------------------------

    def __getstate__(self) -> dict:
        """Checkpoints drop the mirrored-file handle (not picklable);
        reattach after restore if mirroring should continue."""
        state = self.__dict__.copy()
        state["_file"] = None
        return state

    # -- optional file mirroring ------------------------------------------------

    def attach_file(self, path: str | Path) -> None:
        """Mirror every future append to *path* (binary, append mode)."""
        if self._file is not None:
            raise WALError("a log file is already attached")
        self._file = open(path, "ab")

    def close(self) -> None:
        """Close the mirrored file, if any."""
        if self._file is not None:
            self._file.close()
            self._file = None


def read_log_file(path: str | Path) -> list[LogRecord]:
    """Read every record from a mirrored log file."""
    records: list[LogRecord] = []
    with open(path, "rb") as handle:
        while True:
            try:
                record = pickle.load(handle)
            except EOFError:
                break
            except pickle.UnpicklingError as exc:
                raise WALError(f"log file {path} corrupt: {exc}") from exc
            if not isinstance(record, LogRecord):
                raise WALError(f"log file {path} holds a non-record object")
            records.append(record)
    return records
