"""Slotted pages and heap files.

A :class:`HeapFile` is an append-friendly sequence of :class:`SlottedPage`
objects.  Inserts go to the last page with room (first-fit over a small
free-space map); slots are never reused within a page so TIDs stay stable,
which the indexes rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..errors import PageFullError, TupleNotFoundError
from .tuples import TID, TupleVersion

__all__ = ["SlottedPage", "HeapFile", "DEFAULT_PAGE_BYTES"]

DEFAULT_PAGE_BYTES = 8192
_SLOT_OVERHEAD = 8  # rough per-slot bookkeeping charge


@dataclass
class SlottedPage:
    """A fixed-budget page holding tuple versions in slots."""

    page_no: int
    capacity: int = DEFAULT_PAGE_BYTES
    _slots: list[TupleVersion] = field(default_factory=list)
    _used: int = 0

    @property
    def free_space(self) -> int:
        """Bytes still available on this page."""
        return self.capacity - self._used

    @property
    def slot_count(self) -> int:
        """Number of slots ever allocated on this page."""
        return len(self._slots)

    def fits(self, version: TupleVersion) -> bool:
        """Whether *version* fits in the remaining budget."""
        return version.size + _SLOT_OVERHEAD <= self.free_space

    def insert(self, version: TupleVersion) -> int:
        """Place *version* in a fresh slot; returns the slot number."""
        if not self.fits(version):
            raise PageFullError(
                f"page {self.page_no}: need {version.size + _SLOT_OVERHEAD}, "
                f"have {self.free_space}"
            )
        self._slots.append(version)
        self._used += version.size + _SLOT_OVERHEAD
        return len(self._slots) - 1

    def get(self, slot: int) -> TupleVersion:
        """The version in *slot*."""
        if not 0 <= slot < len(self._slots):
            raise TupleNotFoundError(f"page {self.page_no} has no slot {slot}")
        return self._slots[slot]

    def __iter__(self) -> Iterator[tuple[int, TupleVersion]]:
        return iter(enumerate(self._slots))

    def versions(self) -> list[TupleVersion]:
        """The page's versions in slot order, as the stored list.

        Callers must not mutate it — this is the zero-copy surface the
        columnar batch scan walks (slot numbers are implicit, so no TID
        tuples are built per row).
        """
        return self._slots


@dataclass
class HeapFile:
    """A growable collection of slotted pages for one relation."""

    name: str
    page_bytes: int = DEFAULT_PAGE_BYTES
    _pages: list[SlottedPage] = field(default_factory=list)
    # Maintained on insert so `version_count` is O(1): the cost model
    # consults it on every access-path decision.
    _version_total: int = 0

    @property
    def page_count(self) -> int:
        """Number of allocated pages."""
        return len(self._pages)

    def _page_with_room(self, version: TupleVersion) -> SlottedPage:
        # First-fit from the tail: the common case is appending, and old
        # pages rarely regain space (no-overwrite storage never frees).
        for page in reversed(self._pages[-4:]):
            if page.fits(version):
                return page
        page = SlottedPage(page_no=len(self._pages), capacity=self.page_bytes)
        if not page.fits(version):
            # TOAST substitute: a tuple larger than a standard page gets
            # its own appropriately sized page, the way Postgres moves
            # large attribute values out of line.  TIDs stay uniform.
            page = SlottedPage(
                page_no=len(self._pages),
                capacity=version.size + _SLOT_OVERHEAD,
            )
        self._pages.append(page)
        return page

    def insert(self, version: TupleVersion) -> TID:
        """Append *version*, returning its stable TID."""
        page = self._page_with_room(version)
        slot = page.insert(version)
        self._version_total += 1
        return TID(page=page.page_no, slot=slot)

    def get(self, tid: TID) -> TupleVersion:
        """The version at *tid*."""
        if not 0 <= tid.page < len(self._pages):
            raise TupleNotFoundError(f"{self.name}: no page {tid.page}")
        return self._pages[tid.page].get(tid.slot)

    def scan(self) -> Iterator[tuple[TID, TupleVersion]]:
        """Full scan over every stored version, in TID order."""
        for page in self._pages:
            for slot, version in page:
                yield TID(page=page.page_no, slot=slot), version

    def iter_version_lists(self) -> Iterator[list[TupleVersion]]:
        """Per-page version lists in TID order (no TID construction).

        The columnar scan surface: :meth:`StorageEngine.value_batches`
        filters these lists for visibility page-at-a-time instead of
        paying a generator round-trip per row.
        """
        for page in self._pages:
            yield page.versions()

    def version_count(self) -> int:
        """Total stored versions, live and dead (O(1))."""
        return self._version_total
