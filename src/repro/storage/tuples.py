"""Tuple representation for the storage substrate.

The Gaea prototype stored its metadata and objects in POSTGRES; our
substitute keeps the two properties the paper relies on:

* **No-overwrite storage** — Postgres never updates in place; old tuple
  versions remain.  Every stored :class:`TupleVersion` carries ``xmin``
  (creating transaction) and ``xmax`` (deleting transaction, if any), and
  deletion just stamps ``xmax``.
* **ADT-valued attributes** — attribute values may be any registered
  primitive-class value (images included).

A :class:`TID` names a tuple version by (page number, slot number), like a
Postgres ctid.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any

from ..errors import StorageError

__all__ = ["TID", "TupleVersion", "estimate_size"]


@dataclass(frozen=True, order=True)
class TID:
    """Physical tuple identifier: (page number, slot within page)."""

    page: int
    slot: int

    def __str__(self) -> str:
        return f"({self.page},{self.slot})"


@dataclass
class TupleVersion:
    """One stored version of a tuple.

    ``values`` is a tuple of attribute values positionally matching the
    relation schema.  ``xmin``/``xmax`` implement no-overwrite visibility:
    the version exists for snapshots that see ``xmin`` committed and do
    not see ``xmax`` committed.
    """

    values: tuple[Any, ...]
    xmin: int
    xmax: int | None = None
    _size: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not isinstance(self.values, tuple):
            raise StorageError("tuple values must be a tuple")
        if self._size == 0:
            self._size = estimate_size(self.values)

    @property
    def size(self) -> int:
        """Approximate serialized size in bytes (for page accounting)."""
        return self._size

    @property
    def is_dead(self) -> bool:
        """True once a deleting transaction has been stamped."""
        return self.xmax is not None


def estimate_size(values: tuple[Any, ...]) -> int:
    """Approximate the serialized byte size of a value tuple.

    Pages budget space by this estimate.  Pickle gives a uniform measure
    over scalars, boxes, times and array-backed primitives without each
    type needing a bespoke sizer; the engine never stores the pickled form
    itself.
    """
    try:
        return len(pickle.dumps(values, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception as exc:  # unpicklable user type
        raise StorageError(f"cannot size tuple values: {exc}") from exc
