"""Storage substrate: the POSTGRES-substitute backend.

A no-overwrite (MVCC-lite) in-memory storage engine with slotted-page heap
files, a system catalog typed by the ADT layer, B-tree / grid / timeline
indexes, transactions with snapshot visibility, and a write-ahead log with
replay-based recovery.
"""

from .access import AccessPath, choose_access_path
from .btree import BTree
from .catalog import Catalog, Column, IndexDef, Schema
from .engine import Row, StorageEngine
from .heap import DEFAULT_PAGE_BYTES, HeapFile, SlottedPage
from .transactions import (
    Snapshot,
    Transaction,
    TransactionManager,
    TxStatus,
    visible,
)
from .tuples import TID, TupleVersion
from .wal import LogKind, LogRecord, WriteAheadLog, read_log_file

__all__ = [
    "AccessPath",
    "BTree",
    "Catalog",
    "Column",
    "IndexDef",
    "choose_access_path",
    "DEFAULT_PAGE_BYTES",
    "HeapFile",
    "LogKind",
    "LogRecord",
    "Row",
    "Schema",
    "SlottedPage",
    "Snapshot",
    "StorageEngine",
    "TID",
    "Transaction",
    "TransactionManager",
    "TupleVersion",
    "TxStatus",
    "WriteAheadLog",
    "read_log_file",
    "visible",
]
