"""GaeaQL command-line interface.

Run a script:              python -m repro script.gql
Interactive session:       python -m repro
Load a checkpoint first:   python -m repro --checkpoint db.ckpt [script.gql]
Save on exit:              python -m repro --save db.ckpt script.gql
Serve over the network:    python -m repro serve --port 7474 [--init setup.gql]

Statements end at a blank line in interactive mode (GaeaQL statements are
multi-line); ``\\q`` quits.  ``serve`` starts the wire-protocol server
(see ``docs/serving.md``); connect with ``repro.client.remote_connect``.
"""

from __future__ import annotations

import argparse
import sys

from .core.persistence import load_kernel, save_kernel
from .errors import GaeaError
from .query.client import Connection, connect
from .query.executor import QueryResult

__all__ = ["main"]


def _render(result: QueryResult) -> str:
    if result.kind == "objects":
        lines = [f"[{result.path}] {len(result.objects)} object(s)"]
        for obj in result.objects:
            summary = ", ".join(
                f"{key}={value}" for key, value in obj.values.items()
                if not hasattr(value, "data")
            )
            lines.append(f"  oid {obj.oid} ({obj.class_name}): {summary}")
        return "\n".join(lines)
    return result.message


def _execute(connection: Connection, source: str, out) -> bool:
    """Run *source* on a cursor; returns False when a statement failed."""
    cursor = connection.cursor()
    try:
        for result in cursor.run(source):
            print(_render(result), file=out)
    except GaeaError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=out)
        return False
    return True


def _repl(connection: Connection) -> None:
    print("Gaea — GaeaQL interactive session "
          "(blank line executes, \\q quits)")
    buffer: list[str] = []
    while True:
        prompt = "gaea> " if not buffer else "  ... "
        try:
            line = input(prompt)
        except EOFError:
            break
        if line.strip() == "\\q":
            break
        if line.strip() == "" and buffer:
            _execute(connection, "\n".join(buffer), sys.stdout)
            buffer = []
        elif line.strip():
            buffer.append(line)
    if buffer:
        _execute(connection, "\n".join(buffer), sys.stdout)


def _serve(argv: list[str]) -> int:
    """The ``serve`` subcommand: run the wire-protocol server."""
    from .server import GaeaServer

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve a Gaea kernel over the wire protocol",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=7474,
                        help="port to bind (default 7474; 0 = ephemeral)")
    parser.add_argument("--checkpoint", metavar="PATH",
                        help="load this kernel checkpoint before serving")
    parser.add_argument("--init", metavar="SCRIPT",
                        help="GaeaQL script to run before accepting clients")
    args = parser.parse_args(argv)

    kernel = None
    if args.checkpoint:
        try:
            kernel = load_kernel(args.checkpoint)
        except (GaeaError, OSError) as exc:
            print(f"error: cannot load {args.checkpoint}: {exc}",
                  file=sys.stderr)
            return 2
    server = GaeaServer(kernel=kernel, host=args.host, port=args.port)
    if args.init:
        try:
            with open(args.init) as handle:
                source = handle.read()
        except OSError as exc:
            print(f"error: cannot read {args.init}: {exc}", file=sys.stderr)
            return 2
        if not _execute(Connection(kernel=server.kernel), source, sys.stdout):
            return 1
    with server:
        print(f"gaea server listening on {server.host}:{server.port} "
              "(Ctrl-C stops)")
        try:
            while True:
                # The accept loop runs in a daemon thread; just sleep.
                import time
                time.sleep(3600)
        except KeyboardInterrupt:
            print("stopping")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return _serve(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="GaeaQL interpreter (Gaea scientific DBMS reproduction)",
    )
    parser.add_argument("script", nargs="?",
                        help="GaeaQL script to execute (default: REPL), "
                             "or 'serve' to run the wire server")
    parser.add_argument("--checkpoint", metavar="PATH",
                        help="load this kernel checkpoint before running")
    parser.add_argument("--save", metavar="PATH",
                        help="save a kernel checkpoint after running")
    args = parser.parse_args(argv)

    if args.checkpoint:
        try:
            kernel = load_kernel(args.checkpoint)
        except (GaeaError, OSError) as exc:
            print(f"error: cannot load {args.checkpoint}: {exc}",
                  file=sys.stderr)
            return 2
        connection = connect(kernel=kernel)
    else:
        connection = connect()

    ok = True
    if args.script:
        try:
            with open(args.script) as handle:
                source = handle.read()
        except OSError as exc:
            print(f"error: cannot read {args.script}: {exc}",
                  file=sys.stderr)
            return 2
        ok = _execute(connection, source, sys.stdout)
    else:
        _repl(connection)

    if args.save:
        save_kernel(connection.kernel, args.save)
        print(f"checkpoint saved to {args.save}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
