#!/usr/bin/env python
"""Lint the vectorized operator hot loops for per-row dict building.

The whole point of ``run_batches`` is that columns flow as NumPy
arrays; the classic performance regression is someone "fixing" a batch
operator by rebuilding a Python dict per row inside the batch loop,
which silently reverts the operator to row-at-a-time speed while the
EXPLAIN output still says ``[vectorized]``.

This check parses the target modules and fails when a ``run_batches``
body constructs a populated dict (literal with keys, ``dict(...)``
with arguments, or a dict comprehension) inside loop context — a
``for``/``while`` statement or a comprehension, i.e. anything executed
once per element.  Empty ``{}`` accumulators and batch-level dicts
built outside loops are the intended idiom and stay legal.

Usage::

    python tools/lint_vectorized.py [path ...]

Defaults to ``src/repro/query/operators.py``.  Exits non-zero and
prints one ``file:line: message`` per violation.
"""

from __future__ import annotations

import ast
import pathlib
import sys

DEFAULT_TARGETS = ("src/repro/query/operators.py",)

_LOOPS = (ast.For, ast.While, ast.AsyncFor,
          ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)


def _dict_violation(node: ast.AST) -> str | None:
    """A message if *node* builds a populated dict, else None."""
    if isinstance(node, ast.Dict) and node.keys:
        return "dict literal built per iteration"
    if isinstance(node, ast.DictComp):
        return "dict comprehension built per iteration"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id == "dict" and (node.args or node.keywords):
        return "dict(...) built per iteration"
    return None


def _scan_loop_context(node: ast.AST, violations: list[tuple[int, str]],
                       in_loop: bool) -> None:
    """Walk *node*, recording populated-dict construction under loops."""
    for child in ast.iter_child_nodes(node):
        child_in_loop = in_loop or isinstance(child, _LOOPS)
        if child_in_loop:
            message = _dict_violation(child)
            # A DictComp is itself loop context, but only flag it when
            # it executes repeatedly (i.e. it sits under another loop).
            if message is not None and (in_loop
                                        or not isinstance(child,
                                                          ast.DictComp)):
                violations.append((child.lineno, message))
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested helpers get their own fresh context.
            _scan_loop_context(child, violations, in_loop=False)
        else:
            _scan_loop_context(child, violations, child_in_loop)


def check_source(source: str, filename: str = "<string>"
                 ) -> list[tuple[int, str]]:
    """``(line, message)`` violations for every run_batches in *source*."""
    tree = ast.parse(source, filename=filename)
    violations: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node.name == "run_batches":
            _scan_loop_context(node, violations, in_loop=False)
    return sorted(violations)


def check_paths(paths: list[str]) -> list[str]:
    """Formatted ``file:line: message`` violations across *paths*."""
    out = []
    for path in paths:
        text = pathlib.Path(path).read_text()
        for line, message in check_source(text, filename=path):
            out.append(f"{path}:{line}: run_batches {message} "
                       "(per-row dict building defeats vectorization)")
    return out


def main(argv: list[str]) -> int:
    targets = argv or list(DEFAULT_TARGETS)
    problems = check_paths(targets)
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        return 1
    print(f"lint_vectorized: {len(targets)} file(s) clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
