"""Extensions beyond the paper's prototype: the future-work items built.

1. **Interactive processes** (paper §4.3 names this a limitation):
   supervised classification needs the scientist to digitize training
   signatures mid-derivation.  Gaea processes can now declare
   *interaction points*; answers are recorded in the task, so even
   interactive derivations replay without re-prompting.
2. **Spatial interpolation** (paper §2.1.5: "interpolation (temporal or
   spatial)"): when no stored scene covers a query region, overlapping
   neighbours are mosaicked into a new object.
3. **Kernel checkpointing**: the whole database (objects + derivation
   metadata) saves to one file and restores fully operational.

Run:  python examples/interactive_and_mosaic.py
"""

import tempfile

import numpy as np

from repro.adt import Image, Matrix
from repro.core import (
    AnyOf,
    Apply,
    Argument,
    AttrRef,
    NonPrimitiveClass,
    ParamRef,
    Process,
    load_kernel,
    open_kernel,
    save_kernel,
)
from repro.errors import InteractionRequiredError
from repro.figures import AFRICA
from repro.gis import SceneGenerator, register_gis_operators
from repro.spatial import Box
from repro.temporal import AbsTime


def interactive_supervised_classification(kernel) -> None:
    print("--- interactive process: supervised classification ---")
    kernel.derivations.define_class(NonPrimitiveClass(
        name="tm_scene",
        attributes=(("band", "char16"), ("data", "image"),
                    ("spatialextent", "box"), ("timestamp", "abstime")),
    ))
    kernel.derivations.define_class(NonPrimitiveClass(
        name="supervised_cover",
        attributes=(("data", "image"), ("spatialextent", "box"),
                    ("timestamp", "abstime")),
        derived_by="supervised-classification",
    ))
    kernel.derivations.define_process(Process(
        name="supervised-classification",
        output_class="supervised_cover",
        arguments=(Argument(name="bands", class_name="tm_scene",
                            is_set=True, min_cardinality=2),),
        interactions={"signatures": "digitize training-class signatures"},
        mappings={
            "data": Apply("superclassify",
                          (Apply("composite", (AttrRef("bands", "data"),)),
                           ParamRef("signatures"))),
            "spatialextent": AnyOf(AttrRef("bands", "spatialextent")),
            "timestamp": AnyOf(AttrRef("bands", "timestamp")),
        },
    ))

    generator = SceneGenerator(seed=8, nrow=32, ncol=32)
    bands = [
        kernel.store.store("tm_scene", {
            "band": name,
            "data": generator.band("africa", 1986, 7, name),
            "spatialextent": AFRICA,
            "timestamp": AbsTime.from_ymd(1986, 7, 1),
        })
        for name in ("red", "nir")
    ]

    try:
        kernel.derivations.execute_process(
            "supervised-classification", {"bands": bands})
    except InteractionRequiredError as exc:
        print(f"without a scientist: {exc}")

    def scientist(name, prompt):
        print(f"scientist answers {name!r} ({prompt})")
        # Two training classes: dark (water-ish) and bright-NIR (veg-ish).
        return Matrix.from_array([[0.05, 0.03], [0.06, 0.45]])

    result = kernel.derivations.execute_process(
        "supervised-classification", {"bands": bands},
        interaction_handler=scientist,
    )
    labels = result.output["data"].data
    print(f"classified: {float(np.mean(labels == 1)):.2%} of pixels in the "
          "vegetated class")

    replay = kernel.derivations.reproduce_task(result.task.task_id)
    print("replayed from the task record (no prompting): identical =",
          replay.output["data"] == result.output["data"])


def spatial_mosaic(kernel) -> None:
    print("--- spatial interpolation: mosaicking partial scenes ---")
    kernel.derivations.define_class(NonPrimitiveClass(
        name="elevation",
        attributes=(("area", "char16"), ("data", "image"),
                    ("spatialextent", "box"), ("timestamp", "abstime")),
    ))
    west = Box(0.0, 0.0, 10.0, 10.0)
    east = Box(8.0, 0.0, 18.0, 10.0)
    for name, box, level in (("west", west, 100.0), ("east", east, 300.0)):
        kernel.store.store("elevation", {
            "area": "ridge",
            "data": Image.from_array(np.full((16, 16), level), "float4"),
            "spatialextent": box,
            "timestamp": AbsTime.from_ymd(1986, 1, 1),
        })
    query = Box(4.0, 2.0, 14.0, 8.0)  # straddles both tiles
    result = kernel.planner.retrieve("elevation", spatial=query,
                                     spatial_coverage=True)
    obj = result.objects[0]
    print(f"path={result.path}; new object covers {obj['spatialextent']}")
    data = obj["data"].data
    print(f"west edge ~{float(data[:, 0].mean()):.0f} m, "
          f"east edge ~{float(data[:, -1].mean()):.0f} m, "
          f"overlap zone averaged")


def checkpoint_roundtrip(kernel) -> None:
    print("--- kernel checkpointing ---")
    with tempfile.NamedTemporaryFile(suffix=".ckpt", delete=False) as handle:
        path = handle.name
    written = save_kernel(kernel, path)
    restored = load_kernel(path)
    print(f"checkpoint: {written / 1024:.0f} KiB; restored kernel has "
          f"{len(restored.classes.names())} classes, "
          f"{len(restored.derivations.tasks)} recorded tasks")
    # The restored kernel still answers queries.
    again = restored.planner.retrieve(
        "elevation", spatial=Box(5.0, 3.0, 13.0, 7.0),
        spatial_coverage=True,
    )
    print(f"restored kernel query path: {again.path}")


def main() -> None:
    kernel = open_kernel(universe=AFRICA)
    register_gis_operators(kernel.operators)
    interactive_supervised_classification(kernel)
    print()
    spatial_mosaic(kernel)
    print()
    checkpoint_roundtrip(kernel)


if __name__ == "__main__":
    main()
