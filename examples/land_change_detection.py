"""Land-change detection: compound processes and reproducibility (Fig. 5).

Builds the Figure-2 catalog, defines Figure 5's compound process
``land-change-detection`` (classify 1988 scenes, classify 1989 scenes,
compare the label rasters), executes it, and then demonstrates the two
§4 claims head-to-head against the file-based baseline:

* Gaea reproduces the experiment from its task log alone;
* the IDRISI-style baseline can only reproduce when the scientist kept a
  transcript — and silently fails to explain data in a fresh directory.

Run:  python examples/land_change_detection.py
"""

import tempfile

import numpy as np

from repro.baseline import FileGIS
from repro.figures import build_figure2, build_figure5, populate_scenes
from repro.gis import change_fraction, composite, label_changes, unsuperclassify


def run_in_gaea() -> None:
    print("=== Gaea ===")
    catalog = build_figure2()
    kernel = catalog.kernel
    populate_scenes(catalog, seed=5, size=48, years=(1988, 1989))
    compound = build_figure5(catalog)

    expansion = kernel.derivations.compounds.get(compound).expand(
        kernel.derivations.processes, kernel.derivations.compounds
    )
    print("compound expands to primitive steps:",
          [step.process for step in expansion])

    scenes = kernel.store.objects("landsat_tm_rectified")
    early = [o for o in scenes if o["timestamp"].year == 1988]
    late = [o for o in scenes if o["timestamp"].year == 1989]
    result = kernel.derivations.execute_compound(
        compound, {"tm_early": early, "tm_late": late}
    )
    changed = float(np.mean(result.output["data"].data != 0))
    print(f"land-cover change fraction 1988->1989: {changed:.3f}")

    lineage = kernel.provenance.lineage(result.output.oid)
    print(lineage.describe())

    # Reproduce the final comparison task purely from metadata.
    rerun = kernel.derivations.reproduce_task(lineage.steps[-1].task_id)
    identical = rerun.output["data"] == result.output["data"]
    print(f"reproduced from the task log; outputs identical: {identical}")


def run_in_file_baseline() -> None:
    print("=== IDRISI-style file baseline ===")
    from repro.gis import SceneGenerator

    generator = SceneGenerator(seed=5, nrow=48, ncol=48)
    with tempfile.TemporaryDirectory() as workdir:
        gis = FileGIS(workdir=workdir)
        gis.register_command(
            "cluster",
            lambda *bands_and_k: unsuperclassify(
                composite(list(bands_and_k[:-1])), int(bands_and_k[-1])
            ),
        )
        gis.register_command("crosstab", label_changes)

        for year in (1988, 1989):
            for band in ("red", "nir", "green"):
                gis.write_raster(
                    f"tm{year}_{band}", generator.band("africa", year, 7, band)
                )
        gis.run("cluster", ["tm1988_red", "tm1988_nir", "tm1988_green"],
                "cover1988", 12)
        gis.run("cluster", ["tm1989_red", "tm1989_nir", "tm1989_green"],
                "cover1989", 12)
        changes = gis.run("crosstab", ["cover1989", "cover1988"],
                          "changes8889")
        print(f"change fraction: {float(np.mean(changes.data != 0)):.3f}")

        print("metadata available for 'changes8889':",
              gis.metadata_of("changes8889"))
        print("derivation (transcript grep):",
              gis.derivation_of("changes8889"))

        # A colleague receiving only the files has no transcript:
        colleague = FileGIS(workdir=workdir, keep_transcript=False)
        try:
            colleague.reproduce("changes8889")
        except Exception as exc:
            print(f"colleague cannot reproduce: {exc}")


def main() -> None:
    run_in_gaea()
    print()
    run_in_file_baseline()


if __name__ == "__main__":
    main()
