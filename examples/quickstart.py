"""Quickstart: the v2 connect/cursor API driving the paper's core loop.

1. connect to a fresh kernel (``repro.connect``);
2. define a base class (rectified Landsat TM bands) and a derived class
   (land cover) with its derivation process — Figure 3's P20;
3. load synthetic scenes;
4. prepare a parameterized retrieval once, then execute it with
   different bind values: Gaea notices nothing is stored, plans the
   derivation over its Petri net, runs the process, records the task;
5. execute it again: now it is a plain retrieval, and the plan came
   straight from the connection's plan cache (no re-parse/re-plan);
6. stream the result through the cursor and inspect its lineage.

Migration note: the legacy ``open_session().execute(source)`` API still
works, but re-parses and re-plans every call.  ``repro.connect()`` gives
the same GaeaQL plus ``?``/``:name`` bind parameters, a plan cache,
streaming fetches (``fetchone``/``fetchmany``/iteration) and
transactions; an existing session exposes ``session.connection()`` to
migrate incrementally.

Run:  python examples/quickstart.py
"""

import repro
from repro.figures import AFRICA
from repro.gis import SceneGenerator
from repro.temporal import AbsTime


def main() -> None:
    conn = repro.connect(universe=AFRICA)
    cur = conn.cursor()

    cur.execute("""
    DEFINE CLASS landsat_tm (
      ATTRIBUTES: area = char16; band = char16; data = image;
      SPATIAL EXTENT: spatialextent = box;
      TEMPORAL EXTENT: timestamp = abstime;
    )
    DEFINE CLASS land_cover (
      ATTRIBUTES: area = char16; numclass = int4; data = image;
      SPATIAL EXTENT: spatialextent = box;
      TEMPORAL EXTENT: timestamp = abstime;
      DERIVED BY: unsupervised-classification
    )
    DEFINE PROCESS unsupervised-classification
    OUTPUT land_cover
    ARGUMENT ( SETOF landsat_tm bands >= 3 )
    TEMPLATE {
      ASSERTIONS:
        card(bands) = 3;
        common(bands.spatialextent);
        common(bands.timestamp);
      MAPPINGS:
        land_cover.data = unsuperclassify(composite(bands), 12);
        land_cover.numclass = 12;
        land_cover.area = ANYOF bands.area;
        land_cover.spatialextent = ANYOF bands.spatialextent;
        land_cover.timestamp = ANYOF bands.timestamp;
    }
    """)

    generator = SceneGenerator(seed=42, nrow=48, ncol=48)
    stamp = AbsTime.from_ymd(1986, 1, 15)
    for band, image in zip(("red", "nir", "green"),
                           generator.scene("africa", 1986, 1)):
        conn.kernel.store.store("landsat_tm", {
            "area": "africa", "band": band, "data": image,
            "spatialextent": AFRICA, "timestamp": stamp,
        })
    print("loaded 3 rectified TM bands for Africa, 1986-01-15")

    cover_at = conn.prepare(
        "SELECT FROM land_cover WHERE timestamp = ?"
    )

    [explained] = conn.execute(
        "EXPLAIN SELECT FROM land_cover WHERE timestamp = ?",
        ["1986-01-15"],
    )
    print("optimizer says:", explained.message)

    cur.execute(cover_at, ["1986-01-15"])
    cover = cur.fetchone()
    print(f"derived on demand; numclass={cover['numclass']}, "
          f"labels in [{cover['data'].data.min()}, "
          f"{cover['data'].data.max()}]")

    cur.execute(cover_at, ["1986-01-15"])
    cur.fetchall()
    print(f"second execution reused the cached plan "
          f"(hits={conn.cache_hits}, misses={conn.cache_misses}) "
          "and retrieved the materialized object")

    [lineage] = conn.execute(f"LINEAGE {cover.oid}")
    print(lineage.message)


if __name__ == "__main__":
    main()
