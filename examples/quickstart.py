"""Quickstart: define a class and a process, then let Gaea derive data.

Walks the paper's core loop in ~60 lines:

1. open a session (kernel + GaeaQL interpreter);
2. define a base class (rectified Landsat TM bands) and a derived class
   (land cover) with its derivation process — Figure 3's P20;
3. load synthetic scenes;
4. query the *derived* class: Gaea notices nothing is stored, plans the
   derivation over its Petri net, runs the process, records the task;
5. query again: now it is a plain retrieval;
6. inspect the lineage of the derived object.

Run:  python examples/quickstart.py
"""

from repro import open_session
from repro.figures import AFRICA
from repro.gis import SceneGenerator
from repro.temporal import AbsTime


def main() -> None:
    session = open_session(universe=AFRICA)

    session.execute("""
    DEFINE CLASS landsat_tm (
      ATTRIBUTES: area = char16; band = char16; data = image;
      SPATIAL EXTENT: spatialextent = box;
      TEMPORAL EXTENT: timestamp = abstime;
    )
    DEFINE CLASS land_cover (
      ATTRIBUTES: area = char16; numclass = int4; data = image;
      SPATIAL EXTENT: spatialextent = box;
      TEMPORAL EXTENT: timestamp = abstime;
      DERIVED BY: unsupervised-classification
    )
    DEFINE PROCESS unsupervised-classification
    OUTPUT land_cover
    ARGUMENT ( SETOF landsat_tm bands >= 3 )
    TEMPLATE {
      ASSERTIONS:
        card(bands) = 3;
        common(bands.spatialextent);
        common(bands.timestamp);
      MAPPINGS:
        land_cover.data = unsuperclassify(composite(bands), 12);
        land_cover.numclass = 12;
        land_cover.area = ANYOF bands.area;
        land_cover.spatialextent = ANYOF bands.spatialextent;
        land_cover.timestamp = ANYOF bands.timestamp;
    }
    """)

    generator = SceneGenerator(seed=42, nrow=48, ncol=48)
    stamp = AbsTime.from_ymd(1986, 1, 15)
    for band, image in zip(("red", "nir", "green"),
                           generator.scene("africa", 1986, 1)):
        session.kernel.store.store("landsat_tm", {
            "area": "africa", "band": band, "data": image,
            "spatialextent": AFRICA, "timestamp": stamp,
        })
    print("loaded 3 rectified TM bands for Africa, 1986-01-15")

    explained = session.execute_one(
        "EXPLAIN SELECT FROM land_cover WHERE timestamp = '1986-01-15'"
    )
    print("optimizer says:", explained.message)

    result = session.execute_one(
        "SELECT FROM land_cover WHERE timestamp = '1986-01-15'"
    )
    cover = result.objects[0]
    print(f"retrieved via path={result.path!r}; "
          f"numclass={cover['numclass']}, "
          f"labels in [{cover['data'].data.min()}, {cover['data'].data.max()}]")

    again = session.execute_one(
        "SELECT FROM land_cover WHERE timestamp = '1986-01-15'"
    )
    print(f"second query path={again.path!r} (now materialized)")

    lineage = session.execute_one(f"LINEAGE {cover.oid}")
    print(lineage.message)


if __name__ == "__main__":
    main()
