"""Desert classification: concepts with imprecise definitions (paper §2.1.1).

"Can we define what a DESERT or DESERTIC REGION is?"  The concept means
the same thing to every user at the highest abstraction, but derivations
differ: rainfall under 250 mm/year, rainfall under 200 mm/year (another
scientist's cutoff — a *different process*, §2.1.2), or a De Martonne
aridity-index criterion.  Each derivation is its own class; the concept
HOT_TRADE_WIND_DESERT is the set of those classes inside the DESERT
specialization hierarchy.

This example builds the Figure-2 desert sub-catalog, derives every
desert variant through concept-level queries, and reports how much the
definitions disagree — the quantity that makes derivation metadata
indispensable.

Run:  python examples/desert_classification.py
"""

import numpy as np

from repro.figures import build_figure2, populate_scenes


def main() -> None:
    catalog = build_figure2()
    session = catalog.session
    kernel = catalog.kernel
    populate_scenes(catalog, seed=23, size=48, years=(1988,))
    print("catalog loaded:", len(catalog.class_names), "classes,",
          len(catalog.process_names), "processes,",
          len(catalog.concept_names), "concepts")

    # Browse the specialization hierarchy (a DAG, paper footnote 4).
    print("DESERT specializations:",
          sorted(kernel.concepts.children("desert")))
    print("hot trade-wind desert maps to classes:",
          sorted(kernel.concepts.classes_of("hot_trade_wind_desert")))

    # A concept-level query covers every member derivation (§2.1.5).
    results = session.execute("SELECT FROM hot_trade_wind_desert")
    masks = {}
    for result in results:
        obj = result.objects[0]
        fraction = float(np.mean(obj["data"].data))
        masks[result.details["class"]] = obj
        print(f"  {result.details['class']:22s} path={result.path:8s} "
              f"desert fraction {fraction:.3f}")

    # How much do the definitions disagree?  Pairwise mask agreement.
    names = sorted(masks)
    print("pairwise agreement (fraction of pixels with the same verdict):")
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            same = float(np.mean(
                (masks[a]["data"].data != 0) == (masks[b]["data"].data != 0)
            ))
            print(f"  {a:22s} vs {b:22s}: {same:.3f}")

    # The 250 mm and 200 mm classifications come from the same method
    # with different parameters — and are therefore different processes.
    p2 = kernel.derivations.processes.get("P2")
    p3 = kernel.derivations.processes.get("P3")
    print(f"P2 parameters {p2.parameters} != P3 parameters {p3.parameters}"
          f" -> distinct processes: {p2.name != p3.name}")

    # Record the study as an experiment and reproduce it.
    experiment = kernel.experiments.begin(
        name="desert-definitions-1988",
        investigator="example",
        concepts={"hot_trade_wind_desert"},
        parameters={"year": 1988},
    )
    for obj in masks.values():
        producer = kernel.derivations.tasks.producer_of(obj.oid)
        if producer is not None:
            experiment.add_task(producer.task_id)
    rerun = kernel.experiments.reproduce(experiment.experiment_id)
    print(f"experiment reproduced: {len(rerun)} tasks re-executed, "
          f"outputs identical: "
          f"{all(r.output['data'] == masks[r.output.class_name]['data'] for r in rerun)}")


if __name__ == "__main__":
    main()
