"""Vegetation change in Africa, 1988 vs 1989 — the paper's §1 scenario.

Two scientists study the same question with different derivations:

* scientist A subtracts the 1988 NDVI from the 1989 NDVI;
* scientist B divides the 1989 NDVI by the 1988 NDVI.

"If only the resultant images are stored (as in common GIS such as IDRISI
and GRASS), there is no way to share and compare the produced data unless
the derivation procedures are known to both scientists."  In Gaea the two
results are objects of *different classes*, each defined by its process,
and the provenance browser answers exactly the sharing question.

The example then reruns Eastman's experiment: vegetation change by PCA
vs. standardized PCA over the NDVI series (paper §2.1.3, Figure 4), and
shows the derivation comparison for those too.

Run:  python examples/vegetation_change.py
"""

import numpy as np

from repro import open_session
from repro.figures import AFRICA
from repro.gis import SceneGenerator, ndvi
from repro.temporal import AbsTime


def load_ndvi_series(session, years=(1988, 1989)) -> dict[int, object]:
    """Compute and store one NDVI object per year from synthetic AVHRR."""
    generator = SceneGenerator(seed=11, nrow=48, ncol=48)
    stored = {}
    for year in years:
        red = generator.band("africa", year, 7, "red")
        nir = generator.band("africa", year, 7, "nir")
        obj = session.kernel.store.store("ndvi", {
            "area": "africa",
            "data": ndvi(red, nir),
            "spatialextent": AFRICA,
            "timestamp": AbsTime.from_ymd(year, 7, 1),
        })
        stored[year] = obj
    return stored


def main() -> None:
    session = open_session(universe=AFRICA)
    session.execute("""
    DEFINE CLASS ndvi (
      ATTRIBUTES: area = char16; data = image;
      SPATIAL EXTENT: spatialextent = box;
      TEMPORAL EXTENT: timestamp = abstime;
    )
    DEFINE CLASS veg_change_subtract (
      ATTRIBUTES: area = char16; data = image;
      SPATIAL EXTENT: spatialextent = box;
      TEMPORAL EXTENT: timestamp = abstime;
      DERIVED BY: change-by-subtraction
    )
    DEFINE CLASS veg_change_divide (
      ATTRIBUTES: area = char16; data = image;
      SPATIAL EXTENT: spatialextent = box;
      TEMPORAL EXTENT: timestamp = abstime;
      DERIVED BY: change-by-division
    )
    DEFINE PROCESS change-by-subtraction
    OUTPUT veg_change_subtract
    ARGUMENT ( ndvi later, ndvi earlier )
    TEMPLATE {
      ASSERTIONS:
        img_size_eq(later.data, earlier.data);
      MAPPINGS:
        veg_change_subtract.data = img_subtract(later.data, earlier.data);
        veg_change_subtract.area = later.area;
        veg_change_subtract.spatialextent = later.spatialextent;
        veg_change_subtract.timestamp = later.timestamp;
    }
    DEFINE PROCESS change-by-division
    OUTPUT veg_change_divide
    ARGUMENT ( ndvi later, ndvi earlier )
    TEMPLATE {
      ASSERTIONS:
        img_size_eq(later.data, earlier.data);
      MAPPINGS:
        veg_change_divide.data = ndvi_ratio(later.data, earlier.data);
        veg_change_divide.area = later.area;
        veg_change_divide.spatialextent = later.spatialextent;
        veg_change_divide.timestamp = later.timestamp;
    }
    """)

    stored = load_ndvi_series(session)
    print("stored NDVI snapshots:",
          {year: obj.oid for year, obj in stored.items()})

    kernel = session.kernel
    later, earlier = stored[1989], stored[1988]
    res_a = kernel.derivations.execute_process(
        "change-by-subtraction", {"later": later, "earlier": earlier}
    )
    res_b = kernel.derivations.execute_process(
        "change-by-division", {"later": later, "earlier": earlier}
    )
    print(f"scientist A produced object {res_a.output.oid} "
          f"(mean change {float(np.mean(res_a.output['data'].data)):+.4f})")
    print(f"scientist B produced object {res_b.output.oid} "
          f"(mean ratio  {float(np.mean(res_b.output['data'].data)):.4f})")

    comparison = kernel.provenance.compare_derivations(
        res_a.output.oid, res_b.output.oid
    )
    print("same procedure?", comparison["identical_procedure"])
    print("processes:", comparison["processes_a"], "vs",
          comparison["processes_b"])
    print("shared base inputs:", comparison["shared_base_inputs"])

    # --- Eastman's experiment: PCA vs SPCA over the NDVI series ----------
    session.execute("""
    DEFINE CLASS veg_change_pca (
      ATTRIBUTES: area = char16; data = image;
      SPATIAL EXTENT: spatialextent = box;
      TEMPORAL EXTENT: timestamp = abstime;
      DERIVED BY: pca-change
    )
    DEFINE CLASS veg_change_spca (
      ATTRIBUTES: area = char16; data = image;
      SPATIAL EXTENT: spatialextent = box;
      TEMPORAL EXTENT: timestamp = abstime;
      DERIVED BY: spca-change
    )
    DEFINE PROCESS pca-change
    OUTPUT veg_change_pca
    ARGUMENT ( SETOF ndvi series >= 2 )
    TEMPLATE {
      ASSERTIONS:
        common(series.spatialextent);
      MAPPINGS:
        veg_change_pca.data = pca_change(series);
        veg_change_pca.area = ANYOF series.area;
        veg_change_pca.spatialextent = ANYOF series.spatialextent;
        veg_change_pca.timestamp = ANYOF series.timestamp;
    }
    DEFINE PROCESS spca-change
    OUTPUT veg_change_spca
    ARGUMENT ( SETOF ndvi series >= 2 )
    TEMPLATE {
      ASSERTIONS:
        common(series.spatialextent);
      MAPPINGS:
        veg_change_spca.data = spca_change(series);
        veg_change_spca.area = ANYOF series.area;
        veg_change_spca.spatialextent = ANYOF series.spatialextent;
        veg_change_spca.timestamp = ANYOF series.timestamp;
    }
    """)
    pca_result = session.execute_one("SELECT FROM veg_change_pca")
    spca_result = session.execute_one("SELECT FROM veg_change_spca")
    img_pca = pca_result.objects[0]["data"].data
    img_spca = spca_result.objects[0]["data"].data
    correlation = float(np.corrcoef(img_pca.ravel(), img_spca.ravel())[0, 1])
    print(f"PCA path={pca_result.path}, SPCA path={spca_result.path}; "
          f"component correlation {correlation:+.3f}")
    print("Gaea can reproduce Eastman's comparison because both derivation "
          "procedures are captured; IDRISI could not (paper §2.1.3).")


if __name__ == "__main__":
    main()
