"""Setup shim for legacy editable installs (offline environment lacks the
``wheel`` package, so PEP 660 editable wheels cannot be built)."""

from setuptools import setup

setup()
