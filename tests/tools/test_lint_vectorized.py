"""The vectorization lint catches per-row dict building regressions."""

import pathlib
import subprocess
import sys
import textwrap

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO / "tools"))

import lint_vectorized  # noqa: E402

OPERATORS = REPO / "src" / "repro" / "query" / "operators.py"


def test_current_operators_are_clean():
    assert lint_vectorized.check_paths([str(OPERATORS)]) == []


def test_flags_per_row_dict_literal_in_batch_loop():
    bad = textwrap.dedent("""
        class Op:
            def run_batches(self):
                for batch in self.child.run_batches():
                    rows = []
                    for i in range(batch.length):
                        rows.append({"x": batch.column("x")[i]})
                    yield rows
    """)
    violations = lint_vectorized.check_source(bad)
    assert violations
    assert any("dict literal" in message for _, message in violations)


def test_flags_per_row_dict_comprehension():
    bad = textwrap.dedent("""
        class Op:
            def run_batches(self):
                for batch in self.child.run_batches():
                    yield [{k: row[k] for k in row} for row in batch.to_rows()]
    """)
    violations = lint_vectorized.check_source(bad)
    assert any("comprehension" in message for _, message in violations)


def test_flags_dict_call_with_arguments_in_loop():
    bad = textwrap.dedent("""
        class Op:
            def run_batches(self):
                while True:
                    yield dict(x=1)
    """)
    assert lint_vectorized.check_source(bad)


def test_allows_batch_level_dicts_and_empty_accumulators():
    good = textwrap.dedent("""
        class Op:
            def run_batches(self):
                plan = {alias: fn for alias, fn in self.items}
                for batch in self.child.run_batches():
                    columns = {}
                    masks = dict()
                    for alias, fn in plan.items():
                        columns[alias] = fn(batch)
                    yield Batch(batch.length, columns, masks)
    """)
    assert lint_vectorized.check_source(good) == []


def test_ignores_methods_other_than_run_batches():
    scalar = textwrap.dedent("""
        class Op:
            def run(self):
                for row in self.child.run():
                    yield {"x": row["x"]}
    """)
    assert lint_vectorized.check_source(scalar) == []


def test_cli_exit_codes(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("def run_batches(self):\n    yield {}\n")
    ok = subprocess.run(
        [sys.executable, str(REPO / "tools" / "lint_vectorized.py"),
         str(clean)],
        capture_output=True, text=True,
    )
    assert ok.returncode == 0, ok.stderr

    dirty = tmp_path / "dirty.py"
    dirty.write_text(
        "def run_batches(self):\n"
        "    for i in range(3):\n"
        "        yield {'i': i}\n"
    )
    bad = subprocess.run(
        [sys.executable, str(REPO / "tools" / "lint_vectorized.py"),
         str(dirty)],
        capture_output=True, text=True,
    )
    assert bad.returncode == 1
    assert "per-row dict building" in bad.stderr
