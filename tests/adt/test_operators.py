"""Tests for the operator registry (repro.adt.operators)."""

import pytest

from repro.adt import Signature, TypeTerm, make_standard_registries
from repro.errors import (
    OperatorAlreadyRegisteredError,
    SignatureMismatchError,
    UnknownOperatorError,
    UnknownTypeError,
    ValueRepresentationError,
)


class TestTypeTerm:
    def test_parse_plain(self):
        term = TypeTerm.parse("image")
        assert term.type_name == "image" and not term.is_set

    def test_parse_setof(self):
        term = TypeTerm.parse("setof image")
        assert term.is_set and term.min_cardinality == 1

    def test_parse_setof_with_threshold(self):
        term = TypeTerm.parse("setof>=2 matrix")
        assert term.is_set and term.min_cardinality == 2

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueRepresentationError):
            TypeTerm.parse("setof2 image")

    def test_str_roundtrip(self):
        for text in ("image", "setof image", "setof>=3 image"):
            assert str(TypeTerm.parse(text)) == text


class TestRegistration:
    def test_register_and_apply(self, registries):
        _, ops = registries
        ops.register("double", ["int4"], "int4", lambda x: x * 2)
        assert ops.apply("double", 21) == 42

    def test_unknown_argument_type_rejected(self, registries):
        _, ops = registries
        with pytest.raises(UnknownTypeError):
            ops.register("f", ["ghost"], "int4", lambda x: x)

    def test_duplicate_signature_rejected(self, registries):
        _, ops = registries
        ops.register("f", ["int4"], "int4", lambda x: x)
        with pytest.raises(OperatorAlreadyRegisteredError):
            ops.register("f", ["int4"], "int4", lambda x: x)

    def test_overloading_by_signature(self, registries):
        _, ops = registries
        ops.register("describe", ["int4"], "text", lambda x: f"int {x}")
        ops.register("describe", ["char16"], "text", lambda x: f"str {x}")
        assert ops.apply("describe", 3) == "int 3"
        assert ops.apply("describe", "hi") == "str hi"

    def test_get_rejects_overloaded(self, registries):
        _, ops = registries
        ops.register("g", ["int4"], "int4", lambda x: x)
        ops.register("g", ["float8"], "float8", lambda x: x)
        with pytest.raises(UnknownOperatorError):
            ops.get("g")

    def test_unknown_operator(self, registries):
        _, ops = registries
        with pytest.raises(UnknownOperatorError):
            ops.apply("nope", 1)


class TestTypeChecking:
    def test_wrong_arity(self, registries):
        _, ops = registries
        ops.register("h", ["int4", "int4"], "int4", lambda a, b: a + b)
        with pytest.raises(SignatureMismatchError):
            ops.apply("h", 1)

    def test_wrong_type(self, registries):
        _, ops = registries
        ops.register("h", ["int4"], "int4", lambda a: a)
        with pytest.raises(SignatureMismatchError):
            ops.apply("h", "not an int")

    def test_setof_cardinality_enforced(self, registries):
        _, ops = registries
        ops.register("sum2", ["setof>=2 int4"], "int4", lambda xs: sum(xs))
        assert ops.apply("sum2", [1, 2, 3]) == 6
        with pytest.raises(SignatureMismatchError):
            ops.apply("sum2", [1])

    def test_result_type_checked(self, registries):
        _, ops = registries
        ops.register("bad", ["int4"], "int4", lambda x: "oops")
        with pytest.raises(ValueRepresentationError):
            ops.apply("bad", 1)

    def test_setof_result_must_be_sequence(self, registries):
        _, ops = registries
        ops.register("bad_set", ["int4"], "setof int4", lambda x: x)
        with pytest.raises(SignatureMismatchError):
            ops.apply("bad_set", 1)


class TestBrowsing:
    def test_operators_for_image(self, operators):
        names = {op.name for op in operators.operators_for("image")}
        assert {"img_nrow", "img_ncol", "img_type", "img_size_eq"} <= names

    def test_classes_with(self, operators):
        assert operators.classes_with("img_size_eq") == {"image"}

    def test_operators_for_respects_subtyping(self, registries):
        types, ops = registries
        ops.register("takes_numeric", ["numeric"], "bool", lambda x: True)
        names = {op.name for op in ops.operators_for("int4")}
        assert "takes_numeric" in names

    def test_names_listing(self, operators):
        assert "composite" in operators.names()


class TestStandardOperators:
    def test_paper_accessors(self, operators, small_image):
        assert operators.apply("img_nrow", small_image) == 8
        assert operators.apply("img_ncol", small_image) == 8
        assert operators.apply("img_type", small_image) == "float4"
        assert operators.apply("img_size_eq", small_image, small_image)

    def test_img_divide_handles_zero(self, operators):
        import numpy as np

        from repro.adt import Image

        num = Image.from_array(np.ones((2, 2)), "float4")
        den = Image.from_array(np.array([[1.0, 0.0], [2.0, 0.0]]), "float4")
        out = operators.apply("img_divide", num, den)
        assert out.data[0, 1] == 0.0 and out.data[0, 0] == 1.0

    def test_img_subtract_requires_same_size(self, operators):
        from repro.adt import Image

        with pytest.raises(SignatureMismatchError):
            operators.apply("img_subtract", Image.zeros(2, 2),
                            Image.zeros(3, 3))

    def test_statistics(self, operators, small_image):
        lo = operators.apply("img_min", small_image)
        hi = operators.apply("img_max", small_image)
        mean = operators.apply("img_mean", small_image)
        assert lo <= mean <= hi

    def test_threshold_masks(self, operators):
        import numpy as np

        from repro.adt import Image

        img = Image.from_array(np.array([[100.0, 300.0]]), "float4")
        below = operators.apply("img_threshold", img, 250.0)
        assert below.data.tolist() == [[1, 0]]
        above = operators.apply("img_threshold_above", img, 250.0)
        assert above.data.tolist() == [[0, 1]]
