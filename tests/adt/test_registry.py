"""Tests for the primitive-class registry (repro.adt.registry)."""

import pytest

from repro.adt import (
    PrimitiveClass,
    TypeRegistry,
    make_standard_registries,
    register_scalar_primitives,
)
from repro.adt.values import identity_representation
from repro.errors import (
    TypeAlreadyRegisteredError,
    UnknownTypeError,
    ValueRepresentationError,
)


def _dummy(name: str, parent: str | None = None) -> PrimitiveClass:
    return PrimitiveClass(
        name=name,
        validate=lambda v: v,
        representation=identity_representation(),
        parent=parent,
    )


class TestTypeRegistry:
    def test_register_and_get(self):
        registry = TypeRegistry()
        registry.register(_dummy("thing"))
        assert registry.get("thing").name == "thing"
        assert "thing" in registry
        assert len(registry) == 1

    def test_duplicate_rejected(self):
        registry = TypeRegistry()
        registry.register(_dummy("thing"))
        with pytest.raises(TypeAlreadyRegisteredError):
            registry.register(_dummy("thing"))

    def test_unknown_type(self):
        registry = TypeRegistry()
        with pytest.raises(UnknownTypeError):
            registry.get("nope")

    def test_parent_must_exist(self):
        registry = TypeRegistry()
        with pytest.raises(UnknownTypeError):
            registry.register(_dummy("child", parent="ghost"))

    def test_hierarchy_browsing(self):
        registry = TypeRegistry()
        registry.register(_dummy("root"))
        registry.register(_dummy("a", parent="root"))
        registry.register(_dummy("b", parent="root"))
        registry.register(_dummy("aa", parent="a"))
        assert {c.name for c in registry.children("root")} == {"a", "b"}
        assert [c.name for c in registry.ancestors("aa")] == ["a", "root"]
        assert registry.is_subtype("aa", "root")
        assert registry.is_subtype("aa", "aa")
        assert not registry.is_subtype("b", "a")
        assert {r.name for r in registry.roots()} == {"root"}
        assert registry.tree()["root"] == ["a", "b"]


class TestStandardPrimitives:
    def test_all_paper_types_present(self, types):
        for name in ("int2", "int4", "float4", "float8", "char16", "bool",
                     "box", "abstime", "image", "matrix", "vector"):
            assert name in types

    def test_int4_range_enforced(self, types):
        int4 = types.get("int4")
        assert int4.validate(2**31 - 1) == 2**31 - 1
        with pytest.raises(ValueRepresentationError):
            int4.validate(2**31)

    def test_int2_range_enforced(self, types):
        with pytest.raises(ValueRepresentationError):
            types.get("int2").validate(40000)

    def test_bool_is_not_an_int(self, types):
        with pytest.raises(ValueRepresentationError):
            types.get("int4").validate(True)

    def test_char16_limit(self, types):
        assert types.get("char16").validate("a" * 16) == "a" * 16
        with pytest.raises(ValueRepresentationError):
            types.get("char16").validate("a" * 17)

    def test_float4_normalizes_through_float32(self, types):
        import numpy as np

        value = types.get("float4").validate(0.1)
        assert value == float(np.float32(0.1))

    def test_parse_and_format_ints(self, types):
        int4 = types.get("int4")
        assert int4.parse(" 42 ") == 42
        assert int4.format(42) == "42"

    def test_parse_bool_forms(self, types):
        parse = types.get("bool").parse
        assert parse("true") and parse("T") and parse("1")
        assert not (parse("false") or parse("F") or parse("0"))
        with pytest.raises(ValueRepresentationError):
            parse("maybe")

    def test_numeric_hierarchy(self, types):
        assert types.is_subtype("int4", "numeric")
        assert types.is_subtype("float8", "numeric")
        assert not types.is_subtype("char16", "numeric")

    def test_register_twice_fails(self):
        registry = TypeRegistry()
        register_scalar_primitives(registry)
        with pytest.raises(TypeAlreadyRegisteredError):
            register_scalar_primitives(registry)

    def test_make_standard_registries_is_fresh(self):
        types1, _ = make_standard_registries()
        types2, _ = make_standard_registries()
        assert types1 is not types2
