"""Tests for value identity and representations (repro.adt.values)."""

import numpy as np
import pytest

from repro.adt.values import Representation, identity_representation, value_key
from repro.errors import ValueRepresentationError


class TestValueKey:
    def test_scalars_are_their_own_key(self):
        assert value_key(5) == 5
        assert value_key("x") == "x"
        assert value_key(2.5) == 2.5

    def test_numpy_scalars_normalize_to_python(self):
        assert value_key(np.int32(7)) == 7
        assert value_key(np.float64(1.5)) == 1.5

    def test_equal_arrays_share_a_key(self):
        a = np.arange(6).reshape(2, 3)
        b = np.arange(6).reshape(2, 3)
        assert value_key(a) == value_key(b)

    def test_different_arrays_differ(self):
        a = np.arange(6).reshape(2, 3)
        b = a.copy()
        b[0, 0] = 99
        assert value_key(a) != value_key(b)

    def test_dtype_distinguishes(self):
        a = np.zeros(3, dtype=np.int16)
        b = np.zeros(3, dtype=np.int32)
        assert value_key(a) != value_key(b)

    def test_shape_distinguishes(self):
        a = np.zeros(6).reshape(2, 3)
        b = np.zeros(6).reshape(3, 2)
        assert value_key(a) != value_key(b)

    def test_containers_recurse(self):
        assert value_key([1, np.zeros(2)]) == value_key([1, np.zeros(2)])
        assert value_key((1, 2)) != value_key([1, 2])

    def test_dict_key_is_order_insensitive(self):
        assert value_key({"a": 1, "b": 2}) == value_key({"b": 2, "a": 1})

    def test_key_is_hashable(self):
        hash(value_key([np.ones(3), {"k": np.zeros(2)}]))

    def test_delegates_to_value_key_method(self):
        class Custom:
            def value_key(self):
                return ("custom", 1)

        assert value_key(Custom()) == ("custom", 1)


class TestRepresentation:
    def test_roundtrip(self):
        rep = Representation(parse=int, format=str)
        assert rep.roundtrip("42") == "42"

    def test_identity_representation(self):
        rep = identity_representation()
        assert rep.parse("abc") == "abc"
        assert rep.format("abc") == "abc"

    def test_identity_rejects_non_string(self):
        rep = identity_representation()
        with pytest.raises(ValueRepresentationError):
            rep.parse(5)
